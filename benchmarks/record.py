#!/usr/bin/env python3
"""Perf-regression recorder: run the marked benchmarks, write ``BENCH_*.json``.

The figure-reproduction benchmarks print their payloads to stdout and leave
no trace, so the bench trajectory of this repository was empty — nothing for
a future PR to compare against.  This harness runs every benchmark in the
:data:`RECORDED_BENCHMARKS` registry (in smoke mode by default, so CI stays
fast) and writes each payload to ``BENCH_<name>.json`` at the repository
root.  Those files are committed: they are the recorded baseline.

Validation is structural, not temporal: the run **fails on malformed
output** — missing keys, non-finite or non-positive timings, failed parity
guards — but not on missed speed-up targets, because CI hardware is too
noisy to gate on absolute perf.  Pass ``--enforce-targets`` locally to also
fail when a benchmark's ``meets_targets`` entries are false.

Usage::

    PYTHONPATH=src python benchmarks/record.py            # smoke, write files
    PYTHONPATH=src python benchmarks/record.py --full     # full-scale run
    PYTHONPATH=src python benchmarks/record.py --check    # validate only
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

import bench_cache_traffic
import bench_dynamic
import bench_packed_query
import bench_resilience
import bench_serving
import bench_single_source

REPO_ROOT = Path(__file__).resolve().parent.parent

#: name -> runner plus the structural schema its payload must satisfy:
#: ``required_keys`` (top level), ``required_cells`` and the per-cell timing
#: ``cell_fields``, and ``required_true`` — guard booleans that must be
#: exactly ``True`` for the recorded numbers to be trustworthy.
RECORDED_BENCHMARKS = {
    "packed_query": {
        "run": lambda smoke: bench_packed_query.run_benchmark(
            **(
                {"scale": 0.05, "num_pairs": 400, "num_sources": 10, "repeats": 2}
                if smoke
                # Recorded runs take best-of-7: the exact-path cells sit near
                # their 1.0x no-regression floors, so best-of-3 noise on
                # ~100ms timings can flip them.
                else {"repeats": 7}
            )
        ),
        "required_keys": (
            "benchmark",
            "dataset",
            "num_nodes",
            "num_hitting_entries",
            "cells",
            "speedups",
            "targets",
            "meets_targets",
            "parity_ok",
        ),
        "required_cells": ("single_pair", "single_source", "top_k", "load"),
        "cell_fields": ("dict_seconds", "packed_seconds", "speedup"),
        "required_true": ("parity_ok",),
    },
    "single_source": {
        "run": lambda smoke: bench_single_source.run_benchmark(
            **(
                {"scale": 0.05, "num_sources": 10, "repeats": 2}
                if smoke
                else {"repeats": 7}
            )
        ),
        "required_keys": (
            "benchmark",
            "dataset",
            "num_nodes",
            "num_hitting_entries",
            "cells",
            "speedups",
            "targets",
            "meets_targets",
            "parity_ok",
            "accuracy_ok",
            "topk_agreement_ok",
        ),
        "required_cells": ("single_source", "single_source_exact", "top_k_warm"),
        "cell_fields": ("baseline_seconds", "optimized_seconds", "speedup"),
        "required_true": ("parity_ok", "accuracy_ok", "topk_agreement_ok"),
    },
    "serving": {
        "run": lambda smoke: bench_serving.run_benchmark(
            **(bench_serving.SMOKE_OVERRIDES if smoke else {})
        ),
        "required_keys": (
            "benchmark",
            "datasets",
            "num_nodes",
            "num_queries",
            "cache_budget",
            "cells",
            "speedups",
            "targets",
            "meets_targets",
            "identical_values",
        ),
        "required_cells": ("workers_1", "workers_2", "workers_4"),
        "cell_fields": (
            "seconds",
            "queries_per_second",
            "overall_p50_ms",
            "overall_p99_ms",
        ),
        "required_true": ("identical_values",),
    },
    "cache_traffic": {
        "run": lambda smoke: bench_cache_traffic.run_benchmark(
            **(bench_cache_traffic.SMOKE_OVERRIDES if smoke else {})
        ),
        "required_keys": (
            "benchmark",
            "datasets",
            "num_nodes",
            "pattern",
            "workload",
            "num_queries",
            "cache_sizes",
            "cells",
            "speedups",
            "warm_hit_rate",
            "p99_improvement",
            "targets",
            "meets_targets",
            "identical_values",
            "router_identical_values",
            "hit_rate_ok",
            "p99_ok",
        ),
        "required_cells": (
            "cache_0",
            "cache_small",
            "cache_large",
            "router_workers_2",
        ),
        # hit_rate is intentionally not a cell field: it is legitimately
        # 0.0 in the cache_0 cell, and the > 0 check would reject it.
        "cell_fields": (
            "seconds",
            "queries_per_second",
            "p50_ms",
            "p99_ms",
            "cacheable_p99_ms",
        ),
        "required_true": (
            "identical_values",
            "router_identical_values",
            "hit_rate_ok",
            "p99_ok",
        ),
    },
    "dynamic": {
        "run": lambda smoke: bench_dynamic.run_benchmark(
            **(bench_dynamic.SMOKE_OVERRIDES if smoke else {})
        ),
        "required_keys": (
            "benchmark",
            "dataset",
            "num_nodes",
            "num_edges",
            "cells",
            "speedups",
            "targets",
            "meets_targets",
            "guards",
            "eps_stale_ok",
            "rebuild_parity_ok",
            "version_echo_ok",
        ),
        "required_cells": ("incremental_update", "mutation_storm"),
        # The two cells measure different things (repair latency vs storm
        # throughput), so only the shared wall-clock field is schema-checked.
        "cell_fields": ("seconds",),
        "required_true": (
            "eps_stale_ok",
            "rebuild_parity_ok",
            "version_echo_ok",
        ),
    },
    "resilience": {
        "run": lambda smoke: bench_resilience.run_benchmark(
            **(bench_resilience.SMOKE_OVERRIDES if smoke else {})
        ),
        "required_keys": (
            "benchmark",
            "dataset",
            "workers",
            "events",
            "cells",
            "p99_ratio",
            "targets",
            "meets_targets",
            "guards",
            "no_lost_mutations",
            "typed_errors_only",
            "no_hangs",
            "recovery_bounded",
        ),
        "required_cells": ("fault_free", "under_faults", "recovery"),
        # fault/fault-free cells carry latency percentiles; the recovery
        # cell measures an outage — only wall-clock is shared.
        "cell_fields": ("seconds",),
        "required_true": (
            "no_lost_mutations",
            "typed_errors_only",
            "no_hangs",
            "recovery_bounded",
        ),
    },
}


def validate_payload(name: str, payload: dict) -> list[str]:
    """Return a list of structural problems (empty when well formed)."""
    problems: list[str] = []
    spec = RECORDED_BENCHMARKS[name]
    if not isinstance(payload, dict):
        return [f"{name}: payload is not a JSON object"]
    for key in spec["required_keys"]:
        if key not in payload:
            problems.append(f"{name}: missing key {key!r}")
    cells = payload.get("cells", {})
    for cell_name in spec.get("required_cells", ()):
        cell = cells.get(cell_name)
        if not isinstance(cell, dict):
            problems.append(f"{name}: missing cell {cell_name!r}")
            continue
        for field in spec["cell_fields"]:
            value = cell.get(field)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                problems.append(
                    f"{name}: cell {cell_name!r} field {field!r} is not finite"
                )
            elif field != "speedup" and value <= 0:
                problems.append(
                    f"{name}: cell {cell_name!r} field {field!r} must be > 0"
                )
    for guard in spec["required_true"]:
        if payload.get(guard) is not True:
            problems.append(
                f"{name}: {guard} is not true — results are untrustworthy"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="run at full benchmark scale instead of smoke mode",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate the existing BENCH_*.json files without re-running",
    )
    parser.add_argument(
        "--enforce-targets", action="store_true",
        help="also fail when a benchmark misses its recorded speed-up targets",
    )
    parser.add_argument(
        "--output-dir", type=Path, default=REPO_ROOT,
        help="where BENCH_<name>.json files are written (default: repo root)",
    )
    parser.add_argument(
        "--only", choices=sorted(RECORDED_BENCHMARKS), default=None,
        help="run a single benchmark from the registry",
    )
    args = parser.parse_args(argv)

    names = [args.only] if args.only else sorted(RECORDED_BENCHMARKS)
    if not args.check:
        args.output_dir.mkdir(parents=True, exist_ok=True)
    problems: list[str] = []
    for name in names:
        output_path = args.output_dir / f"BENCH_{name}.json"
        if args.check:
            if not output_path.exists():
                problems.append(f"{name}: {output_path} does not exist")
                continue
            try:
                payload = json.loads(output_path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                problems.append(f"{name}: {output_path} is not valid JSON: {exc}")
                continue
        else:
            print(f"running {name} ({'full' if args.full else 'smoke'}) ...",
                  file=sys.stderr)
            payload = RECORDED_BENCHMARKS[name]["run"](not args.full)
        found = validate_payload(name, payload)
        problems.extend(found)
        if args.enforce_targets:
            for target, met in payload.get("meets_targets", {}).items():
                if not met:
                    problems.append(
                        f"{name}: target {target!r} missed "
                        f"(speedup {payload['speedups'].get(target):.2f} < "
                        f"{payload['targets'].get(target)})"
                    )
        if not args.check and not found:
            output_path.write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )
            print(f"wrote {output_path}", file=sys.stderr)

    if problems:
        for problem in problems:
            print(f"MALFORMED: {problem}", file=sys.stderr)
        return 1
    print(f"{len(names)} benchmark payload(s) well formed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
