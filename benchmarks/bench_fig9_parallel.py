"""Figure 9 (Appendix C): preprocessing time vs. number of worker processes.

SLING's preprocessing is embarrassingly parallel (Section 5.4); the paper
observes near-linear speed-up up to 16 threads.  Worker counts here are capped
by the container's CPU count; the pure-Python workers also pay a pickling /
process-start overhead that the authors' pthread implementation does not, so
the speed-up is sublinear on the small stand-ins but must not regress.
"""

from __future__ import annotations

import os

import pytest

from repro.sling import SlingParameters, build_with_thread_count

from _config import BENCH_EPSILON, LARGE_DATASETS

# Worker counts to sweep.  The sweep always includes multi-worker points so
# the parallel machinery is exercised even on single-core machines; the
# speed-up itself obviously needs as many physical cores as workers (the
# recorded run of this repository had a single core available — see
# EXPERIMENTS.md).
WORKER_COUNTS = (1, 2, 4)


@pytest.mark.parametrize("dataset", LARGE_DATASETS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def bench_parallel_preprocessing(benchmark, graph_cache, dataset, workers):
    """Full preprocessing (corrections + hitting sets) with N workers."""
    graph = graph_cache(dataset)
    params = SlingParameters.from_accuracy_target(
        num_nodes=graph.num_nodes, epsilon=BENCH_EPSILON
    )
    elapsed = benchmark.pedantic(
        lambda: build_with_thread_count(graph, params, workers, seed=0),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["figure"] = "9"
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["available_cpus"] = os.cpu_count() or 1
    benchmark.extra_info["build_seconds"] = round(float(elapsed), 4)
    benchmark.extra_info["nodes"] = graph.num_nodes
