#!/usr/bin/env python3
"""Serving resilience: what surviving faults costs, and how fast recovery is.

Every other benchmark in this directory measures the happy path.  This one
prices the unhappy one: the same seeded mutation-heavy traffic stream is
driven through a real ``repro router`` worker pool twice —

* ``fault_free`` — WAL-backed workers, no injected faults: the durability
  baseline (every acked mutate is fsync'd before the ack, so this cell
  already includes the WAL's cost);
* ``under_faults`` — the identical storm, plus a ``SIGKILL`` fired into the
  dataset's owning worker milliseconds into an in-flight ``mutate``.  The
  retrying client rides through the restart; the cell records what that
  does to throughput and tail latency.

Both runs come from :func:`repro.evaluation.faults.run_storm`, which also
evaluates the recovery invariants the numbers are only meaningful under:

* ``no_lost_mutations`` — every client-acked ``mutation_id`` is in the
  worker's WAL, and a fresh service recovered from that WAL answers the
  storm's probe queries bitwise-close to the live re-frozen service;
* ``typed_errors_only`` — nothing but documented, retryable error
  envelopes surfaced during the storm;
* ``no_hangs`` — every request resolved within its end-to-end deadline
  budget plus transport slack.

The ``recovery`` cell records the client-observed outage: from the kill to
the first successful answer after a failure.  The recorded target is
``under_faults`` p99 within ``--target`` (default 3x) of ``fault_free``
p99 — crashing a worker mid-storm is allowed to hurt the tail, but not to
melt it.

Results are emitted as JSON on stdout::

    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke

``benchmarks/record.py`` records the payload as ``BENCH_resilience.json``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.evaluation.faults import ChaosProfile, run_storm


def run_benchmark(
    *,
    seed: int = 0,
    workers: int = 2,
    events: int = 240,
    scale: float = 0.05,
    epsilon: float = 0.05,
    deadline_ms: float = 20000.0,
    traffic_profile: str = "mutation-storm",
    p99_target: float = 3.0,
) -> dict:
    profile = ChaosProfile(
        seed=seed,
        workers=workers,
        events=events,
        scale=scale,
        epsilon=epsilon,
        deadline_ms=deadline_ms,
        traffic_profile=traffic_profile,
        # The storm is the benchmark; the other drills live in `repro chaos`.
        hostile_frames=False,
        disk_full=False,
        slow_shard=False,
    )
    baseline = run_storm(profile, inject_kill=False)
    faulted = run_storm(profile, inject_kill=True)

    def cell(report: dict) -> dict:
        return {
            "seconds": report["seconds"],
            "queries_per_second": (
                report["events"] / report["seconds"]
                if report["seconds"] > 0
                else 0.0
            ),
            "p50_ms": report["latency"]["p50_ms"],
            "p99_ms": report["latency"]["p99_ms"],
            "max_ms": report["latency"]["max_ms"],
            "outcomes": report["outcomes"],
        }

    cells = {
        "fault_free": cell(baseline),
        "under_faults": cell(faulted),
        "recovery": {
            "seconds": faulted["recovery_seconds"] or 0.0,
            "worker_restarts": sum(faulted["restarts"]),
            "mutations_acked": faulted["mutations"]["acked"],
            "mutations_deduplicated": faulted["mutations"]["deduplicated"],
        },
    }
    baseline_p99 = max(cells["fault_free"]["p99_ms"], 1e-9)
    p99_ratio = cells["under_faults"]["p99_ms"] / baseline_p99
    targets = {"p99_under_faults_vs_fault_free": p99_target}
    guards = {
        "no_lost_mutations": bool(
            baseline["no_lost_mutations"] and faulted["no_lost_mutations"]
        ),
        "typed_errors_only": (
            baseline["unexpected_codes"] == []
            and faulted["unexpected_codes"] == []
        ),
        "no_hangs": (
            baseline["hang_violations"] == 0
            and faulted["hang_violations"] == 0
        ),
        "all_mutations_acked": (
            baseline["mutations"]["unacked"] == 0
            and faulted["mutations"]["unacked"] == 0
        ),
        "worker_was_killed": bool(faulted["killed"]),
        "recovery_observed": faulted["recovery_seconds"] is not None,
    }
    return {
        "benchmark": "resilience",
        "dataset": profile.dataset,
        "workers": workers,
        "events": events,
        "seed": seed,
        "traffic_profile": traffic_profile,
        "cells": cells,
        "p99_ratio": p99_ratio,
        "targets": targets,
        "meets_targets": {
            "p99_under_faults_vs_fault_free": p99_ratio <= p99_target
        },
        "guards": guards,
        "no_lost_mutations": guards["no_lost_mutations"],
        "typed_errors_only": guards["typed_errors_only"],
        "no_hangs": guards["no_hangs"],
        "recovery_bounded": bool(
            guards["recovery_observed"]
            and cells["recovery"]["seconds"] <= deadline_ms / 1000.0
        ),
    }


SMOKE_OVERRIDES = {
    "events": 80,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--events", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--target", type=float, default=None,
                        help="max allowed p99 ratio under faults (default 3x)")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small-scale run for CI: same payload shape, faster",
    )
    args = parser.parse_args(argv)
    overrides: dict = dict(SMOKE_OVERRIDES) if args.smoke else {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.events is not None:
        overrides["events"] = args.events
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.target is not None:
        overrides["p99_target"] = args.target
    payload = run_benchmark(**overrides)
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
