"""Figures 5 and 6: query accuracy against the power-method ground truth.

Figure 5 reports the maximum all-pairs error of each method (SLING must stay
below its stipulated ε = 0.025, Linearize has no guarantee and exceeds it on
several datasets); Figure 6 breaks the error down by ground-truth score group
(S1 = [0.1, 1], S2 = [0.01, 0.1), S3 < 0.01).

The measured time is the all-pairs computation of each method; the error
metrics are attached as ``extra_info`` and printed as tables.
"""

from __future__ import annotations

import pytest

from repro.evaluation import grouped_errors, max_error
from repro.evaluation.experiments import AccuracyRow, GroupedErrorRow
from repro.evaluation.reporting import render_accuracy, render_grouped_errors

from _config import ACCURACY_CONFIG, SMALL_DATASETS

METHODS = ("SLING", "Linearize", "MC")

_accuracy_rows: list[AccuracyRow] = []
_grouped_rows: list[GroupedErrorRow] = []


@pytest.mark.parametrize("dataset", SMALL_DATASETS)
@pytest.mark.parametrize("method_name", METHODS)
def bench_all_pairs_accuracy(
    benchmark, method_cache, graph_cache, truth_cache, dataset, method_name
):
    """All-pairs computation time + maximum / per-group error (Figures 5-6)."""
    graph = graph_cache(dataset)
    truth = truth_cache.get(graph, c=ACCURACY_CONFIG.c)
    method = method_cache(dataset, method_name, ACCURACY_CONFIG)
    estimated = benchmark.pedantic(method.all_pairs, rounds=1, iterations=1)

    maximum = max_error(estimated, truth)
    groups = grouped_errors(estimated, truth)
    _accuracy_rows.append(AccuracyRow(dataset, method_name, 0, maximum))
    _grouped_rows.append(GroupedErrorRow(dataset, method_name, groups))

    benchmark.extra_info["figure"] = "5/6"
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method_name
    benchmark.extra_info["max_error"] = round(maximum, 6)
    benchmark.extra_info["epsilon_target"] = ACCURACY_CONFIG.epsilon
    for group, value in groups.as_dict().items():
        benchmark.extra_info[f"avg_error_{group}"] = round(value, 8)


def bench_accuracy_report(benchmark, capsys):
    """Print the aggregated Figure-5 and Figure-6 tables."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if _accuracy_rows:
        with capsys.disabled():
            print()
            print(render_accuracy(_accuracy_rows))
            print()
            print(render_grouped_errors(_grouped_rows))
