"""Figure 3: preprocessing (index construction) cost of each method.

The paper reports that Linearize preprocesses faster than SLING, which in turn
preprocesses faster than MC at its full walk budget.  Builds are measured with
a single round (they are far too expensive to repeat in the calibration loop
pytest-benchmark normally runs).
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import build_method

from _config import ALL_DATASETS, TIMING_CONFIG

METHODS = ("SLING", "Linearize", "MC")


@pytest.mark.parametrize("dataset", ALL_DATASETS)
@pytest.mark.parametrize("method_name", METHODS)
def bench_preprocessing(benchmark, graph_cache, dataset, method_name):
    """Index construction time of one method on one dataset (Figure 3)."""
    graph = graph_cache(dataset)
    method = benchmark.pedantic(
        lambda: build_method(method_name, graph, TIMING_CONFIG),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["figure"] = "3"
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method_name
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_edges
    benchmark.extra_info["index_megabytes"] = round(
        method.index_size_bytes() / (1024.0 * 1024.0), 4
    )
