"""Table 1 (empirical): SLING's query time and space as the error target varies.

Table 1 of the paper states that SLING answers single-pair queries in O(1/ε)
time using O(n/ε) space.  This benchmark sweeps ε and records both quantities
so the asymptotic claim can be checked empirically: halving ε should roughly
double the average hitting-set size (and with it the index size), while the
query time grows at most linearly in 1/ε.
"""

from __future__ import annotations

import pytest

from repro.evaluation import random_pairs
from repro.evaluation.experiments import MethodConfig, build_method

from _config import BENCH_SCALE

EPSILONS = (0.2, 0.1, 0.05)
DATASET = "Enron"
PAIRS_PER_BATCH = 50


@pytest.mark.parametrize("epsilon", EPSILONS)
def bench_query_time_vs_epsilon(benchmark, graph_cache, epsilon):
    """Single-pair query batch time at a given accuracy target."""
    graph = graph_cache(DATASET, BENCH_SCALE)
    config = MethodConfig(epsilon=epsilon, seed=0)
    index = build_method("SLING", graph, config)
    pairs = random_pairs(graph, PAIRS_PER_BATCH, seed=3)

    def run_batch() -> None:
        for node_u, node_v in pairs:
            index.single_pair(node_u, node_v)

    benchmark(run_batch)
    benchmark.extra_info["table"] = "1"
    benchmark.extra_info["dataset"] = DATASET
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["index_megabytes"] = round(
        index.index_size_bytes() / (1024.0 * 1024.0), 4
    )
    benchmark.extra_info["avg_hitting_set_size"] = round(index.average_set_size(), 2)
