"""Configuration shared by every figure-reproduction benchmark.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — global multiplier on stand-in graph sizes
  (default 0.12; raise it for a slower, more faithful run).
* ``REPRO_BENCH_EPSILON`` — SLING / MC accuracy target used by the timing
  figures (default 0.1).  The accuracy figures always use the paper's 0.025.
"""

from __future__ import annotations

import os

from repro.evaluation.experiments import MethodConfig
from repro.graphs import datasets

#: Scale applied to every dataset stand-in (relative to DESIGN.md defaults).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))

#: Accuracy target used by the timing benchmarks (Figures 1-4).
BENCH_EPSILON = float(os.environ.get("REPRO_BENCH_EPSILON", "0.1"))

#: Accuracy target used by the accuracy benchmarks (Figures 5-7), matching the
#: paper's experimental setting.
ACCURACY_EPSILON = 0.025

#: Datasets used by the timing figures (all twelve, in Table-3 order).
ALL_DATASETS = tuple(datasets.dataset_names())

#: The four smallest datasets (accuracy figures) and two large stand-ins
#: (parallel / out-of-core figures), as in the paper.
SMALL_DATASETS = datasets.SMALL_DATASETS
LARGE_DATASETS = ("Google", "In-2004")

#: Monte-Carlo walk budget for the benchmarks (see DESIGN.md on why this is
#: far below the paper-exact budget).
MC_WALKS = 100

TIMING_CONFIG = MethodConfig(epsilon=BENCH_EPSILON, seed=0, mc_num_walks=MC_WALKS)
ACCURACY_CONFIG = MethodConfig(epsilon=ACCURACY_EPSILON, seed=0, mc_num_walks=400)
