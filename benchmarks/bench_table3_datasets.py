"""Table 3: dataset statistics (paper sizes vs. synthetic stand-ins).

The measured quantity is the stand-in construction time; the rendered table is
printed so that ``bench_output.txt`` contains the Table-3 reproduction.
"""

from __future__ import annotations

import pytest

from repro.graphs import datasets

from _config import BENCH_SCALE


@pytest.mark.parametrize("name", datasets.dataset_names())
def bench_dataset_standin_construction(benchmark, name):
    """Time to generate one dataset stand-in at the benchmark scale."""
    spec = datasets.DATASETS[name]
    graph = benchmark.pedantic(
        lambda: spec.build(scale=BENCH_SCALE, seed=0), rounds=1, iterations=1
    )
    benchmark.extra_info["dataset"] = name
    benchmark.extra_info["paper_nodes"] = spec.paper_nodes
    benchmark.extra_info["paper_edges"] = spec.paper_edges
    benchmark.extra_info["standin_nodes"] = graph.num_nodes
    benchmark.extra_info["standin_edges"] = graph.num_edges
    benchmark.extra_info["directed"] = spec.directed


def bench_table3_report(benchmark, capsys):
    """Render the full Table-3 report (paper statistics + stand-in sizes)."""
    table = benchmark.pedantic(
        lambda: datasets.table3(scale=BENCH_SCALE, seed=0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n=== Table 3: datasets (paper vs. stand-in) ===")
        print(table)
