"""Shared fixtures for the figure-reproduction benchmarks.

Each ``bench_fig*.py`` module regenerates one figure (or table) of the paper's
evaluation on the synthetic dataset stand-ins.  Index builds are expensive, so
they are cached for the whole session by :func:`method_cache`; non-timing
outputs (index sizes, error tables) are attached to the benchmark records via
``extra_info`` and printed so they land in ``bench_output.txt``.

Tuning knobs live in :mod:`_config` (``REPRO_BENCH_SCALE``,
``REPRO_BENCH_EPSILON`` environment variables).
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import MethodConfig, build_method
from repro.graphs import datasets

from _config import BENCH_SCALE


@pytest.fixture(scope="session")
def graph_cache():
    """Session cache of dataset stand-ins keyed by (name, scale)."""
    cache: dict[tuple[str, float], object] = {}

    def load(name: str, scale: float = BENCH_SCALE):
        key = (name, scale)
        if key not in cache:
            cache[key] = datasets.load_dataset(name, scale=scale, seed=0)
        return cache[key]

    return load


@pytest.fixture(scope="session")
def method_cache(graph_cache):
    """Session cache of built methods keyed by (dataset, method, epsilon, scale)."""
    cache: dict[tuple[str, str, float, float], object] = {}

    def build(
        dataset: str,
        method: str,
        config: MethodConfig,
        scale: float = BENCH_SCALE,
    ):
        key = (dataset, method, config.epsilon, scale)
        if key not in cache:
            graph = graph_cache(dataset, scale)
            cache[key] = build_method(method, graph, config)
        return cache[key]

    return build


@pytest.fixture(scope="session")
def truth_cache():
    """Session cache of power-method ground truth for the accuracy figures."""
    from repro.evaluation import GroundTruthCache

    return GroundTruthCache()
