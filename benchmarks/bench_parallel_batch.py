#!/usr/bin/env python3
"""Parallel batch throughput: ``ParallelExecutor`` vs the sequential path.

The serving story before this benchmark's subsystem existed was one thread
calling ``SimRankService.execute`` per request.  The
:class:`~repro.service.ParallelExecutor` replaces that with a worker pool
over contiguous request chunks, two effects compounding:

* **batch scheduling** — inside a chunk, identical read queries (a top-k
  dashboard hammering hot sources) are answered once and share an envelope,
  so a skewed warm workload stops paying the full per-request cost for
  duplicates.  This is where the single-core speedup comes from.
* **worker parallelism** — chunks run on a thread pool; with several cores
  the chunks overlap (the engine lock covers only cache/stat bookkeeping,
  not backend work).  On a single-core host this contributes nothing, which
  is why the payload records ``cpu_count``.

The workload is the paper-motivated "heavy traffic" shape: a warm top-k
batch whose sources follow a Zipf law over a small hot set — the access
pattern of a similarity dashboard serving many users over one graph.

Results are emitted as JSON on stdout::

    PYTHONPATH=src python benchmarks/bench_parallel_batch.py --scale 0.1

``speedups.workers_N`` is sequential_seconds / parallel_seconds for the same
request list; ``meets_target`` compares the 4-worker cell against
``--target`` (default 2.5x).  ``identical_values`` asserts the executor's
deterministic-output contract: every worker count must produce exactly the
sequential values, in order.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.engine import BackendConfig
from repro.graphs import datasets
from repro.service import (
    ParallelExecutor,
    ServiceConfig,
    SimRankService,
    TopKQuery,
)

#: The acceptance target: 4 workers at least this much faster than sequential.
DEFAULT_TARGET_SPEEDUP = 2.5


def _values(results) -> list:
    return [result.value for result in results]


def run_benchmark(
    *,
    dataset: str = "GrQc",
    scale: float = 0.1,
    epsilon: float = 0.1,
    num_queries: int = 4000,
    hot_sources: int = 32,
    zipf_exponent: float = 1.3,
    k: int = 10,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    repeats: int = 3,
    seed: int = 0,
    target_speedup: float = DEFAULT_TARGET_SPEEDUP,
) -> dict:
    """Measure sequential vs parallel throughput on one warm session."""
    service = SimRankService(
        ServiceConfig(
            scale=scale,
            seed=seed,
            backend_config=BackendConfig(epsilon=epsilon, seed=seed),
        )
    )
    session = service.open_dataset(dataset)
    engine = session.engine()
    n = session.num_nodes

    rng = np.random.default_rng(seed)
    hot = min(hot_sources, n)
    sources = (rng.zipf(zipf_exponent, size=num_queries) - 1) % hot
    queries = [TopKQuery(dataset, node=int(node), k=k) for node in sources]
    for node in range(hot):  # warm the cache: the workload under test is warm
        engine.top_k(node, k)

    def best_of(run) -> tuple[float, list]:
        best, values = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            results = run()
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best, values = elapsed, _values(results)
        return best, values

    sequential_seconds, sequential_values = best_of(
        lambda: [service.execute(query) for query in queries]
    )

    cells: dict[str, dict] = {}
    identical = True
    for workers in worker_counts:
        with ParallelExecutor(service, workers=workers) as executor:
            seconds, values = best_of(lambda: executor.run(queries))
        identical = identical and values == sequential_values
        cells[f"workers_{workers}"] = {
            "seconds": seconds,
            "microseconds_per_query": 1e6 * seconds / num_queries,
            "queries_per_second": num_queries / seconds,
            "speedup_vs_sequential": sequential_seconds / seconds,
        }

    distinct = len(set(int(node) for node in sources))
    top_cell = cells.get(f"workers_{max(worker_counts)}", {})
    return {
        "benchmark": "parallel_batch",
        "dataset": dataset,
        "scale": scale,
        "epsilon": epsilon,
        "num_nodes": n,
        "backend": engine.backend.name,
        "num_queries": num_queries,
        "distinct_sources": distinct,
        "duplicate_fraction": 1.0 - distinct / num_queries,
        "k": k,
        "repeats": repeats,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "sequential": {
            "seconds": sequential_seconds,
            "microseconds_per_query": 1e6 * sequential_seconds / num_queries,
            "queries_per_second": num_queries / sequential_seconds,
        },
        "cells": cells,
        "speedups": {
            name: cell["speedup_vs_sequential"] for name, cell in cells.items()
        },
        "identical_values": identical,
        "target_speedup": target_speedup,
        "meets_target": top_cell.get("speedup_vs_sequential", 0.0)
        >= target_speedup,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="GrQc", choices=datasets.dataset_names())
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--queries", type=int, default=4000)
    parser.add_argument("--hot-sources", type=int, default=32)
    parser.add_argument("--zipf", type=float, default=1.3)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument(
        "--workers", nargs="+", type=int, default=[1, 2, 4],
        help="worker counts to measure (each compared against sequential)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--target", type=float, default=DEFAULT_TARGET_SPEEDUP)
    args = parser.parse_args(argv)
    payload = run_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        epsilon=args.epsilon,
        num_queries=args.queries,
        hot_sources=args.hot_sources,
        zipf_exponent=args.zipf,
        k=args.k,
        worker_counts=tuple(args.workers),
        repeats=args.repeats,
        seed=args.seed,
        target_speedup=args.target,
    )
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
