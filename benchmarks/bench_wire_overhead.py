#!/usr/bin/env python3
"""Wire-protocol overhead: per-frame codec cost and chunked streaming.

Protocol v2 touches every byte the service emits, so two things must stay
measured:

* **per-frame codec cost** — microseconds to encode/decode one request
  line and one response line, for a small (``top_k``) and a large
  (``single_source``) envelope.  These sit on the serve loop's hot path
  in front of every query;
* **chunked vs monolithic streaming** — a chunked ``single_source``
  response trades a little encoding overhead (one envelope's metadata per
  ``partial`` frame) for a bounded peak line size.  The benchmark measures
  both sides of that trade on a real service answer and records the
  targets: peak line size must shrink by at least ``--peak-factor``
  (default 4x) while the total encode cost stays within
  ``--latency-factor`` (default 3x) of the monolithic line.  The latency
  factor is dominated by fixed per-frame metadata, so it *falls* as the
  graph grows: ~2.7x on the 60-node default stand-in, ~1.8x at
  ``--scale 0.5`` and above — the regime chunking exists for.

Results are emitted as JSON on stdout::

    PYTHONPATH=src python benchmarks/bench_wire_overhead.py --scale 0.1

``targets`` records the thresholds; ``meets_target`` compares the measured
cells against them.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.engine import BackendConfig
from repro.graphs import datasets
from repro.service import (
    ServiceConfig,
    SimRankService,
    SingleSourceQuery,
    TopKQuery,
    decode_envelope_line,
    decode_result,
    encode_request,
    response_frames,
    result_from_frames,
)

#: Chunked streaming must cut the peak line size by at least this factor.
DEFAULT_PEAK_FACTOR = 4.0

#: ...while costing at most this factor of the monolithic encode time
#: (see the module docstring: measured ~1.8x at realistic scales, ~2.7x on
#: the tiny default stand-in where per-frame metadata dominates).
DEFAULT_LATENCY_FACTOR = 3.0


def _best_of(run, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _codec_cell(name: str, encode, decode, iterations: int, repeats: int) -> dict:
    encoded = encode()
    encode_seconds = _best_of(
        lambda: [encode() for _ in range(iterations)], repeats
    )
    decode_seconds = _best_of(
        lambda: [decode(encoded) for _ in range(iterations)], repeats
    )
    return {
        "cell": name,
        "line_bytes": len(encoded) if isinstance(encoded, str) else None,
        "encode_microseconds_per_frame": 1e6 * encode_seconds / iterations,
        "decode_microseconds_per_frame": 1e6 * decode_seconds / iterations,
    }


def run_benchmark(
    *,
    dataset: str = "GrQc",
    scale: float = 0.1,
    epsilon: float = 0.1,
    chunk_size: int | None = None,
    iterations: int = 2000,
    repeats: int = 5,
    seed: int = 0,
    peak_factor: float = DEFAULT_PEAK_FACTOR,
    latency_factor: float = DEFAULT_LATENCY_FACTOR,
) -> dict:
    """Measure codec cells and the chunking trade on one real session."""
    service = SimRankService(
        ServiceConfig(
            scale=scale,
            seed=seed,
            backend_config=BackendConfig(epsilon=epsilon, seed=seed),
        )
    )
    top_k_result = service.execute(TopKQuery(dataset, node=3, k=10))
    source_result = service.execute(SingleSourceQuery(dataset, node=3))
    assert top_k_result.ok and source_result.ok
    n = len(source_result.value)
    if chunk_size is None:
        # Sixteen frames per response by default, so the peak-line target
        # is meaningful at any --scale.
        chunk_size = max(4, n // 16)

    request = TopKQuery(dataset, node=3, k=10)
    codec_cells = [
        _codec_cell(
            "request_top_k",
            lambda: encode_request(request),
            decode_envelope_line,
            iterations,
            repeats,
        ),
        _codec_cell(
            "response_top_k",
            lambda: next(response_frames(top_k_result, id=1)),
            decode_result,
            iterations,
            repeats,
        ),
        _codec_cell(
            "response_single_source",
            lambda: next(response_frames(source_result, id=1)),
            decode_result,
            max(iterations // 10, 1),
            repeats,
        ),
    ]

    # Chunked vs monolithic: same result, two framings.
    def encode_monolithic() -> list[str]:
        return list(response_frames(source_result, id=1))

    def encode_chunked() -> list[str]:
        return list(response_frames(source_result, id=1, chunk_size=chunk_size))

    mono_lines = encode_monolithic()
    chunk_lines = encode_chunked()
    reassembled = result_from_frames([json.loads(line) for line in chunk_lines])
    assert reassembled.value == source_result.value  # exactness is the contract

    frames_per_second_iters = max(iterations // 10, 1)
    mono_seconds = _best_of(
        lambda: [encode_monolithic() for _ in range(frames_per_second_iters)],
        repeats,
    ) / frames_per_second_iters
    chunk_seconds = _best_of(
        lambda: [encode_chunked() for _ in range(frames_per_second_iters)],
        repeats,
    ) / frames_per_second_iters

    mono_peak = max(len(line) for line in mono_lines)
    chunk_peak = max(len(line) for line in chunk_lines)
    streaming = {
        "num_nodes": n,
        "chunk_size": chunk_size,
        "monolithic_lines": len(mono_lines),
        "chunked_lines": len(chunk_lines),
        "monolithic_peak_line_bytes": mono_peak,
        "chunked_peak_line_bytes": chunk_peak,
        "peak_line_reduction_factor": mono_peak / chunk_peak,
        "monolithic_encode_microseconds": 1e6 * mono_seconds,
        "chunked_encode_microseconds": 1e6 * chunk_seconds,
        "chunked_latency_factor": chunk_seconds / mono_seconds,
    }

    targets = {
        "peak_line_reduction_factor_at_least": peak_factor,
        "chunked_latency_factor_at_most": latency_factor,
    }
    return {
        "benchmark": "wire_overhead",
        "dataset": dataset,
        "scale": scale,
        "num_nodes": n,
        "iterations": iterations,
        "repeats": repeats,
        "seed": seed,
        "codec": codec_cells,
        "streaming": streaming,
        "targets": targets,
        "meets_target": {
            "peak_line_reduction": streaming["peak_line_reduction_factor"]
            >= peak_factor,
            "chunked_latency": streaming["chunked_latency_factor"]
            <= latency_factor,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="GrQc", choices=datasets.dataset_names())
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="partial-frame size (default: num_nodes/16)",
    )
    parser.add_argument("--iterations", type=int, default=2000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--peak-factor", type=float, default=DEFAULT_PEAK_FACTOR)
    parser.add_argument(
        "--latency-factor", type=float, default=DEFAULT_LATENCY_FACTOR
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        epsilon=args.epsilon,
        chunk_size=args.chunk_size,
        iterations=args.iterations,
        repeats=args.repeats,
        seed=args.seed,
        peak_factor=args.peak_factor,
        latency_factor=args.latency_factor,
    )
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
