#!/usr/bin/env python3
"""Dict-of-dicts vs packed columnar store: query hot paths and index load.

Before the packed store existed, every query ran on Python dicts:
Algorithm 3 iterated ``HittingProbabilitySet.levels`` entry by entry with two
hash probes per position, Algorithm 6 rebuilt its numpy frontiers with
``np.fromiter`` per query, and loading an index deserialised an npz archive
into ``n`` per-node dict sets.  This benchmark keeps faithful copies of those
legacy implementations (below) and times them against the packed paths on the
same built index:

* **single_pair** — legacy dict intersection vs the sorted-key
  ``searchsorted`` + dot-product kernel (warm, Zipf-skewed pair workload),
* **single_source / top_k** — legacy dict-frontier Algorithm 6 vs zero-copy
  column-slice frontiers,
* **load** — legacy npz → dict materialisation vs ``np.load(mmap_mode="r")``
  of the per-column ``.npy`` files (no dict round-trip).

Results are emitted as JSON on stdout::

    PYTHONPATH=src python benchmarks/bench_packed_query.py --scale 0.12

``meets_targets`` records the acceptance thresholds: warm single-pair at
least ``--target-pair`` (default 3x) faster, index load at least
``--target-load`` (default 10x) faster, and the exact single-source/top-k
paths no slower than the dict paths (``--target-source`` /
``--target-topk``, default 1.0x — the same algorithm runs on both sides;
the cascade/bounded wins are measured in ``bench_single_source.py``).  The legacy kernels — including the pre-packed
``np.add.at`` push step — are frozen in this file so the baseline cannot
silently absorb later kernel optimisations.
``benchmarks/record.py`` runs this module in smoke mode and records the
payload as ``BENCH_packed_query.json`` for the perf-regression CI job.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.graphs import datasets
from repro.ranking import rank_top_k
from repro.sling import SlingIndex, load_index, save_index
from repro.sling.hitting import HittingProbabilitySet

DEFAULT_TARGET_PAIR_SPEEDUP = 3.0
DEFAULT_TARGET_LOAD_SPEEDUP = 10.0
DEFAULT_TARGET_SOURCE_SPEEDUP = 1.0
DEFAULT_TARGET_TOPK_SPEEDUP = 1.0


# --------------------------------------------------------------------------- #
# Faithful copies of the pre-packed (dict-of-dicts) implementations
# --------------------------------------------------------------------------- #
def legacy_intersect(set_u, set_v, corrections) -> float:
    """Algorithm 3 as it ran before the packed store (dict iteration)."""
    score = 0.0
    for level, entries_u in set_u.levels.items():
        entries_v = set_v.levels.get(level)
        if not entries_v:
            continue
        if len(entries_v) < len(entries_u):
            entries_u, entries_v = entries_v, entries_u
        for target, value_u in entries_u.items():
            value_v = entries_v.get(target)
            if value_v is not None:
                score += value_u * corrections[target] * value_v
    return min(1.0, score)


def legacy_push_frontier(graph, frontier_nodes, frontier_values, sqrt_c):
    """The pre-packed push step: two-``repeat`` offsets and ``np.add.at``.

    Frozen here (instead of importing the live ``push_frontier``) so the dict
    baseline keeps the pre-packed era's scatter even after the shared kernel
    moved to ``concatenated_ranges`` + ``np.bincount``.
    """
    out_indptr, out_indices = graph.out_csr()
    in_degrees = graph.in_degrees()
    starts = out_indptr[frontier_nodes]
    counts = out_indptr[frontier_nodes + 1] - starts
    total_edges = int(counts.sum())
    if total_edges == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    edge_offsets = np.repeat(starts, counts) + (
        np.arange(total_edges, dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )
    successors = out_indices[edge_offsets]
    contributions = (
        sqrt_c * np.repeat(frontier_values, counts) / in_degrees[successors]
    )
    buffer = np.zeros(graph.num_nodes, dtype=np.float64)
    np.add.at(buffer, successors, contributions)
    next_nodes = np.flatnonzero(buffer)
    return next_nodes, buffer[next_nodes]


def legacy_single_source(graph, query_set, corrections, sqrt_c, theta) -> np.ndarray:
    """Algorithm 6 as it ran before: np.fromiter frontiers, fresh buffers."""
    scores = np.zeros(graph.num_nodes, dtype=np.float64)
    for level, entries in sorted(query_set.levels.items()):
        if not entries:
            continue
        frontier_nodes = np.fromiter(entries.keys(), dtype=np.int64, count=len(entries))
        frontier_values = np.fromiter(
            entries.values(), dtype=np.float64, count=len(entries)
        )
        frontier_values = frontier_values * corrections[frontier_nodes]
        prune_threshold = (sqrt_c**level) * theta
        for _ in range(level):
            keep = frontier_values > prune_threshold
            frontier_nodes = frontier_nodes[keep]
            frontier_values = frontier_values[keep]
            if frontier_nodes.size == 0:
                break
            frontier_nodes, frontier_values = legacy_push_frontier(
                graph, frontier_nodes, frontier_values, sqrt_c
            )
        if frontier_nodes.size:
            np.add.at(scores, frontier_nodes, frontier_values)
    return np.minimum(scores, 1.0)


def legacy_save(index, directory: Path) -> Path:
    """The version-1 persistence format: one compressed npz archive."""
    store = index.packed_store
    np.savez_compressed(
        directory / "sling_data.npz",
        corrections=index.correction_factors,
        reduced=np.zeros(0, dtype=bool),
        offsets=store.offsets,
        levels=store.levels,
        targets=store.targets,
        values=store.values,
    )
    return directory / "sling_data.npz"


def legacy_load(npz_path: Path, num_nodes: int) -> list[HittingProbabilitySet]:
    """The version-1 load path: decompress, then per-node dict round-trip."""
    data = np.load(npz_path)
    offsets = data["offsets"]
    levels = data["levels"]
    targets = data["targets"]
    values = data["values"]
    _ = data["corrections"]
    hitting_sets = []
    for node in range(num_nodes):
        start, stop = int(offsets[node]), int(offsets[node + 1])
        hitting_set = HittingProbabilitySet()
        for level, target, value in zip(
            levels[start:stop], targets[start:stop], values[start:stop]
        ):
            hitting_set.set(int(level), int(target), float(value))
        hitting_sets.append(hitting_set)
    return hitting_sets


def _best_of(run, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    *,
    dataset: str = "GrQc",
    scale: float = 0.12,
    epsilon: float = 0.025,
    num_pairs: int = 2000,
    num_sources: int = 40,
    k: int = 10,
    hot_fraction: float = 0.25,
    repeats: int = 3,
    load_repeats: int = 3,
    seed: int = 0,
    target_pair_speedup: float = DEFAULT_TARGET_PAIR_SPEEDUP,
    target_load_speedup: float = DEFAULT_TARGET_LOAD_SPEEDUP,
    target_source_speedup: float = DEFAULT_TARGET_SOURCE_SPEEDUP,
    target_topk_speedup: float = DEFAULT_TARGET_TOPK_SPEEDUP,
) -> dict:
    """Measure dict vs packed latency on one warm index."""
    graph = datasets.load_dataset(dataset, scale=scale, seed=seed)
    build_start = time.perf_counter()
    index = SlingIndex(graph, epsilon=epsilon, seed=seed).build()
    build_seconds = time.perf_counter() - build_start
    n = graph.num_nodes
    corrections = index.correction_factors
    params = index.parameters
    store = index.packed_store
    # The dict baseline queried resident dict sets; materialise them once,
    # outside the timed region, exactly as the old index held them.
    hitting_sets = index.hitting_sets

    rng = np.random.default_rng(seed)
    hot = max(2, int(n * hot_fraction))
    pairs = [
        (int(u), int(v))
        for u, v in zip(
            rng.integers(0, hot, num_pairs), rng.integers(0, hot, num_pairs)
        )
    ]
    sources = [int(node) for node in rng.integers(0, n, num_sources)]

    # -- single pair ----------------------------------------------------- #
    def run_pairs_packed():
        single_pair = index.single_pair
        for u, v in pairs:
            single_pair(u, v)

    def run_pairs_dict():
        for u, v in pairs:
            legacy_intersect(hitting_sets[u], hitting_sets[v], corrections)

    # parity guard: the two paths must answer identically (up to the dict
    # loop's summation-order reassociation) before any timing is trusted
    parity_ok = all(
        abs(
            index.single_pair(u, v)
            - legacy_intersect(hitting_sets[u], hitting_sets[v], corrections)
        )
        <= 1e-12
        for u, v in pairs[:50]
    )

    pair_dict_seconds = _best_of(run_pairs_dict, repeats)
    pair_packed_seconds = _best_of(run_pairs_packed, repeats)

    # -- single source ---------------------------------------------------- #
    def run_sources_packed():
        for node in sources:
            index.single_source(node)

    def run_sources_dict():
        for node in sources:
            legacy_single_source(
                graph, hitting_sets[node], corrections, params.sqrt_c, params.theta
            )

    source_dict_seconds = _best_of(run_sources_dict, repeats)
    source_packed_seconds = _best_of(run_sources_packed, repeats)

    # -- top-k ------------------------------------------------------------ #
    def run_topk_packed():
        for node in sources:
            index.top_k(node, k)

    def run_topk_dict():
        for node in sources:
            scores = legacy_single_source(
                graph, hitting_sets[node], corrections, params.sqrt_c, params.theta
            )
            rank_top_k(scores, node, k)

    topk_dict_seconds = _best_of(run_topk_dict, repeats)
    topk_packed_seconds = _best_of(run_topk_packed, repeats)

    # -- index load -------------------------------------------------------- #
    with tempfile.TemporaryDirectory(prefix="repro-bench-packed-") as tmp:
        tmp_path = Path(tmp)
        packed_dir = save_index(index, tmp_path / "v2")
        legacy_dir = tmp_path / "v1"
        legacy_dir.mkdir()
        npz_path = legacy_save(index, legacy_dir)

        load_dict_seconds = _best_of(lambda: legacy_load(npz_path, n), load_repeats)
        load_packed_seconds = _best_of(
            lambda: load_index(packed_dir, graph), load_repeats
        )
        # one post-load query to prove the mmap path is usable, not lazy-broken
        reloaded = load_index(packed_dir, graph)
        load_parity = reloaded.single_pair(0, min(1, n - 1)) == index.single_pair(
            0, min(1, n - 1)
        )

    def cell(dict_seconds: float, packed_seconds: float, count: int) -> dict:
        return {
            "dict_seconds": dict_seconds,
            "packed_seconds": packed_seconds,
            "dict_microseconds_each": 1e6 * dict_seconds / count,
            "packed_microseconds_each": 1e6 * packed_seconds / count,
            "speedup": dict_seconds / packed_seconds if packed_seconds else 0.0,
        }

    cells = {
        "single_pair": cell(pair_dict_seconds, pair_packed_seconds, num_pairs),
        "single_source": cell(source_dict_seconds, source_packed_seconds, num_sources),
        "top_k": cell(topk_dict_seconds, topk_packed_seconds, num_sources),
        "load": cell(load_dict_seconds, load_packed_seconds, 1),
    }
    return {
        "benchmark": "packed_query",
        "dataset": dataset,
        "scale": scale,
        "epsilon": epsilon,
        "num_nodes": n,
        "num_edges": graph.num_edges,
        "num_hitting_entries": store.num_entries,
        "average_set_size": store.num_entries / n,
        "index_size_bytes": index.index_size_bytes(),
        "resident_bytes": index.resident_bytes(),
        "build_seconds": build_seconds,
        "num_pairs": num_pairs,
        "num_sources": num_sources,
        "k": k,
        "repeats": repeats,
        "seed": seed,
        "cells": cells,
        "speedups": {name: c["speedup"] for name, c in cells.items()},
        "parity_ok": bool(parity_ok and load_parity),
        "targets": {
            "single_pair": target_pair_speedup,
            "load": target_load_speedup,
            # Same-algorithm exact paths, so these are no-regression floors;
            # the cascade/bounded kernels carry their own 5x/10x targets in
            # bench_single_source.py.
            "single_source": target_source_speedup,
            "top_k": target_topk_speedup,
        },
        "meets_targets": {
            "single_pair": cells["single_pair"]["speedup"] >= target_pair_speedup,
            "load": cells["load"]["speedup"] >= target_load_speedup,
            "single_source": cells["single_source"]["speedup"]
            >= target_source_speedup,
            "top_k": cells["top_k"]["speedup"] >= target_topk_speedup,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="GrQc", choices=datasets.dataset_names())
    parser.add_argument("--scale", type=float, default=0.12)
    parser.add_argument(
        "--epsilon", type=float, default=0.025,
        help="accuracy target (default: the paper's 0.025)",
    )
    parser.add_argument("--pairs", type=int, default=2000)
    parser.add_argument("--sources", type=int, default=40)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--load-repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--target-pair", type=float, default=DEFAULT_TARGET_PAIR_SPEEDUP)
    parser.add_argument("--target-load", type=float, default=DEFAULT_TARGET_LOAD_SPEEDUP)
    parser.add_argument(
        "--target-source", type=float, default=DEFAULT_TARGET_SOURCE_SPEEDUP
    )
    parser.add_argument(
        "--target-topk", type=float, default=DEFAULT_TARGET_TOPK_SPEEDUP
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fast configuration for CI schema checks",
    )
    args = parser.parse_args(argv)
    overrides = {}
    if args.smoke:
        overrides = {"scale": 0.05, "num_pairs": 400, "num_sources": 10, "repeats": 2}
    payload = run_benchmark(
        dataset=args.dataset,
        scale=overrides.get("scale", args.scale),
        epsilon=args.epsilon,
        num_pairs=overrides.get("num_pairs", args.pairs),
        num_sources=overrides.get("num_sources", args.sources),
        k=args.k,
        repeats=overrides.get("repeats", args.repeats),
        load_repeats=args.load_repeats,
        seed=args.seed,
        target_pair_speedup=args.target_pair,
        target_load_speedup=args.target_load,
        target_source_speedup=args.target_source,
        target_topk_speedup=args.target_topk,
    )
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
