#!/usr/bin/env python3
"""Service-envelope overhead: ``SimRankService.execute`` vs direct engine calls.

The service layer wraps every answer in a typed :class:`QueryResult` envelope
(value, backend, plan, latency, cache-hit flag) and never raises across the
boundary.  That costs something on every query; this benchmark measures how
much, against the *cheapest possible* baseline — direct
:class:`~repro.engine.QueryEngine` calls on a fully warm cache, where a
single-pair query is just a dict lookup.

Three workload cells, each measured as best-of-``--repeats`` over
``--queries`` calls:

* ``single_pair_warm`` — the adversarial cell: the direct call costs ~2 µs,
  so the envelope's fixed cost dominates the ratio.  The <10 % target only
  holds here if the per-call fixed cost drops below ~0.2 µs, which pure
  Python cannot do; the cell exists to keep the fixed cost visible and
  shrinking, not because the ratio is achievable today.
* ``top_k_warm`` — a realistic cached query (vector copy + ranking);
* ``single_source_cold`` — an uncached backend query, the shape cold
  traffic takes.

Results are emitted as JSON on stdout::

    PYTHONPATH=src python benchmarks/bench_service_overhead.py --scale 0.1

``overheads.<cell>`` is the fractional wall-clock overhead of the service
path ((service - direct) / direct); ``meets_target.<cell>`` compares it
against ``--target`` (default 0.10).
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.engine import BackendConfig
from repro.graphs import datasets
from repro.service import (
    ServiceConfig,
    SimRankService,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
)

#: The overhead target the issue tracker set for warm-cache single-pair.
DEFAULT_TARGET_FRACTION = 0.10


def _best_of(run, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    *,
    dataset: str = "GrQc",
    scale: float = 0.1,
    epsilon: float = 0.1,
    num_queries: int = 500,
    distinct_sources: int = 8,
    k: int = 10,
    repeats: int = 5,
    seed: int = 0,
    target_fraction: float = DEFAULT_TARGET_FRACTION,
) -> dict:
    """Measure all three cells on one shared session and return the payload."""
    service = SimRankService(
        ServiceConfig(
            scale=scale,
            seed=seed,
            backend_config=BackendConfig(epsilon=epsilon, seed=seed),
        )
    )
    session = service.open_dataset(dataset)
    engine = session.engine()
    n = session.num_nodes

    rng = np.random.default_rng(seed)
    sources = [int(node) for node in rng.integers(0, min(distinct_sources, n),
                                                  size=num_queries)]
    targets = [int(node) for node in rng.integers(0, n, size=num_queries)]
    pairs = list(zip(sources, targets))
    for source in set(sources):  # warm the cache for the warm cells
        engine.single_source(source)

    pair_queries = [SinglePairQuery(dataset, u, v) for u, v in pairs]
    top_queries = [TopKQuery(dataset, node=u, k=k) for u in sources]
    source_queries = [SingleSourceQuery(dataset, node=u) for u in sources]

    cells: dict[str, dict] = {}

    def cell(name: str, direct_run, service_run) -> None:
        direct = _best_of(direct_run, repeats)
        via_service = _best_of(service_run, repeats)
        cells[name] = {
            "direct_microseconds_per_query": 1e6 * direct / num_queries,
            "service_microseconds_per_query": 1e6 * via_service / num_queries,
            "overhead_fraction": (via_service - direct) / direct,
        }

    cell(
        "single_pair_warm",
        lambda: [engine.single_pair(u, v) for u, v in pairs],
        lambda: [service.execute(query) for query in pair_queries],
    )
    cell(
        "top_k_warm",
        lambda: [engine.top_k(u, k) for u in sources],
        lambda: [service.execute(query) for query in top_queries],
    )

    # Cold cell: clear the cache around every call on both sides so each
    # query pays the full backend cost; the clear itself is noise relative
    # to an uncached single-source computation.
    def direct_cold() -> None:
        for source in sources:
            engine.clear_cache()
            engine.single_source(source)

    def service_cold() -> None:
        for query in source_queries:
            engine.clear_cache()
            service.execute(query)

    cell("single_source_cold", direct_cold, service_cold)

    return {
        "benchmark": "service_overhead",
        "dataset": dataset,
        "scale": scale,
        "epsilon": epsilon,
        "num_nodes": n,
        "num_queries": num_queries,
        "distinct_sources": min(distinct_sources, n),
        "k": k,
        "repeats": repeats,
        "seed": seed,
        "backend": engine.backend.name,
        "cells": cells,
        "overheads": {
            name: cell_data["overhead_fraction"] for name, cell_data in cells.items()
        },
        "target_fraction": target_fraction,
        "meets_target": {
            name: cell_data["overhead_fraction"] < target_fraction
            for name, cell_data in cells.items()
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="GrQc", choices=datasets.dataset_names())
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--queries", type=int, default=500)
    parser.add_argument("--distinct-sources", type=int, default=8)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--target", type=float, default=DEFAULT_TARGET_FRACTION)
    args = parser.parse_args(argv)
    payload = run_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        epsilon=args.epsilon,
        num_queries=args.queries,
        distinct_sources=args.distinct_sources,
        k=args.k,
        repeats=args.repeats,
        seed=args.seed,
        target_fraction=args.target,
    )
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
