#!/usr/bin/env python3
"""Dynamic-graph maintenance: incremental repair vs full rebuild, plus a
mutation storm through the sharded serving stack.

Three questions, one payload:

* **Is incremental repair worth it?**  The ``incremental_update`` cell
  times a from-scratch :class:`~repro.sling.SlingIndex` build against the
  mean cost of a single-edge :meth:`~repro.sling.DynamicSlingIndex.mutate`
  batch on the same graph.  The recorded target is a >= 10x advantage —
  the repair touches only the affected hitting-set entries and re-samples
  only the mutated heads' correction factors, while the rebuild pays for
  every node.

* **Does serving survive a mutation storm?**  The ``mutation_storm`` cell
  replays a seeded mutation-bearing traffic stream (see
  ``repro.evaluation.traffic``) through a 2-worker router and records
  query p50/p99 while ``mutate`` control requests interleave with reads.
  ``version_echo_ok`` asserts the core consistency contract along the
  way: the stream is serial, so every answer must echo exactly the
  ``index_version`` acknowledged by the most recent mutation — a stale
  cached vector passed off under a newer version would break the echo.

* **Is the staleness certificate honest?**  Before compaction the maximum
  deviation of every single-source vector from a from-scratch rebuild on
  the mutated graph must stay within the certified ``ε_stale``
  (``eps_stale_ok``); after :meth:`~repro.sling.DynamicSlingIndex.refreeze`
  the correction factors and a node sample of store columns and answers
  must be **bitwise** rebuild-identical (``rebuild_parity_ok``).

    PYTHONPATH=src python benchmarks/bench_dynamic.py --smoke

``benchmarks/record.py`` records the payload as ``BENCH_dynamic.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.engine import latency_quantiles
from repro.evaluation.traffic import TrafficPattern, generate_traffic
from repro.graphs import datasets
from repro.service import Address, Router, SimRankClient, WorkerPool
from repro.sling import DynamicSlingIndex, SlingIndex

DEFAULT_SPEEDUP_TARGET = 10.0
ROUTER_WORKERS = 2


def _storm_pattern(*, num_queries: int, seed: int) -> TrafficPattern:
    """Read-heavy traffic with a steady trickle of edge mutations."""
    return TrafficPattern(
        num_queries=num_queries,
        seed=seed,
        zipf_exponent=1.2,
        hot_set_size=8,
        top_k_fraction=0.45,
        single_source_fraction=0.25,
        mutation_fraction=0.08,
        mutation_batch=1,
        mutation_refreeze_every=4,
    )


def time_incremental_vs_rebuild(
    graph, *, epsilon: float, seed: int, num_batches: int
) -> tuple[dict, DynamicSlingIndex]:
    """Time a full build and ``num_batches`` single-edge incremental
    repairs on the same graph; returns the cell and the (dirty) index."""
    begin = time.perf_counter()
    base = SlingIndex(graph, epsilon=epsilon, seed=seed).build()
    build_seconds = time.perf_counter() - begin

    index = DynamicSlingIndex.from_index(base)
    rng = np.random.default_rng(seed)
    batch_seconds = []
    for _ in range(num_batches):
        while True:
            u, v = (int(x) for x in rng.integers(0, graph.num_nodes, size=2))
            if u != v and not index.graph.has_edge(u, v):
                break
        begin = time.perf_counter()
        index.add_edges([(u, v)])
        batch_seconds.append(time.perf_counter() - begin)
    incremental_seconds = float(np.mean(batch_seconds))
    cell = {
        "label": "single-edge incremental repair vs full rebuild",
        "build_seconds": build_seconds,
        "seconds": incremental_seconds,
        "batches": num_batches,
        "edges_per_batch": 1,
        "speedup": build_seconds / incremental_seconds,
    }
    return cell, index


def check_staleness_and_parity(
    index: DynamicSlingIndex, *, epsilon: float, seed: int, sample: int
) -> tuple[bool, bool, dict]:
    """``(eps_stale_ok, rebuild_parity_ok, detail)`` for the dirty index."""
    bound = index.staleness_bound()
    fresh = SlingIndex(index.graph, epsilon=epsilon, seed=seed).build()
    rng = np.random.default_rng(seed + 1)
    nodes = rng.choice(
        index.graph.num_nodes, size=min(sample, index.graph.num_nodes),
        replace=False,
    )
    max_deviation = max(
        float(np.abs(index.single_source(int(n)) - fresh.single_source(int(n))).max())
        for n in nodes
    )
    eps_stale_ok = bool(index.is_dirty and max_deviation <= bound)

    index.refreeze()
    parity = bool(
        np.array_equal(index.correction_factors, fresh.correction_factors)
        and index.packed_store.num_entries == fresh.packed_store.num_entries
        and not index.is_dirty
    )
    for n in nodes:
        n = int(n)
        if not np.array_equal(index.single_source(n), fresh.single_source(n)):
            parity = False
            break
        mine = index.packed_store.node_entries(n)
        theirs = fresh.packed_store.node_entries(n)
        if not all(np.array_equal(a, b) for a, b in zip(mine, theirs)):
            parity = False
            break
    detail = {
        "staleness_bound": bound,
        "max_deviation_while_dirty": max_deviation,
        "parity_sample_nodes": len(nodes),
    }
    return eps_stale_ok, parity, detail


def run_mutation_storm(
    dataset: str, *, scale: float, epsilon: float, seed: int, num_queries: int
) -> tuple[dict, bool]:
    """Replay a mutation-bearing stream through a 2-worker router.

    Returns the recorded cell and the version-echo verdict: the replay is
    serial, so each answer must carry exactly the ``index_version`` of the
    most recent mutation ack (and none before the first mutation).
    """
    graph = datasets.load_dataset(dataset, scale=scale, seed=seed)
    pattern = _storm_pattern(num_queries=num_queries, seed=seed)
    events = generate_traffic({dataset: graph.num_nodes}, pattern)
    serve_args = [
        "--scale", str(scale),
        "--epsilon", str(epsilon),
        "--seed", str(seed),
        "--backend", "sling",
    ]
    pool = WorkerPool(ROUTER_WORKERS, serve_args=serve_args)
    pool.start()
    router = Router(
        pool, address=Address(family="tcp", host="127.0.0.1", port=0)
    )
    router.start()
    echo_ok = True
    expected_version: int | None = None
    mutations = 0
    samples: list[float] = []
    mutate_samples: list[float] = []
    try:
        client = SimRankClient(address=str(router.address))
        client.open_dataset(dataset)
        begin = time.perf_counter()
        for event in events:
            started = time.perf_counter()
            result = client.execute(event.query)
            elapsed = time.perf_counter() - started
            if not result.ok:
                raise RuntimeError(
                    f"{event.kind} failed mid-storm: {result.error.message}"
                )
            if event.kind == "mutate":
                mutations += 1
                expected_version = result.value["index_version"]
                mutate_samples.append(elapsed)
            else:
                samples.append(elapsed)
                if result.index_version != expected_version:
                    echo_ok = False
        seconds = time.perf_counter() - begin
        client.close()
    finally:
        router.stop()
    overall = latency_quantiles(samples)
    mutate = latency_quantiles(mutate_samples) if mutate_samples else {}
    cell = {
        "label": f"{num_queries}-event storm through {ROUTER_WORKERS}-worker "
                 "router",
        "seconds": seconds,
        "queries": len(samples),
        "mutations": mutations,
        "queries_per_second": len(samples) / seconds,
        "p50_ms": 1e3 * overall["p50"],
        "p99_ms": 1e3 * overall["p99"],
        "mutate_p50_ms": 1e3 * mutate.get("p50", 0.0),
        "mutate_p99_ms": 1e3 * mutate.get("p99", 0.0),
        "final_index_version": expected_version,
    }
    return cell, bool(echo_ok and mutations > 0)


def run_benchmark(
    *,
    dataset: str = "HepTh",
    scale: float = 1.0,
    epsilon: float = 0.05,
    seed: int = 0,
    num_batches: int = 5,
    storm_queries: int = 400,
    storm_scale: float = 0.05,
    parity_sample: int = 50,
    speedup_target: float = DEFAULT_SPEEDUP_TARGET,
) -> dict:
    graph = datasets.load_dataset(dataset, scale=scale, seed=seed)
    cell, index = time_incremental_vs_rebuild(
        graph, epsilon=epsilon, seed=seed, num_batches=num_batches
    )
    eps_stale_ok, rebuild_parity_ok, guard_detail = check_staleness_and_parity(
        index, epsilon=epsilon, seed=seed, sample=parity_sample
    )
    storm_cell, version_echo_ok = run_mutation_storm(
        dataset,
        scale=storm_scale,
        epsilon=epsilon,
        seed=seed,
        num_queries=storm_queries,
    )
    speedups = {"incremental_update": cell["speedup"]}
    targets = {"incremental_update": speedup_target}
    return {
        "benchmark": "dynamic",
        "dataset": dataset,
        "scale": scale,
        "storm_scale": storm_scale,
        "epsilon": epsilon,
        "seed": seed,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "cells": {"incremental_update": cell, "mutation_storm": storm_cell},
        "speedups": speedups,
        "targets": targets,
        "meets_targets": {
            name: speedups[name] >= target for name, target in targets.items()
        },
        "guards": guard_detail,
        "eps_stale_ok": eps_stale_ok,
        "rebuild_parity_ok": rebuild_parity_ok,
        "version_echo_ok": version_echo_ok,
    }


SMOKE_OVERRIDES = {
    "scale": 0.2,
    "num_batches": 3,
    "storm_queries": 120,
    "parity_sample": 25,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="HepTh")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--epsilon", type=float, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--batches", type=int, default=None)
    parser.add_argument("--storm-queries", type=int, default=None)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small-scale run for CI: same payload shape, faster",
    )
    args = parser.parse_args(argv)
    overrides: dict = dict(SMOKE_OVERRIDES) if args.smoke else {}
    overrides["dataset"] = args.dataset
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.epsilon is not None:
        overrides["epsilon"] = args.epsilon
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.batches is not None:
        overrides["num_batches"] = args.batches
    if args.storm_queries is not None:
        overrides["storm_queries"] = args.storm_queries
    payload = run_benchmark(**overrides)
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
