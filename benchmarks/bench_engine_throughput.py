#!/usr/bin/env python3
"""Engine throughput: batched vs. one-at-a-time queries, cold vs. warm cache.

Unlike the figure benchmarks (which time one backend primitive under
pytest-benchmark), this script measures the *engine layer* itself: how many
single-source queries per second the :class:`~repro.engine.QueryEngine`
sustains in four cells —

* ``single_cold``   — one query at a time, caching disabled (the pre-engine
  dispatch style: every query pays the full local-push cost);
* ``single_warm``   — one at a time against a warmed LRU cache;
* ``batched_cold``  — one ``single_source_many`` call on an empty cache
  (within-batch deduplication amortizes repeated sources);
* ``batched_warm``  — the same batch again, fully cache-resident.

The workload revisits a hot set of sources (zipf-like skew), as a serving
workload would.  Results are emitted as JSON on stdout::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --scale 0.1

The headline number is ``speedups.batched_warm_vs_single_cold``, which the
engine tests assert stays >= 2.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.engine import BackendConfig, QueryEngine, create_backend
from repro.graphs import datasets


def build_workload(
    num_nodes: int, num_queries: int, distinct_sources: int, seed: int
) -> list[int]:
    """A skewed single-source workload: ``num_queries`` draws over a hot set
    of ``distinct_sources`` nodes, earlier sources more popular (zipf-like)."""
    if num_queries <= 0 or distinct_sources <= 0:
        raise ValueError("num_queries and distinct_sources must be positive")
    rng = np.random.default_rng(seed)
    distinct_sources = min(distinct_sources, num_nodes)
    hot = rng.choice(num_nodes, size=distinct_sources, replace=False)
    weights = 1.0 / np.arange(1, distinct_sources + 1)
    weights /= weights.sum()
    return [int(node) for node in rng.choice(hot, size=num_queries, p=weights)]


def _measure(run, num_queries: int) -> dict:
    start = time.perf_counter()
    run()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "queries_per_second": num_queries / elapsed if elapsed > 0 else float("inf"),
    }


def run_benchmark(
    *,
    dataset: str = "GrQc",
    scale: float = 0.1,
    epsilon: float = 0.1,
    num_queries: int = 60,
    distinct_sources: int = 12,
    cache_size: int = 64,
    seed: int = 0,
) -> dict:
    """Run all four cells on one shared backend and return the JSON payload."""
    graph = datasets.load_dataset(dataset, scale=scale, seed=seed)
    config = BackendConfig(epsilon=epsilon, seed=seed)
    backend = create_backend("sling", graph, config)
    workload = build_workload(graph.num_nodes, num_queries, distinct_sources, seed)

    cells: dict[str, dict] = {}

    uncached = QueryEngine(backend, cache_size=0)
    cells["single_cold"] = _measure(
        lambda: [uncached.single_source(node) for node in workload], num_queries
    )

    warm = QueryEngine(backend, cache_size=cache_size)
    for node in workload:  # warm the cache outside the measurement
        warm.single_source(node)
    warm.reset_statistics()
    cells["single_warm"] = _measure(
        lambda: [warm.single_source(node) for node in workload], num_queries
    )
    cells["single_warm"]["cache_hit_rate"] = warm.statistics.cache_hit_rate

    batched = QueryEngine(backend, cache_size=cache_size)
    cells["batched_cold"] = _measure(
        lambda: batched.single_source_many(workload), num_queries
    )
    cells["batched_cold"]["cache_hit_rate"] = batched.statistics.cache_hit_rate

    batched.reset_statistics()
    cells["batched_warm"] = _measure(
        lambda: batched.single_source_many(workload), num_queries
    )
    cells["batched_warm"]["cache_hit_rate"] = batched.statistics.cache_hit_rate

    def qps(cell: str) -> float:
        return cells[cell]["queries_per_second"]

    return {
        "benchmark": "engine_throughput",
        "dataset": dataset,
        "scale": scale,
        "epsilon": epsilon,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_queries": num_queries,
        "distinct_sources": min(distinct_sources, graph.num_nodes),
        "cache_size": cache_size,
        "seed": seed,
        "cells": cells,
        "speedups": {
            "batched_warm_vs_single_cold": qps("batched_warm") / qps("single_cold"),
            "batched_cold_vs_single_cold": qps("batched_cold") / qps("single_cold"),
            "single_warm_vs_single_cold": qps("single_warm") / qps("single_cold"),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="GrQc", choices=datasets.dataset_names())
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument("--distinct-sources", type=int, default=12)
    parser.add_argument("--cache-size", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    payload = run_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        epsilon=args.epsilon,
        num_queries=args.queries,
        distinct_sources=args.distinct_sources,
        cache_size=args.cache_size,
        seed=args.seed,
    )
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
