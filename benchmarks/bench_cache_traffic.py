#!/usr/bin/env python3
"""Caching under realistic traffic: hit rate and tail latency vs cache size.

``bench_serving`` proved the router scales; this benchmark proves the
**cache** earns its keep on traffic shaped like a real public service
(SkyServer-style: Zipf-skewed sources, a hot set that drifts, arrival
bursts, a uniform long tail — see ``repro.evaluation.traffic``).  One
seeded :class:`~repro.evaluation.traffic.TrafficPattern` generates a
single wire-ready event stream; the *same* stream then drives:

* an in-process :class:`~repro.service.SimRankService` at cache sizes
  0 / small / large (same saved SLING index attached read-only each
  time), and
* a 2-worker router front end at the large cache size — proving the
  stats plumbing and the cache behavior survive the multi-process path.

Before the timed drive, each configuration warms the cache with one
single-source sweep over the stream's distinct sources (at the large
size the per-dataset LRU covers every source, so the steady-state
hit rate is the pattern's cacheable fraction; at size 0 the sweep is a
no-op).  Hit rates come from service ``stats`` counter deltas — the
same ``cache_hits`` / ``cache_misses`` definition the engine, service,
and router all share.

``identical_values`` asserts the cache never changes answers: the
JSON-normalised value of every timed query is byte-identical across the
three local cache configurations, and ``router_identical_values``
extends that to the router run.  The stream keeps ``single_pair``
queries **cold** (canonical nodes outside the source region) and the
service runs with cross-kind admission disabled, because on the sling
backend a pair read from a cached vector and a pair estimated directly
agree only within the accuracy target — admission would leak cache
state into values, which is exactly what the guard forbids.  (Admission
correctness is covered by the engine unit tests against an exact
backend.)

Recorded guards: warm hit rate at the large cache >= ``--hit-target``
(default 0.5) and cacheable-query p99 at cache 0 at least
``--p99-target`` (default 2x) the large-cache p99.

    PYTHONPATH=src python benchmarks/bench_cache_traffic.py --smoke

``benchmarks/record.py`` records the payload as
``BENCH_cache_traffic.json``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.engine import latency_percentiles_by_kind, latency_quantiles
from repro.evaluation.traffic import (
    TrafficPattern,
    generate_traffic,
    summarize_events,
    traffic_sources,
)
from repro.service import (
    Address,
    Router,
    ServiceConfig,
    SimRankClient,
    SimRankService,
    SingleSourceQuery,
    WorkerPool,
)

from bench_serving import _normalise, prebuild_indexes

DEFAULT_HIT_TARGET = 0.5
DEFAULT_P99_TARGET = 2.0
DEFAULT_DATASETS = ("GrQc", "HepTh")
ROUTER_WORKERS = 2

#: Cache sizes under test: none, far smaller than the source set, and
#: large enough to cover every source a dataset's stream touches.
CACHE_SIZES = {"cache_0": 0, "cache_small": 16, "cache_large": 160}

#: Query kinds a single-source vector cache can serve.
CACHEABLE_KINDS = ("top_k", "single_source")


def build_pattern(
    *,
    num_queries: int,
    seed: int,
    source_span: int,
    hot_set_size: int,
    drift_every: int,
    drift_step: int,
    k: int,
) -> TrafficPattern:
    """The benchmark's traffic shape: skewed, drifting, bursty, pair-cold."""
    return TrafficPattern(
        num_queries=num_queries,
        seed=seed,
        zipf_exponent=1.2,
        hot_set_size=hot_set_size,
        drift_every=drift_every,
        drift_step=drift_step,
        burst_every=160,
        burst_length=32,
        burst_hot_bias=0.85,
        tail_fraction=0.08,
        top_k_fraction=0.70,
        single_source_fraction=0.15,
        k=k,
        source_span=source_span,
        pair_mode="cold",
    )


def _warm_sources(execute, sources: dict[str, list[int]]) -> None:
    """One single-source sweep per distinct (dataset, source): after this,
    every cacheable query of the stream has its vector resident (capacity
    permitting)."""
    for name, nodes in sources.items():
        for node in nodes:
            result = execute(SingleSourceQuery(dataset=name, node=node))
            if not result.ok:
                raise RuntimeError(
                    f"warm sweep failed on {name}/{node}: {result.error.message}"
                )


def _drive(execute, events, *, warmup: int) -> dict:
    """Run the stream; time and capture values from position ``warmup`` on."""
    values: list[str] = []
    samples: list[tuple[str, float]] = []
    timed_started = None
    for position, event in enumerate(events):
        if position == warmup:
            timed_started = time.perf_counter()
        begin = time.perf_counter()
        result = execute(event.query)
        elapsed = time.perf_counter() - begin
        if not result.ok:
            raise RuntimeError(
                f"{event.kind} @ {position} failed: {result.error.message}"
            )
        if timed_started is not None:
            samples.append((event.kind, elapsed))
            values.append(_normalise(result.value))
    seconds = time.perf_counter() - timed_started
    return {"values": values, "samples": samples, "seconds": seconds}


def _cell(label: str, cache_size: int, outcome: dict, delta: dict) -> dict:
    """One recorded cell: throughput, hit rate, overall + cacheable tails."""
    samples = outcome["samples"]
    seconds = outcome["seconds"]
    overall = latency_quantiles([elapsed for _, elapsed in samples])
    cacheable = latency_quantiles(
        [elapsed for kind, elapsed in samples if kind in CACHEABLE_KINDS]
    )
    looked_up = delta["cache_hits"] + delta["cache_misses"]
    return {
        "label": label,
        "cache_size": cache_size,
        "queries": len(samples),
        "seconds": seconds,
        "queries_per_second": len(samples) / seconds,
        "hit_rate": delta["cache_hits"] / looked_up if looked_up else 0.0,
        "cache_hits": delta["cache_hits"],
        "cache_misses": delta["cache_misses"],
        "p50_ms": 1e3 * overall["p50"],
        "p99_ms": 1e3 * overall["p99"],
        "cacheable_p50_ms": 1e3 * cacheable["p50"],
        "cacheable_p99_ms": 1e3 * cacheable["p99"],
        "latency_ms_by_kind": {
            kind: {
                key: (1e3 * value if key.startswith("p") else value)
                for key, value in stats.items()
            }
            for kind, stats in latency_percentiles_by_kind(samples).items()
        },
    }


def _totals_delta(before: dict, after: dict) -> dict:
    return {
        key: after[key] - before[key] for key in ("cache_hits", "cache_misses")
    }


def run_local_config(
    label: str,
    cache_size: int,
    names: tuple[str, ...],
    events,
    sources: dict[str, list[int]],
    *,
    index_root: Path,
    scale: float,
    epsilon: float,
    seed: int,
    warmup: int,
) -> dict:
    """Drive the stream through one in-process service at ``cache_size``."""
    service = SimRankService(
        ServiceConfig(
            backend="auto",
            cache_size=cache_size,
            # No cross-kind admission: on sling, a pair served from a vector
            # differs from the scalar estimate within epsilon, and the
            # identical_values guard requires pair answers to be independent
            # of cache state.
            pair_admission_threshold=None,
            index_dir=str(index_root),
            scale=scale,
            seed=seed,
        )
    )
    try:
        for name in names:
            service.open_dataset(name)
        _warm_sources(service.execute, sources)
        before = service.statistics()["totals"]
        outcome = _drive(service.execute, events, warmup=warmup)
        after = service.statistics()["totals"]
    finally:
        service.close_all()
    return {
        "cell": _cell(label, cache_size, outcome, _totals_delta(before, after)),
        "values": outcome["values"],
    }


def run_router_config(
    label: str,
    cache_size: int,
    names: tuple[str, ...],
    events,
    sources: dict[str, list[int]],
    *,
    index_root: Path,
    scale: float,
    epsilon: float,
    seed: int,
    warmup: int,
) -> dict:
    """The same stream end-to-end: 2 serve processes behind a router."""
    serve_args = [
        "--scale", str(scale),
        "--epsilon", str(epsilon),
        "--seed", str(seed),
        "--backend", "sling-disk",
        "--index-dir", str(index_root),
        "--cache-size", str(cache_size),
        "--pair-admit-after", "0",
    ]
    pool = WorkerPool(ROUTER_WORKERS, serve_args=serve_args)
    pool.start()
    router = Router(
        pool,
        address=Address(family="tcp", host="127.0.0.1", port=0),
        pins={name: index % ROUTER_WORKERS for index, name in enumerate(names)},
    )
    router.start()
    try:
        client = SimRankClient(address=str(router.address))
        for name in names:
            client.open_dataset(name)
        _warm_sources(client.execute, sources)
        before = client.stats()["totals"]
        outcome = _drive(client.execute, events, warmup=warmup)
        after = client.stats()["totals"]
        client.close()
    finally:
        router.stop()
    return {
        "cell": _cell(label, cache_size, outcome, _totals_delta(before, after)),
        "values": outcome["values"],
    }


# --------------------------------------------------------------------------- #
def run_benchmark(
    *,
    dataset_names: tuple[str, ...] = DEFAULT_DATASETS,
    scale: float = 1.0,
    epsilon: float = 0.025,
    num_queries: int = 1200,
    warmup: int = 200,
    source_span: int = 96,
    hot_set_size: int = 48,
    drift_every: int = 150,
    drift_step: int = 3,
    cache_sizes: dict[str, int] | None = None,
    k: int = 10,
    seed: int = 0,
    hit_target: float = DEFAULT_HIT_TARGET,
    p99_target: float = DEFAULT_P99_TARGET,
) -> dict:
    """Hit rate and p50/p99 under skewed drifting traffic at three cache
    sizes, plus the same stream through a 2-worker router."""
    cache_sizes = dict(cache_sizes or CACHE_SIZES)
    root = Path(tempfile.mkdtemp(prefix="repro-bench-cache-traffic-"))
    try:
        sizes = prebuild_indexes(
            dataset_names, scale=scale, epsilon=epsilon, seed=seed, root=root
        )
        pattern = build_pattern(
            num_queries=num_queries,
            seed=seed,
            source_span=source_span,
            hot_set_size=hot_set_size,
            drift_every=drift_every,
            drift_step=drift_step,
            k=k,
        )
        events = generate_traffic(sizes, pattern)
        sources = traffic_sources(events)
        shared = dict(
            index_root=root,
            scale=scale,
            epsilon=epsilon,
            seed=seed,
            warmup=warmup,
        )
        cells: dict[str, dict] = {}
        local_streams: list[list[str]] = []
        for label, cache_size in cache_sizes.items():
            outcome = run_local_config(
                label, cache_size, dataset_names, events, sources, **shared
            )
            cells[label] = outcome["cell"]
            local_streams.append(outcome["values"])
        router_label = f"router_workers_{ROUTER_WORKERS}"
        router_outcome = run_router_config(
            router_label,
            cache_sizes["cache_large"],
            dataset_names,
            events,
            sources,
            **shared,
        )
        cells[router_label] = router_outcome["cell"]
    finally:
        shutil.rmtree(root, ignore_errors=True)

    identical_values = all(
        stream == local_streams[0] for stream in local_streams
    )
    router_identical_values = router_outcome["values"] == local_streams[0]
    base_qps = cells["cache_0"]["queries_per_second"]
    speedups = {
        name: cell["queries_per_second"] / base_qps
        for name, cell in cells.items()
    }
    warm_hit_rate = cells["cache_large"]["hit_rate"]
    p99_improvement = (
        cells["cache_0"]["cacheable_p99_ms"]
        / cells["cache_large"]["cacheable_p99_ms"]
    )
    return {
        "benchmark": "cache_traffic",
        "datasets": list(dataset_names),
        "num_nodes": sizes,
        "scale": scale,
        "epsilon": epsilon,
        "seed": seed,
        "pattern": pattern.as_dict(),
        "workload": summarize_events(events),
        "num_queries": num_queries,
        "warmup": warmup,
        "cache_sizes": cache_sizes,
        "router_workers": ROUTER_WORKERS,
        "cells": cells,
        "speedups": speedups,
        "warm_hit_rate": warm_hit_rate,
        "p99_improvement": p99_improvement,
        "identical_values": bool(identical_values),
        "router_identical_values": bool(router_identical_values),
        "hit_rate_ok": warm_hit_rate >= hit_target,
        "p99_ok": p99_improvement >= p99_target,
        "targets": {"warm_hit_rate": hit_target, "p99_improvement": p99_target},
        "meets_targets": {
            "warm_hit_rate": warm_hit_rate >= hit_target,
            "p99_improvement": p99_improvement >= p99_target,
        },
    }


SMOKE_OVERRIDES = {
    "dataset_names": ("GrQc", "HepTh"),
    "scale": 0.05,
    "epsilon": 0.05,
    "num_queries": 240,
    "warmup": 40,
    "source_span": 24,
    "hot_set_size": 12,
    "drift_every": 60,
    "drift_step": 2,
    "cache_sizes": {"cache_0": 0, "cache_small": 6, "cache_large": 48},
    "k": 5,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--epsilon", type=float, default=0.025)
    parser.add_argument("--queries", type=int, default=1200)
    parser.add_argument("--warmup", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--hit-target", type=float, default=DEFAULT_HIT_TARGET)
    parser.add_argument("--p99-target", type=float, default=DEFAULT_P99_TARGET)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fast configuration for CI schema checks",
    )
    args = parser.parse_args(argv)
    overrides = dict(SMOKE_OVERRIDES) if args.smoke else {}
    payload = run_benchmark(
        scale=overrides.get("scale", args.scale),
        epsilon=overrides.get("epsilon", args.epsilon),
        num_queries=overrides.get("num_queries", args.queries),
        warmup=overrides.get("warmup", args.warmup),
        seed=args.seed,
        hit_target=args.hit_target,
        p99_target=args.p99_target,
        **{
            key: value
            for key, value in overrides.items()
            if key in (
                "dataset_names", "source_span", "hot_set_size",
                "drift_every", "drift_step", "cache_sizes", "k",
            )
        },
    )
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
