"""Figure 1: average single-pair SimRank query cost per dataset and method.

The paper issues 1000 random single-pair queries per dataset and reports the
average time; SLING answers them in O(1/ε), Linearize in O(m log 1/ε), and MC
in O(log(n/δ)/ε²).  Here each benchmark times a batch of random pairs against
a session-cached index, so the per-call numbers reported by pytest-benchmark
are directly comparable across methods within a dataset.
"""

from __future__ import annotations

import pytest

from repro.evaluation import random_pairs

from _config import ALL_DATASETS, TIMING_CONFIG

#: Number of random pairs per measured batch (the paper uses 1000; a smaller
#: batch keeps the pure-Python run short while preserving the comparison).
PAIRS_PER_BATCH = 50

METHODS = ("SLING", "Linearize", "MC")


@pytest.mark.parametrize("dataset", ALL_DATASETS)
@pytest.mark.parametrize("method_name", METHODS)
def bench_single_pair_queries(benchmark, method_cache, graph_cache, dataset, method_name):
    """Average time of a batch of random single-pair queries (Figure 1)."""
    graph = graph_cache(dataset)
    method = method_cache(dataset, method_name, TIMING_CONFIG)
    pairs = random_pairs(graph, PAIRS_PER_BATCH, seed=1)

    def run_batch() -> float:
        total = 0.0
        for node_u, node_v in pairs:
            total += method.single_pair(node_u, node_v)
        return total

    benchmark(run_batch)
    benchmark.extra_info["figure"] = "1"
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method_name
    benchmark.extra_info["queries_per_batch"] = PAIRS_PER_BATCH
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_edges
