"""Figure 2: average single-source SimRank query cost per dataset and method.

Four variants are measured, as in the paper: SLING with Algorithm 6 (the
recommended local-push variant), SLING applying Algorithm 3 once per node,
Linearize, and MC.  The paper only runs the n-fold-Algorithm-3 variant on the
four smallest datasets because it is not competitive; the same restriction is
applied here.
"""

from __future__ import annotations

import pytest

from repro.evaluation import random_sources
from repro.sling import SlingIndex

from _config import ALL_DATASETS, SMALL_DATASETS, TIMING_CONFIG

#: Number of random source nodes per measured batch (paper: 500).
SOURCES_PER_BATCH = 5

METHODS = ("SLING", "SLING (Alg. 3)", "Linearize", "MC")


@pytest.mark.parametrize("dataset", ALL_DATASETS)
@pytest.mark.parametrize("method_name", METHODS)
def bench_single_source_queries(
    benchmark, method_cache, graph_cache, dataset, method_name
):
    """Average time of a batch of random single-source queries (Figure 2)."""
    if method_name == "SLING (Alg. 3)" and dataset not in SMALL_DATASETS:
        pytest.skip("the n-fold Algorithm-3 variant is only run on small datasets")
    graph = graph_cache(dataset)
    base_method = "SLING" if method_name.startswith("SLING") else method_name
    method = method_cache(dataset, base_method, TIMING_CONFIG)
    sources = random_sources(graph, SOURCES_PER_BATCH, seed=2)

    if method_name == "SLING (Alg. 3)":
        assert isinstance(method, SlingIndex)

        def run_batch() -> None:
            for source in sources:
                method.single_source(source, method="pairwise")

    else:

        def run_batch() -> None:
            for source in sources:
                method.single_source(source)

    benchmark(run_batch)
    benchmark.extra_info["figure"] = "2"
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method_name
    benchmark.extra_info["queries_per_batch"] = SOURCES_PER_BATCH
    benchmark.extra_info["nodes"] = graph.num_nodes
