#!/usr/bin/env python3
"""Sharded serving throughput: one worker process vs two vs four.

The router's scale-out story on a single box is **cache capacity**, not
parallelism: every worker is handed the same ``--cache-budget`` of
single-source vectors, and the budget is divided among the datasets a
process has open.  Sharding four datasets over four workers therefore
quadruples each dataset's effective LRU capacity compared to one worker
hosting all four — on a drifting working set that is the difference
between answering a ``top_k`` from a cached vector in ~0.1 ms and
recomputing it in several milliseconds.

The benchmark prebuilds one SLING index per dataset (``save_index``),
then for each worker count in (1, 2, 4) starts a ``WorkerPool`` of real
``repro serve --unix`` processes attaching those indexes read-only
(``--backend sling-disk --index-dir``), fronts them with an in-process
:class:`~repro.service.Router` with round-robin dataset pins, and drives
**the same pre-generated query sequence** through one
:class:`~repro.service.SimRankClient` connection:

* a per-dataset sliding window of sources (``top_k`` and
  ``single_source``) sized so per-dataset cache capacity covers 25% of it
  at one worker and ~100% at four;
* a sprinkle of ``single_pair`` queries whose canonical nodes sit outside
  every window, so they miss the vector cache in *every* configuration —
  pair values read from a cached vector and values estimated directly
  agree only within the accuracy target, so parity requires the cache
  state at each pair query to be configuration-independent.

``identical_values`` asserts exactly that: the JSON-normalised result of
every timed query is byte-identical across the three configurations
(all workers attach the same saved index files, so any divergence means
the workload leaked cache state into values).  The recorded target is
``workers_4`` throughput at least ``--target`` (default 2.5x) the
single-worker configuration.

Results are emitted as JSON on stdout::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke

``benchmarks/record.py`` records the payload as ``BENCH_serving.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import tempfile
import time
from pathlib import Path

from repro.engine import latency_percentiles_by_kind, latency_quantiles
from repro.graphs import datasets as graph_datasets
from repro.service import (
    Address,
    Router,
    SimRankClient,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
    WorkerPool,
)
from repro.sling import SlingIndex, save_index

DEFAULT_TARGET_SPEEDUP = 2.5
DEFAULT_DATASETS = ("GrQc", "AS", "HepTh", "Enron")
WORKER_COUNTS = (1, 2, 4)

#: Query mix: cache-friendly ranked lookups dominate, full vectors and
#: always-miss pair probes ride along.
TOPK_FRACTION = 0.80
SOURCE_FRACTION = 0.12  # single_source; the remainder is single_pair


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def prebuild_indexes(
    names: tuple[str, ...], *, scale: float, epsilon: float, seed: int, root: Path
) -> dict[str, int]:
    """Build and save one SLING index per dataset; return node counts."""
    sizes: dict[str, int] = {}
    for name in names:
        graph = graph_datasets.load_dataset(name, scale=scale, seed=seed)
        sizes[name] = graph.num_nodes
        save_index(
            SlingIndex(graph, epsilon=epsilon, seed=seed).build(), root / name
        )
    return sizes


def build_workload(
    names: tuple[str, ...],
    sizes: dict[str, int],
    *,
    num_queries: int,
    window_size: int,
    slide_every: int,
    k: int,
    seed: int,
) -> list[tuple[str, object]]:
    """One deterministic ``(kind, query)`` sequence, shared by every
    configuration.

    Window sources for a dataset stay inside ``[0, n // 2)`` (the window
    start advances one node every ``slide_every`` source queries);
    ``single_pair`` nodes come from ``[n // 2, n)`` so their canonical
    (smaller) endpoint is never a window source and the pair can never be
    answered from a cached vector in any configuration.
    """
    rng = random.Random(seed)
    source_counts = dict.fromkeys(names, 0)
    pair_cursors = dict.fromkeys(names, 0)
    workload: list[tuple[str, object]] = []
    for _ in range(num_queries):
        name = names[rng.randrange(len(names))]
        n = sizes[name]
        span = max(2, n // 2)
        roll = rng.random()
        if roll < TOPK_FRACTION + SOURCE_FRACTION:
            window_start = source_counts[name] // slide_every
            source = (window_start + rng.randrange(window_size)) % span
            source_counts[name] += 1
            if roll < TOPK_FRACTION:
                workload.append(("top_k", TopKQuery(name, source, k)))
            else:
                workload.append(("single_source", SingleSourceQuery(name, source)))
        else:
            offset = 2 * pair_cursors[name]
            pair_cursors[name] += 1
            node_u = span + offset % max(2, n - span - 1)
            workload.append(("single_pair", SinglePairQuery(name, node_u, node_u + 1)))
    return workload


def _normalise(value: object) -> str:
    """Canonical JSON form of a result value, for cross-config comparison."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------------- #
# One configuration
# --------------------------------------------------------------------------- #
def run_config(
    worker_count: int,
    names: tuple[str, ...],
    workload: list[tuple[str, object]],
    *,
    warmup: int,
    serve_args: list[str],
) -> dict:
    """Serve the workload through ``worker_count`` processes; time the
    portion after ``warmup`` queries and capture every result value."""
    pool = WorkerPool(worker_count, serve_args=serve_args)
    pool.start()
    router = Router(
        pool,
        address=Address(family="tcp", host="127.0.0.1", port=0),
        pins={name: index % worker_count for index, name in enumerate(names)},
    )
    router.start()
    try:
        client = SimRankClient(address=str(router.address))
        for name in names:
            client.open_dataset(name)
        values: list[str] = []
        samples: list[tuple[str, float]] = []
        timed_started = None
        for position, (kind, query) in enumerate(workload):
            if position == warmup:
                timed_started = time.perf_counter()
            begin = time.perf_counter()
            result = client.execute(query)
            elapsed = time.perf_counter() - begin
            if not result.ok:
                raise RuntimeError(
                    f"workers={worker_count}: {kind} failed: {result.error.message}"
                )
            if timed_started is not None:
                samples.append((kind, elapsed))
                values.append(_normalise(result.value))
        seconds = time.perf_counter() - timed_started
        client.close()
    finally:
        router.stop()

    timed = len(workload) - warmup
    overall = latency_quantiles([elapsed for _, elapsed in samples])
    cell = {
        "workers": worker_count,
        "queries": timed,
        "seconds": seconds,
        "queries_per_second": timed / seconds,
        "overall_p50_ms": 1e3 * overall["p50"],
        "overall_p95_ms": 1e3 * overall["p95"],
        "overall_p99_ms": 1e3 * overall["p99"],
        "latency_ms_by_kind": {
            kind: {
                key: (1e3 * value if key.startswith("p") else value)
                for key, value in stats.items()
            }
            for kind, stats in latency_percentiles_by_kind(samples).items()
        },
    }
    return {"cell": cell, "values": values}


# --------------------------------------------------------------------------- #
def run_benchmark(
    *,
    dataset_names: tuple[str, ...] = DEFAULT_DATASETS,
    scale: float = 1.0,
    epsilon: float = 0.025,
    num_queries: int = 900,
    warmup: int = 120,
    window_size: int = 24,
    slide_every: int = 12,
    cache_budget: int = 24,
    k: int = 10,
    seed: int = 0,
    target_speedup: float = DEFAULT_TARGET_SPEEDUP,
) -> dict:
    """Throughput and tail latency through the router at 1 / 2 / 4 workers."""
    root = Path(tempfile.mkdtemp(prefix="repro-bench-serving-"))
    try:
        sizes = prebuild_indexes(
            dataset_names, scale=scale, epsilon=epsilon, seed=seed, root=root
        )
        workload = build_workload(
            dataset_names,
            sizes,
            num_queries=num_queries,
            window_size=window_size,
            slide_every=slide_every,
            k=k,
            seed=seed,
        )
        serve_args = [
            "--scale", str(scale),
            "--epsilon", str(epsilon),
            "--seed", str(seed),
            "--backend", "sling-disk",
            "--index-dir", str(root),
            "--cache-budget", str(cache_budget),
            "--cache-size", "128",
        ]
        cells: dict[str, dict] = {}
        value_streams: list[list[str]] = []
        for worker_count in WORKER_COUNTS:
            outcome = run_config(
                worker_count,
                dataset_names,
                workload,
                warmup=warmup,
                serve_args=serve_args,
            )
            cells[f"workers_{worker_count}"] = outcome["cell"]
            value_streams.append(outcome["values"])
    finally:
        shutil.rmtree(root, ignore_errors=True)

    identical_values = all(stream == value_streams[0] for stream in value_streams)
    base_qps = cells["workers_1"]["queries_per_second"]
    speedups = {
        name: cell["queries_per_second"] / base_qps for name, cell in cells.items()
    }
    return {
        "benchmark": "serving",
        "datasets": list(dataset_names),
        "num_nodes": sizes,
        "scale": scale,
        "epsilon": epsilon,
        "seed": seed,
        "num_queries": num_queries,
        "warmup": warmup,
        "window_size": window_size,
        "slide_every": slide_every,
        "cache_budget": cache_budget,
        "k": k,
        "mix": {
            "top_k": TOPK_FRACTION,
            "single_source": SOURCE_FRACTION,
            "single_pair": round(1.0 - TOPK_FRACTION - SOURCE_FRACTION, 3),
        },
        "cells": cells,
        "speedups": speedups,
        "identical_values": bool(identical_values),
        "targets": {"workers_4": target_speedup},
        "meets_targets": {"workers_4": speedups["workers_4"] >= target_speedup},
    }


SMOKE_OVERRIDES = {
    "dataset_names": ("GrQc", "HepTh"),
    "scale": 0.05,
    "num_queries": 60,
    "warmup": 12,
    "window_size": 6,
    "slide_every": 8,
    "cache_budget": 8,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--epsilon", type=float, default=0.025)
    parser.add_argument("--queries", type=int, default=900)
    parser.add_argument("--warmup", type=int, default=120)
    parser.add_argument("--cache-budget", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--target", type=float, default=DEFAULT_TARGET_SPEEDUP)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fast configuration for CI schema checks",
    )
    args = parser.parse_args(argv)
    overrides = dict(SMOKE_OVERRIDES) if args.smoke else {}
    payload = run_benchmark(
        scale=overrides.get("scale", args.scale),
        epsilon=args.epsilon,
        num_queries=overrides.get("num_queries", args.queries),
        warmup=overrides.get("warmup", args.warmup),
        cache_budget=overrides.get("cache_budget", args.cache_budget),
        seed=args.seed,
        target_speedup=args.target,
        **{
            key: value
            for key, value in overrides.items()
            if key in ("dataset_names", "window_size", "slide_every")
        },
    )
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
