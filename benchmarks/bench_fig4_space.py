"""Figure 4: space consumption of each method.

SLING stores O(n/ε) hitting probabilities and is therefore larger than
Linearize's O(n + m) structures but smaller than MC's fingerprint tensor at a
comparable accuracy.  The index sizes (in MB) are attached to each benchmark
record and also printed as a Figure-4 table at the end of the module.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import SpaceRow
from repro.evaluation.reporting import render_space

from _config import ALL_DATASETS, TIMING_CONFIG

METHODS = ("SLING", "Linearize", "MC")

_collected_rows: list[SpaceRow] = []


@pytest.mark.parametrize("dataset", ALL_DATASETS)
@pytest.mark.parametrize("method_name", METHODS)
def bench_index_size(benchmark, method_cache, graph_cache, dataset, method_name):
    """Size accounting of one built index (the timing is incidental)."""
    graph = graph_cache(dataset)
    method = method_cache(dataset, method_name, TIMING_CONFIG)
    size_bytes = benchmark(method.index_size_bytes)
    megabytes = size_bytes / (1024.0 * 1024.0)
    _collected_rows.append(SpaceRow(dataset, method_name, megabytes))
    benchmark.extra_info["figure"] = "4"
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method_name
    benchmark.extra_info["index_megabytes"] = round(megabytes, 4)
    benchmark.extra_info["graph_megabytes"] = round(
        graph.memory_bytes() / (1024.0 * 1024.0), 4
    )


def bench_space_report(benchmark, capsys):
    """Print the aggregated Figure-4 table after all sizes were collected."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if _collected_rows:
        with capsys.disabled():
            print()
            print("=== " + render_space(_collected_rows).replace("\n", "\n    "))
