"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not part of the paper's figures, but each row isolates one of the paper's
design decisions so its effect can be verified independently:

* Algorithm 4's adaptive sampling vs. Algorithm 1's fixed budget,
* the Section-5.2 space reduction and the Section-5.3 accuracy enhancement,
* truncated-walk Monte Carlo vs. the √c-walk variant of Section 4.1.
"""

from __future__ import annotations


from repro.evaluation import ablations

from _config import BENCH_SCALE

DATASET = "GrQc"


def bench_ablation_correction_sampler(benchmark, truth_cache, capsys):
    """Algorithm 1 vs. Algorithm 4: samples drawn, time, and accuracy."""
    rows = benchmark.pedantic(
        lambda: ablations.correction_sampler_ablation(
            DATASET, scale=BENCH_SCALE, cache=truth_cache
        ),
        rounds=1,
        iterations=1,
    )
    fixed, adaptive = rows
    benchmark.extra_info["fixed_samples"] = fixed.total_samples
    benchmark.extra_info["adaptive_samples"] = adaptive.total_samples
    benchmark.extra_info["fixed_max_error"] = round(fixed.max_error_vs_exact, 6)
    benchmark.extra_info["adaptive_max_error"] = round(adaptive.max_error_vs_exact, 6)
    with capsys.disabled():
        print("\n=== Ablation: correction-factor estimator (Algorithm 1 vs. 4) ===")
        for row in rows:
            print(
                f"  {row.estimator:<24} samples={row.total_samples:>10,} "
                f"time={row.seconds:7.3f}s max_error={row.max_error_vs_exact:.6f}"
            )
    # The adaptive estimator must not draw more samples than the fixed one.
    assert adaptive.total_samples <= fixed.total_samples


def bench_ablation_optimizations(benchmark, truth_cache, capsys):
    """Space reduction / accuracy enhancement: size, error, query time."""
    rows = benchmark.pedantic(
        lambda: ablations.optimization_ablation(
            DATASET, scale=BENCH_SCALE, cache=truth_cache
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n=== Ablation: Section 5.2 / 5.3 optimizations ===")
        for row in rows:
            print(
                f"  {row.variant:<28} index={row.index_megabytes:7.3f}MB "
                f"max_error={row.max_error:.6f} "
                f"query={row.average_query_milliseconds:7.4f}ms"
            )
            benchmark.extra_info[row.variant] = {
                "index_megabytes": round(row.index_megabytes, 4),
                "max_error": round(row.max_error, 6),
                "query_ms": round(row.average_query_milliseconds, 4),
            }
    baseline, reduced = rows[0], rows[1]
    assert reduced.index_megabytes <= baseline.index_megabytes


def bench_ablation_monte_carlo_variants(benchmark, truth_cache, capsys):
    """Truncated-walk MC vs. √c-walk MC at the same walk budget."""
    rows = benchmark.pedantic(
        lambda: ablations.monte_carlo_variant_ablation(
            DATASET, scale=BENCH_SCALE, cache=truth_cache
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\n=== Ablation: Monte Carlo walk formulation (Section 4.1) ===")
        for row in rows:
            print(
                f"  {row.variant:<24} walks={row.num_walks} "
                f"index={row.index_megabytes:7.3f}MB max_error={row.max_error:.6f}"
            )
            benchmark.extra_info[row.variant] = {
                "index_megabytes": round(row.index_megabytes, 4),
                "max_error": round(row.max_error, 6),
            }
