#!/usr/bin/env python3
"""Per-level local push vs the level-cascade kernel and bounded top-k.

This benchmark freezes the pre-cascade query kernels — the per-level
Algorithm 6 with an ``np.add.at`` scatter per push step and per level, and
the top-k path that ranks a full single-source vector — and times them
against the rewritten paths on the same built index:

* **single_source_exact** — frozen kernel vs the bincount rewrite of the
  same per-level algorithm.  These must agree **bitwise** (``parity_ok``):
  the rewrite keeps the original arithmetic order and only swaps the
  scatter, so any mismatch means the kernel is wrong, not merely noisy.
* **single_source** — frozen kernel vs the level-cascade kernel
  (``method="cascade"``), which merges all levels into one running frontier
  (max-ℓ pushes instead of Σℓ) using the cached ``√c / |I(v)|`` edge-weight
  column.  Guarded by ``accuracy_ok``: max abs error ≤ ε on every source.
* **top_k_warm** — frozen full-vector ranking vs the bounded top-k path
  (``method="bounded"``), which truncates the cascade once the per-level
  residual-mass bounds from the packed store's metadata fit the budget and
  the k-th candidate dominates the undelivered tail.  Guarded by
  ``topk_agreement_ok``: on every source the top-k sets must match the
  frozen path except for k-boundary swaps between candidates whose frozen
  scores tie within the reported slack (tail bound + cascade arithmetic
  error), and any order flips must stay within the same slack — score gaps
  smaller than the approximation error are inherently unordered for an
  ε-approximate method.

Results are emitted as JSON on stdout::

    PYTHONPATH=src python benchmarks/bench_single_source.py --scale 0.12

``meets_targets`` records the acceptance thresholds: the cascade at least
``--target-source`` (default 5x) and warm bounded top-k at least
``--target-topk`` (default 10x) faster than the frozen kernels.
``benchmarks/record.py`` runs this module in smoke mode and records the
payload as ``BENCH_single_source.json`` for the perf-regression CI job.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.graphs import datasets
from repro.ranking import rank_top_k
from repro.sling import SlingIndex

DEFAULT_TARGET_SOURCE_SPEEDUP = 5.0
DEFAULT_TARGET_TOPK_SPEEDUP = 10.0


# --------------------------------------------------------------------------- #
# Frozen copies of the pre-cascade kernels
# --------------------------------------------------------------------------- #
def frozen_push_frontier(graph, frontier_nodes, frontier_values, sqrt_c, scratch):
    """The pre-rewrite push step: two-``repeat`` offsets, ``np.add.at`` scatter."""
    out_indptr, out_indices = graph.out_csr()
    in_degrees = graph.in_degrees()
    starts = out_indptr[frontier_nodes]
    counts = out_indptr[frontier_nodes + 1] - starts
    total_edges = int(counts.sum())
    if total_edges == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    edge_offsets = np.repeat(starts, counts) + (
        np.arange(total_edges, dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )
    successors = out_indices[edge_offsets]
    contributions = (
        sqrt_c * np.repeat(frontier_values, counts) / in_degrees[successors]
    )
    np.add.at(scratch, successors, contributions)
    next_nodes = np.flatnonzero(scratch)
    next_values = scratch[next_nodes]
    scratch[successors] = 0.0
    return next_nodes, next_values


def frozen_single_source(graph, view, corrections, sqrt_c, theta) -> np.ndarray:
    """Algorithm 6 as it ran before: Σℓ pushes, one ``np.add.at`` per level."""
    scores = np.zeros(graph.num_nodes, dtype=np.float64)
    scratch = np.zeros(graph.num_nodes, dtype=np.float64)
    for level, targets, values in view.iter_levels():
        frontier_nodes = targets.astype(np.int64)
        frontier_values = np.asarray(values) * corrections[frontier_nodes]
        prune_threshold = (sqrt_c**level) * theta
        for _ in range(level):
            keep = frontier_values > prune_threshold
            frontier_nodes = frontier_nodes[keep]
            frontier_values = frontier_values[keep]
            if frontier_nodes.size == 0:
                break
            frontier_nodes, frontier_values = frozen_push_frontier(
                graph, frontier_nodes, frontier_values, sqrt_c, scratch
            )
        if frontier_nodes.size:
            np.add.at(scores, frontier_nodes, frontier_values)
    return np.minimum(scores, 1.0)


def frozen_top_k(graph, view, corrections, sqrt_c, theta, node, k):
    """The pre-PR top-k: rank a copy of the full single-source vector."""
    scores = frozen_single_source(graph, view, corrections, sqrt_c, theta).copy()
    return rank_top_k(scores, int(node), k)


def _best_of(run, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _order_consistent(ranked, frozen_scores, slack: float) -> bool:
    """No inversion beyond ``slack``: a pair ranked i-before-j is acceptable
    unless the frozen kernel scores j more than ``slack`` above i."""
    exact = [float(frozen_scores[node]) for node, _ in ranked]
    running_max_later = -np.inf
    for value in reversed(exact):
        if running_max_later - value > slack:
            return False
        running_max_later = max(running_max_later, value)
    return True


def _sets_consistent(ranked, reference, frozen_scores, slack: float) -> bool:
    """Top-k sets must agree except for boundary swaps within ``slack``.

    A candidate the frozen path ranks but the bounded path drops is
    acceptable only if every element swapped in has a frozen score within
    ``slack`` of it — score gaps smaller than the approximation error are
    inherently unordered, so the k-boundary may legitimately flip there.
    """
    bounded_ids = {node for node, _ in ranked}
    reference_ids = {node for node, _ in reference}
    if len(bounded_ids) != len(reference_ids):
        return False
    missing = reference_ids - bounded_ids
    extra = bounded_ids - reference_ids
    if not missing:
        return True
    worst_missing = max(float(frozen_scores[node]) for node in missing)
    worst_extra = min(float(frozen_scores[node]) for node in extra)
    return worst_missing - worst_extra <= slack


def run_benchmark(
    *,
    dataset: str = "GrQc",
    scale: float = 0.12,
    epsilon: float = 0.025,
    num_sources: int = 40,
    k: int = 10,
    hot_fraction: float = 0.25,
    repeats: int = 3,
    seed: int = 0,
    target_source_speedup: float = DEFAULT_TARGET_SOURCE_SPEEDUP,
    target_topk_speedup: float = DEFAULT_TARGET_TOPK_SPEEDUP,
) -> dict:
    """Measure frozen vs cascade/bounded query latency on one warm index."""
    graph = datasets.load_dataset(dataset, scale=scale, seed=seed)
    index = SlingIndex(graph, epsilon=epsilon, seed=seed).build()
    n = graph.num_nodes
    corrections = index.correction_factors
    params = index.parameters

    rng = np.random.default_rng(seed)
    hot = max(2, int(n * hot_fraction))
    # Zipf-ish skew: half the workload hits the hot prefix, half is uniform —
    # the warm-cache regime the bounded path is designed for.
    sources = [
        int(node)
        for node in np.concatenate(
            [
                rng.integers(0, hot, num_sources // 2),
                rng.integers(0, n, num_sources - num_sources // 2),
            ]
        )
    ]

    views = {node: index._query_view(node) for node in set(sources)}
    budget = params.epsilon / 4.0

    # -- guards (before any timing is trusted) ---------------------------- #
    parity_ok = True
    accuracy_ok = True
    topk_agreement_ok = True
    max_cascade_error = 0.0
    max_bounded_error = 0.0
    for node in sorted(set(sources)):
        frozen = frozen_single_source(
            graph, views[node], corrections, params.sqrt_c, params.theta
        )
        exact = index.single_source(node)
        if not np.array_equal(frozen, exact):
            parity_ok = False
        cascade = index.single_source(node, method="cascade")
        cascade_error = float(np.max(np.abs(cascade - frozen)))
        max_cascade_error = max(max_cascade_error, cascade_error)
        if cascade_error > epsilon:
            accuracy_ok = False
        result = index.top_k_bounded(node, k, budget=budget)
        reference = frozen_top_k(
            graph, views[node], corrections, params.sqrt_c, params.theta, node, k
        )
        bounded_error = max(
            (abs(score - float(frozen[ranked_node])) for ranked_node, score in result.ranked),
            default=0.0,
        )
        max_bounded_error = max(max_bounded_error, bounded_error)
        if bounded_error > epsilon:
            accuracy_ok = False
        slack = result.tail_bound + cascade_error
        if not _sets_consistent(result.ranked, reference, frozen, slack):
            topk_agreement_ok = False
        elif not _order_consistent(result.ranked, frozen, slack):
            topk_agreement_ok = False

    # -- single source (frozen vs bincount-exact vs cascade) -------------- #
    def run_frozen_sources():
        for node in sources:
            frozen_single_source(
                graph, views[node], corrections, params.sqrt_c, params.theta
            )

    def run_exact_sources():
        for node in sources:
            index.single_source(node)

    def run_cascade_sources():
        for node in sources:
            index.single_source(node, method="cascade")

    frozen_source_seconds = _best_of(run_frozen_sources, repeats)
    exact_source_seconds = _best_of(run_exact_sources, repeats)
    cascade_source_seconds = _best_of(run_cascade_sources, repeats)

    # -- top-k (frozen vs bounded, warm store metadata) -------------------- #
    index.packed_store.level_stats()  # warm the residual-mass metadata

    def run_frozen_topk():
        for node in sources:
            frozen_top_k(
                graph, views[node], corrections, params.sqrt_c, params.theta, node, k
            )

    def run_bounded_topk():
        for node in sources:
            index.top_k(node, k, method="bounded", budget=budget)

    frozen_topk_seconds = _best_of(run_frozen_topk, repeats)
    bounded_topk_seconds = _best_of(run_bounded_topk, repeats)

    def cell(baseline_seconds: float, optimized_seconds: float, count: int) -> dict:
        return {
            "baseline_seconds": baseline_seconds,
            "optimized_seconds": optimized_seconds,
            "baseline_microseconds_each": 1e6 * baseline_seconds / count,
            "optimized_microseconds_each": 1e6 * optimized_seconds / count,
            "speedup": (
                baseline_seconds / optimized_seconds if optimized_seconds else 0.0
            ),
        }

    cells = {
        "single_source": cell(
            frozen_source_seconds, cascade_source_seconds, num_sources
        ),
        "single_source_exact": cell(
            frozen_source_seconds, exact_source_seconds, num_sources
        ),
        "top_k_warm": cell(frozen_topk_seconds, bounded_topk_seconds, num_sources),
    }
    return {
        "benchmark": "single_source",
        "dataset": dataset,
        "scale": scale,
        "epsilon": epsilon,
        "num_nodes": n,
        "num_edges": graph.num_edges,
        "num_hitting_entries": index.packed_store.num_entries,
        "num_sources": num_sources,
        "k": k,
        "budget": budget,
        "repeats": repeats,
        "seed": seed,
        "cells": cells,
        "speedups": {name: c["speedup"] for name, c in cells.items()},
        "max_cascade_error": max_cascade_error,
        "max_bounded_error": max_bounded_error,
        "parity_ok": bool(parity_ok),
        "accuracy_ok": bool(accuracy_ok),
        "topk_agreement_ok": bool(topk_agreement_ok),
        "targets": {
            "single_source": target_source_speedup,
            "top_k_warm": target_topk_speedup,
        },
        "meets_targets": {
            "single_source": cells["single_source"]["speedup"]
            >= target_source_speedup,
            "top_k_warm": cells["top_k_warm"]["speedup"] >= target_topk_speedup,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="GrQc", choices=datasets.dataset_names())
    parser.add_argument("--scale", type=float, default=0.12)
    parser.add_argument(
        "--epsilon", type=float, default=0.025,
        help="accuracy target (default: the paper's 0.025)",
    )
    parser.add_argument("--sources", type=int, default=40)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--target-source", type=float, default=DEFAULT_TARGET_SOURCE_SPEEDUP
    )
    parser.add_argument(
        "--target-topk", type=float, default=DEFAULT_TARGET_TOPK_SPEEDUP
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fast configuration for CI schema checks",
    )
    args = parser.parse_args(argv)
    overrides = {}
    if args.smoke:
        overrides = {"scale": 0.05, "num_sources": 10, "repeats": 2}
    payload = run_benchmark(
        dataset=args.dataset,
        scale=overrides.get("scale", args.scale),
        epsilon=args.epsilon,
        num_sources=overrides.get("num_sources", args.sources),
        k=args.k,
        repeats=overrides.get("repeats", args.repeats),
        seed=args.seed,
        target_source_speedup=args.target_source,
        target_topk_speedup=args.target_topk,
    )
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
