"""Figure 10 (Appendix C): out-of-core preprocessing time vs. buffer size.

The paper builds the index with memory buffers from 256 MB down and observes
that the cost barely grows because the build is CPU-bound: the only I/O is
writing each hitting-probability record once plus an external sort.  The
stand-ins generate far fewer records, so the buffer sweep is scaled down
proportionally while exercising the same spill / external-merge machinery.
"""

from __future__ import annotations

import pytest

from repro.sling import SlingParameters, out_of_core_build

from _config import BENCH_EPSILON, LARGE_DATASETS

#: Scaled-down equivalents of the paper's 256 MB .. "all" buffer sweep.
BUFFER_SIZES = (64 * 1024, 256 * 1024, 1024 * 1024, 16 * 1024 * 1024)


@pytest.mark.parametrize("dataset", LARGE_DATASETS[:1])
@pytest.mark.parametrize("buffer_bytes", BUFFER_SIZES)
def bench_out_of_core_build(benchmark, graph_cache, tmp_path, dataset, buffer_bytes):
    """Out-of-core build time with a bounded record buffer (Figure 10)."""
    graph = graph_cache(dataset)
    params = SlingParameters.from_accuracy_target(
        num_nodes=graph.num_nodes, epsilon=BENCH_EPSILON
    )
    report = benchmark.pedantic(
        lambda: out_of_core_build(
            graph,
            params,
            tmp_path / f"{dataset}_{buffer_bytes}",
            buffer_bytes=buffer_bytes,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["figure"] = "10"
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["buffer_bytes"] = buffer_bytes
    benchmark.extra_info["spill_runs"] = report.num_spill_runs
    benchmark.extra_info["records"] = report.num_records
    benchmark.extra_info["push_seconds"] = round(report.push_seconds, 4)
    benchmark.extra_info["merge_seconds"] = round(report.merge_seconds, 4)
