"""Figure 7: precision of the top-k SimRank pairs returned by each method.

The paper varies k from 400 to 2000 on the four smallest datasets.  The
stand-ins are smaller, so k is scaled down proportionally; SLING should match
or beat Linearize, and MC should trail both, as in the paper.
"""

from __future__ import annotations

import pytest

from repro.evaluation import top_k_precision
from repro.evaluation.experiments import TopKRow
from repro.evaluation.reporting import render_top_k

from _config import ACCURACY_CONFIG, SMALL_DATASETS

METHODS = ("SLING", "Linearize", "MC")

#: Scaled-down equivalents of the paper's k = 400 .. 2000 sweep.
K_VALUES = (20, 40, 60, 80, 100)

_rows: list[TopKRow] = []


@pytest.mark.parametrize("dataset", SMALL_DATASETS)
@pytest.mark.parametrize("method_name", METHODS)
def bench_top_k_precision(
    benchmark, method_cache, graph_cache, truth_cache, dataset, method_name
):
    """Top-k extraction time + precision for the k sweep (Figure 7)."""
    graph = graph_cache(dataset)
    truth = truth_cache.get(graph, c=ACCURACY_CONFIG.c)
    method = method_cache(dataset, method_name, ACCURACY_CONFIG)
    estimated = method.all_pairs()

    def compute_precisions() -> dict[int, float]:
        return {k: top_k_precision(estimated, truth, k) for k in K_VALUES}

    precisions = benchmark(compute_precisions)
    for k, precision in precisions.items():
        _rows.append(TopKRow(dataset, method_name, k, precision))
        benchmark.extra_info[f"precision_at_{k}"] = round(precision, 4)
    benchmark.extra_info["figure"] = "7"
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method_name


def bench_top_k_report(benchmark, capsys):
    """Print the aggregated Figure-7 table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if _rows:
        with capsys.disabled():
            print()
            print(render_top_k(_rows))
