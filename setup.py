"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools cannot
perform PEP 660 editable installs (no ``wheel`` package available).
"""

from setuptools import setup

setup()
