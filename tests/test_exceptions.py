"""Unit tests for the exception hierarchy and top-level package exports."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    ConvergenceError,
    GraphFormatError,
    IndexNotBuiltError,
    NodeNotFoundError,
    ParameterError,
    ReproError,
    StorageError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            GraphFormatError,
            NodeNotFoundError,
            ParameterError,
            IndexNotBuiltError,
            StorageError,
            ConvergenceError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(ParameterError, ValueError)

    def test_node_not_found_is_key_error(self):
        assert issubclass(NodeNotFoundError, KeyError)

    def test_index_not_built_is_runtime_error(self):
        assert issubclass(IndexNotBuiltError, RuntimeError)

    def test_storage_error_is_io_error(self):
        assert issubclass(StorageError, IOError)

    def test_node_not_found_message_and_payload(self):
        error = NodeNotFoundError(42)
        assert error.node == 42
        assert "42" in str(error)

    def test_index_not_built_message(self):
        assert "build()" in str(IndexNotBuiltError("widget"))


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_main_classes_exported(self):
        for name in (
            "DiGraph",
            "SlingIndex",
            "SlingParameters",
            "LinearizeIndex",
            "MonteCarloIndex",
            "PowerMethod",
        ):
            assert hasattr(repro, name)

    def test_all_list_is_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name)
