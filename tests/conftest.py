"""Shared fixtures for the test suite.

The fixtures centre on a handful of small graphs with analytically known
SimRank structure (documented on each fixture) plus cached power-method ground
truth, so that individual test modules can assert against exact values without
re-deriving them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import simrank_matrix
from repro.graphs import DiGraph, generators

#: Decay factor used throughout the tests (the paper's default).
C = 0.6


@pytest.fixture(scope="session")
def decay() -> float:
    """The SimRank decay factor used by the test suite."""
    return C


@pytest.fixture(scope="session")
def outward_star() -> DiGraph:
    """Node 0 points at nodes 1..5.

    Every leaf has exactly one in-neighbour (the centre), so the SimRank of
    any two distinct leaves is exactly ``c``, and the SimRank between the
    centre and any leaf is 0 (the centre has no in-neighbours).
    """
    return generators.star(5, inward=False)


@pytest.fixture(scope="session")
def inward_star() -> DiGraph:
    """Nodes 1..5 all point at node 0; every leaf has in-degree zero."""
    return generators.star(5, inward=True)


@pytest.fixture(scope="session")
def directed_cycle() -> DiGraph:
    """A 6-node directed cycle: every off-diagonal SimRank is exactly 0."""
    return generators.cycle(6)


@pytest.fixture(scope="session")
def complete_graph() -> DiGraph:
    """K4 without self-loops; all off-diagonal SimRank scores are equal."""
    return generators.complete(4)


@pytest.fixture(scope="session")
def community_graph() -> DiGraph:
    """A 3x10 planted-community graph used as a 'realistic' small input."""
    return generators.two_level_community(3, 10, seed=7)


@pytest.fixture(scope="session")
def dag_graph() -> DiGraph:
    """A random DAG: guarantees nodes with zero in-degree exist."""
    return generators.random_dag(20, 40, seed=3)


@pytest.fixture(scope="session")
def scale_free_graph() -> DiGraph:
    """A directed preferential-attachment graph with skewed in-degrees."""
    return generators.preferential_attachment(60, 3, seed=11)


@pytest.fixture(scope="session")
def ground_truth_cache():
    """Session-wide cache of power-method SimRank matrices keyed by graph id."""
    cache: dict[int, np.ndarray] = {}

    def compute(graph: DiGraph, c: float = C, num_iterations: int = 40) -> np.ndarray:
        key = (id(graph), c, num_iterations)
        if key not in cache:
            cache[key] = simrank_matrix(graph, c=c, num_iterations=num_iterations)
        return cache[key]

    return compute


def complete_graph_offdiag_simrank(num_nodes: int, c: float = C) -> float:
    """Closed-form off-diagonal SimRank of the complete graph K_n.

    By symmetry every off-diagonal score equals ``s`` with
    ``s = c ((n-2) + ((n-1)^2 - (n-2)) s) / (n-1)^2``.
    """
    n = num_nodes
    same = n - 2
    cross = (n - 1) ** 2 - same
    return c * same / ((n - 1) ** 2 - c * cross)


@pytest.fixture(scope="session")
def complete_offdiag():
    """Fixture exposing the K_n closed-form SimRank helper to test modules."""
    return complete_graph_offdiag_simrank
