"""Thread-safety of :class:`QueryEngine`: stress tests and regression tests.

The engine's contract (see the module docstring of
:mod:`repro.engine.engine`) is that any number of threads may query one
engine concurrently: values match the sequential answers, the LRU cache
stays bounded, and the statistics lose no updates.  These tests hammer one
engine from 8 threads — 50 consecutive iterations for the headline stress
test — and check exact counter arithmetic afterwards, which is precisely
what an unlocked ``+= 1`` or a racy eviction loop would break.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.engine import BackendConfig, QueryEngine, create_backend
from repro.engine.backends import BackendInfo, PowerBackend
from repro.graphs import generators

NUM_THREADS = 8
STRESS_ITERATIONS = 50


@pytest.fixture(scope="module")
def graph():
    return generators.two_level_community(3, 12, seed=23)


def _run_in_threads(worker, num_threads: int = NUM_THREADS) -> None:
    """Start ``num_threads`` workers behind a barrier and join them all."""
    barrier = threading.Barrier(num_threads)

    def wrapped(slot: int) -> None:
        barrier.wait()
        worker(slot)

    threads = [
        threading.Thread(target=wrapped, args=(slot,))
        for slot in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestWarmStress:
    def test_eight_threads_fifty_iterations_match_sequential(self, graph):
        """The headline stress test: 8 threads, mixed kinds, 50 iterations.

        Every thread executes the same mixed workload against one warm
        engine; each iteration checks the values against the sequential
        answers and the exact counter arithmetic (every query performs
        exactly one cache lookup here, and the warm cache must answer all
        of them — one lost update fails the equality).
        """
        n = graph.num_nodes
        engine = QueryEngine(
            create_backend("power", graph), cache_size=n
        )
        for node in range(n):  # fully warm cache, no evictions possible
            engine.single_source(node)
        engine.reset_statistics()

        workload = []
        for node in range(n):
            workload.append(("top_k", node, 5))
            workload.append(("single_source", node, None))
            workload.append(("single_pair", node, (node + 3) % n))

        def answer(item):
            kind, node, arg = item
            if kind == "top_k":
                return engine.top_k(node, arg)
            if kind == "single_source":
                return engine.single_source(node).tolist()
            return engine.single_pair(node, arg)

        expected = [answer(item) for item in workload]
        engine.reset_statistics()

        for iteration in range(STRESS_ITERATIONS):
            observed: list[list] = [None] * NUM_THREADS

            def worker(slot: int) -> None:
                observed[slot] = [answer(item) for item in workload]

            _run_in_threads(worker)

            for slot in range(NUM_THREADS):
                assert observed[slot] == expected, f"iteration {iteration}"
            stats = engine.statistics_snapshot()
            queries = (iteration + 1) * NUM_THREADS * len(workload)
            assert stats.total_queries == queries
            assert stats.single_pair_queries == queries // 3
            assert stats.single_source_queries == queries // 3
            assert stats.top_k_queries == queries // 3
            # Warm cache + capacity n: every query is exactly one lookup,
            # every lookup hits, nothing is ever evicted.
            assert stats.cache_hits == queries
            assert stats.cache_misses == 0
            assert stats.cache_evictions == 0

    def test_eviction_churn_loses_no_counter_updates(self, graph):
        """A deliberately tiny cache forces concurrent evictions; the LRU
        must stay bounded and hits + misses must equal lookups exactly."""
        n = graph.num_nodes
        cache_size = 4
        engine = QueryEngine(create_backend("power", graph), cache_size=cache_size)
        per_thread = 200
        rng_nodes = [
            np.random.default_rng(slot).integers(0, n, size=per_thread)
            for slot in range(NUM_THREADS)
        ]

        def worker(slot: int) -> None:
            for node in rng_nodes[slot]:
                engine.top_k(int(node), 3)

        _run_in_threads(worker)

        stats = engine.statistics_snapshot()
        total = NUM_THREADS * per_thread
        assert stats.total_queries == total
        assert stats.cache_hits + stats.cache_misses == total
        assert stats.cache_misses > 0  # churn actually happened
        assert stats.cache_evictions > 0
        assert len(engine.cached_nodes()) <= cache_size

    def test_concurrent_cold_misses_compute_correct_vectors(self, graph):
        """Threads missing on the same source concurrently must all get the
        correct vector (double computation is allowed, corruption is not)."""
        engine = QueryEngine(create_backend("power", graph), cache_size=64)
        expected = {
            node: engine.backend.single_source(node).tolist()
            for node in range(graph.num_nodes)
        }
        results: list[dict] = [dict() for _ in range(NUM_THREADS)]

        def worker(slot: int) -> None:
            for node in range(graph.num_nodes):
                results[slot][node] = engine.single_source(node).tolist()

        _run_in_threads(worker)
        for slot in range(NUM_THREADS):
            assert results[slot] == expected


class TestPerThreadAttribution:
    def test_last_query_record_is_thread_local(self, graph):
        """Each thread sees its own last record, not the globally latest."""
        engine = QueryEngine(create_backend("power", graph), cache_size=16)
        engine.single_source(0)  # warm node 0 only
        kinds = {}
        hits = {}

        def worker(slot: int) -> None:
            if slot % 2 == 0:
                engine.top_k(0, 3)  # warm: must be a hit
            else:
                engine.single_pair(1, 2)  # cold pair: must be a miss
            time.sleep(0.01)  # let every thread's query land before reading
            record = engine.last_query_record
            kinds[slot] = record.kind
            hits[slot] = record.cache_hit

        _run_in_threads(worker, num_threads=4)

        assert kinds == {0: "top_k", 1: "single_pair", 2: "top_k", 3: "single_pair"}
        assert hits == {0: True, 1: False, 2: True, 3: False}

    def test_snapshot_is_internally_consistent_during_load(self, graph):
        """Snapshots taken mid-hammer must always satisfy the counter
        invariants (kind counters sum to total; lookups only ever lag the
        finished-query count by the number of in-flight threads)."""
        engine = QueryEngine(create_backend("power", graph), cache_size=64)
        stop = threading.Event()

        def hammer() -> None:
            node = 0
            while not stop.is_set():
                engine.top_k(node % graph.num_nodes, 4)
                node += 1

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                snap = engine.statistics_snapshot()
                assert snap.total_queries == (
                    snap.single_pair_queries
                    + snap.single_source_queries
                    + snap.top_k_queries
                )
                lookups = snap.cache_hits + snap.cache_misses
                # Each top_k performs its one lookup before being counted.
                assert 0 <= lookups - snap.total_queries <= 4
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class _SerialOnlyBackend(PowerBackend):
    """A backend declaring its queries unsafe to run concurrently.

    ``single_source`` detects overlapping entries; with the engine's
    backend lock in place the overlap count must stay at zero.
    """

    info = BackendInfo(
        name="power",  # reuse the power method, only the flag differs
        exact=True,
        scalable=False,
        build_cost="matrix",
        query_cost="matrix-row",
        thread_safe_queries=False,
    )

    def __init__(self, graph, config=None) -> None:
        super().__init__(graph, config)
        self.entered = 0
        self.overlaps = 0

    def single_source(self, node):
        self.entered += 1
        if self.entered > 1:
            self.overlaps += 1
        time.sleep(0.001)  # widen the race window
        result = super().single_source(node)
        self.entered -= 1
        return result


class TestNonThreadSafeBackendGuard:
    def test_flagged_backend_queries_are_serialised(self, graph):
        backend = _SerialOnlyBackend(graph, BackendConfig()).build()
        engine = QueryEngine(backend, cache_size=0)  # every query hits the backend

        def worker(slot: int) -> None:
            for node in range(6):
                engine.single_source(node)

        _run_in_threads(worker)
        assert backend.overlaps == 0

    def test_unflagged_backend_queries_do_overlap(self, graph):
        """Sanity check for the test itself: without the flag, the same
        detector does observe concurrent entries (otherwise the zero-overlap
        assertion above proves nothing)."""

        class _ParallelBackend(_SerialOnlyBackend):
            info = BackendInfo(
                name="power",
                exact=True,
                scalable=False,
                build_cost="matrix",
                query_cost="matrix-row",
                thread_safe_queries=True,
            )

        backend = _ParallelBackend(graph, BackendConfig()).build()
        engine = QueryEngine(backend, cache_size=0)

        def worker(slot: int) -> None:
            for node in range(6):
                engine.single_source(node)

        _run_in_threads(worker)
        assert backend.overlaps > 0
