"""Backend-parity tests: every registered backend answers every query kind
on a small deterministic graph, within its epsilon of the power-method
ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import simrank_matrix
from repro.engine import (
    BackendConfig,
    DiskSlingBackend,
    SlingBackend,
    backend_names,
    create_backend,
    get_backend_class,
    resolve_backend_name,
)
from repro.exceptions import IndexNotBuiltError, ParameterError
from repro.graphs import generators

#: Accuracy target shared by every backend in these tests; with the seeded
#: 400-walk Monte-Carlo budget, every method lands comfortably inside it.
EPSILON = 0.1

CONFIG = BackendConfig(epsilon=EPSILON, seed=0, mc_num_walks=400)

ALL_BACKENDS = backend_names()


@pytest.fixture(scope="module")
def parity_graph():
    """A 16-node planted-community graph, fixed seed."""
    return generators.two_level_community(2, 8, seed=3)


@pytest.fixture(scope="module")
def parity_truth(parity_graph):
    """Power-method ground truth at the paper's ground-truth iteration count."""
    return simrank_matrix(parity_graph, c=0.6, num_iterations=50)


@pytest.fixture(scope="module")
def built_backends(parity_graph):
    """Every registered backend, built once on the parity graph."""
    return {
        name: create_backend(name, parity_graph, CONFIG) for name in ALL_BACKENDS
    }


class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(ALL_BACKENDS) == {
            "sling",
            "sling-disk",
            "naive",
            "power",
            "montecarlo",
            "montecarlo_sqrtc",
            "linearize",
        }

    def test_aliases_resolve_to_registry_keys(self):
        assert resolve_backend_name("SLING") == "sling"
        assert resolve_backend_name("MC") == "montecarlo"
        assert resolve_backend_name("MC-sqrtc") == "montecarlo_sqrtc"
        assert resolve_backend_name("Linearize") == "linearize"
        assert resolve_backend_name("disk") == "sling-disk"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            resolve_backend_name("FooBar")

    def test_get_backend_class(self):
        assert get_backend_class("sling") is SlingBackend
        assert get_backend_class("disk") is DiskSlingBackend

    def test_info_flags(self):
        assert get_backend_class("sling").info.in_memory
        assert not get_backend_class("sling-disk").info.in_memory
        assert get_backend_class("power").info.exact
        assert not get_backend_class("power").info.scalable
        assert not get_backend_class("montecarlo").info.exact


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestParity:
    def test_single_pair_within_epsilon(self, built_backends, parity_truth, name):
        backend = built_backends[name]
        for node_u, node_v in [(0, 1), (0, 9), (3, 7), (5, 5), (12, 2)]:
            score = backend.single_pair(node_u, node_v)
            assert 0.0 <= score <= 1.0
            assert score == pytest.approx(
                parity_truth[node_u, node_v], abs=EPSILON
            )

    def test_single_source_within_epsilon(self, built_backends, parity_truth, name):
        backend = built_backends[name]
        for source in (0, 7, 13):
            scores = backend.single_source(source)
            assert scores.shape == (parity_truth.shape[0],)
            assert float(np.abs(scores - parity_truth[source]).max()) <= EPSILON

    def test_top_k_matches_ground_truth_ordering(
        self, built_backends, parity_truth, name
    ):
        backend = built_backends[name]
        ranked = backend.top_k(0, 5)
        assert len(ranked) == 5
        assert 0 not in {node for node, _ in ranked}
        # Scores must be non-increasing and each within epsilon of the truth.
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        for node, score in ranked:
            assert score == pytest.approx(parity_truth[0, node], abs=EPSILON)

    def test_index_size_is_positive(self, built_backends, name):
        assert built_backends[name].index_size_bytes() > 0

    def test_queries_before_build_are_rejected(self, parity_graph, name):
        backend = get_backend_class(name)(parity_graph, CONFIG)
        with pytest.raises(IndexNotBuiltError):
            backend.single_pair(0, 1)
        with pytest.raises(IndexNotBuiltError):
            backend.single_source(0)

    def test_empty_graph_rejected(self, name):
        from repro.graphs import DiGraph

        with pytest.raises(ParameterError):
            get_backend_class(name)(DiGraph(0, []), CONFIG)


class TestAdapters:
    def test_sling_backend_exposes_index(self, built_backends):
        backend = built_backends["sling"]
        assert backend.index.is_built
        assert backend.average_set_size() > 0

    def test_disk_backend_reads_sets_from_disk(self, built_backends):
        backend = built_backends["sling-disk"]
        before = backend.disk_index.num_set_reads
        backend.single_pair(0, 1)
        assert backend.disk_index.num_set_reads == before + 2
        # Resident footprint is just the correction factors; the full packed
        # index (reported like every other backend) is strictly larger.
        assert backend.resident_bytes() == 8 * backend.graph.num_nodes
        assert backend.index_size_bytes() > backend.resident_bytes()

    def test_disk_and_memory_sling_agree(self, built_backends):
        memory = built_backends["sling"]
        disk = built_backends["sling-disk"]
        for node_u, node_v in [(0, 1), (2, 11)]:
            assert disk.single_pair(node_u, node_v) == pytest.approx(
                memory.single_pair(node_u, node_v), abs=1e-9
            )

    def test_top_k_rejects_nonpositive_k(self, built_backends):
        with pytest.raises(ParameterError):
            built_backends["power"].top_k(0, 0)


class TestSlingTopKMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ParameterError):
            BackendConfig(sling_topk_mode="fast-ish")

    def test_exact_mode_is_default(self, built_backends):
        backend = built_backends["sling"]
        assert backend.config.sling_topk_mode == "exact"
        assert backend.top_k(0, 5) == backend.index.top_k(0, 5)

    def test_bounded_mode_dispatches_to_bounded_top_k(self, parity_graph):
        config = BackendConfig(
            epsilon=EPSILON, seed=0, sling_topk_mode="bounded"
        )
        backend = SlingBackend(parity_graph, config).build()
        assert backend.top_k(0, 5) == backend.index.top_k_bounded(0, 5).ranked

    def test_bounded_mode_on_disk_backend(self, parity_graph):
        config = BackendConfig(
            epsilon=EPSILON, seed=0, sling_topk_mode="bounded"
        )
        backend = DiskSlingBackend(parity_graph, config).build()
        expected = backend.disk_index.top_k_bounded(0, 5).ranked
        assert backend.top_k(0, 5) == expected
