"""Regression tests for version-scoped engine-cache invalidation.

The original cache was keyed by source node alone, so a graph mutation
could keep serving pre-mutation vectors forever.  These tests pin the
fix: entries carry the ``index_version`` they were computed against,
``invalidate_cache`` drops exactly the affected sources (re-stamping the
certified survivors), and the ``cache_invalidations`` counter records
every drop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BackendInfo, QueryEngine, SimilarityBackend
from repro.engine.engine import ENGINE_TOTAL_COUNTERS
from repro.exceptions import ParameterError
from repro.graphs import generators


class VersionedBackend(SimilarityBackend):
    """Stub whose answers depend on a mutable ``generation`` counter.

    This makes stale-cache bugs observable: if the engine serves a cached
    vector computed before ``generation`` was bumped, the value is wrong.
    """

    info = BackendInfo(name="versioned-stub", exact=True, build_cost="none")

    def __init__(self, graph, config=None):
        super().__init__(graph, config)
        self.generation = 0
        self.source_calls = 0

    def build(self):
        self._built = True
        return self

    def single_pair(self, node_u, node_v):
        return float(self.single_source(node_u)[int(node_v)])

    def single_source(self, node):
        self.source_calls += 1
        n = self._graph.num_nodes
        return np.full(n, float(self.generation) + int(node) / n)

    def index_size_bytes(self):
        return 8


@pytest.fixture()
def engine():
    return QueryEngine(VersionedBackend(generators.cycle(8)), cache_size=8)


class TestScopedInvalidation:
    def test_mutation_then_query_returns_fresh_value(self, engine):
        stale = engine.single_source(3)
        engine.backend.generation = 1  # "the graph mutated"
        engine.invalidate_cache([3])
        fresh = engine.single_source(3)
        assert fresh[0] == pytest.approx(stale[0] + 1.0)
        assert engine.backend.source_calls == 2
        assert engine.statistics.cache_invalidations == 1

    def test_unaffected_entries_survive_and_stay_servable(self, engine):
        engine.single_source(1)
        engine.single_source(2)
        engine.single_source(3)
        dropped = engine.invalidate_cache([3])
        assert dropped == 1
        # 1 and 2 were certified unchanged: still cache hits at the new version.
        engine.single_source(1)
        engine.single_source(2)
        assert engine.backend.source_calls == 3
        assert engine.statistics.cache_hits == 2
        assert engine.statistics.cache_invalidations == 1

    def test_full_clear_when_no_affected_set_given(self, engine):
        engine.single_source(1)
        engine.single_source(2)
        dropped = engine.invalidate_cache()
        assert dropped == 2
        assert engine.statistics.cache_invalidations == 2
        engine.single_source(1)
        assert engine.backend.source_calls == 3

    def test_invalidating_uncached_source_drops_nothing(self, engine):
        engine.single_source(1)
        assert engine.invalidate_cache([5]) == 0
        assert engine.statistics.cache_invalidations == 0
        # ...but the version still advanced (the index did change).
        assert engine.index_version == 1

    def test_version_is_monotonic(self, engine):
        assert engine.index_version == 0
        engine.invalidate_cache([1], index_version=4)
        assert engine.index_version == 4
        with pytest.raises(ParameterError):
            engine.invalidate_cache([1], index_version=2)

    def test_single_pair_path_also_sees_fresh_values(self, engine):
        # Warm the pair-amortization path so a source vector lands in cache.
        for _ in range(8):
            engine.single_pair(3, 4)
        stale = engine.single_pair(3, 4)
        engine.backend.generation = 2
        engine.invalidate_cache([3])
        fresh = engine.single_pair(3, 4)
        assert fresh == pytest.approx(stale + 2.0)

    def test_counter_is_aggregated(self, engine):
        assert "cache_invalidations" in ENGINE_TOTAL_COUNTERS
        engine.single_source(1)
        engine.invalidate_cache([1])
        stats = engine.statistics.as_dict()
        assert stats["cache_invalidations"] == 1
        assert engine.describe()["index_version"] == 1
