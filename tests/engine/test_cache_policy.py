"""Cache-policy regression tests: pair-probe accounting, cross-kind
admission, TTL expiry, and the per-kind / per-outcome statistics surface.

These pin the fixes from the cache-accounting PR: ``single_pair`` used to
count a ``cache_miss`` on every uncached pair while never admitting
anything, permanently deflating ``cache_hit_rate`` on pair-heavy traffic.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import (
    ENGINE_TOTAL_COUNTERS,
    PAIR_AMORTIZE_THRESHOLD,
    QueryEngine,
    merge_statistics_totals,
)
from repro.exceptions import ParameterError
from repro.graphs import generators

from test_engine import CountingBackend


@pytest.fixture()
def graph():
    return generators.cycle(12)


@pytest.fixture()
def engine(graph):
    return QueryEngine(CountingBackend(graph), cache_size=4)


class TestPairProbeAccounting:
    def test_uncached_pairs_do_not_deflate_hit_rate(self, engine):
        """The regression: distinct cold pairs must not count cache misses."""
        engine.single_pair(0, 5)
        engine.single_pair(1, 6)
        engine.single_pair(2, 7)
        stats = engine.statistics
        assert stats.cache_misses == 0
        assert stats.cache_hits == 0
        assert stats.pair_probe_misses == 3
        assert stats.pair_probe_hits == 0
        # Cacheable work now defines the rate; pair read-throughs don't.
        assert stats.cache_hit_rate == 0.0
        engine.single_source(3)
        engine.single_source(3)
        assert engine.statistics.cache_hit_rate == 0.5

    def test_probe_hits_count_as_cache_hits(self, engine):
        engine.single_source(4)
        engine.single_pair(4, 9)
        stats = engine.statistics
        assert stats.pair_probe_hits == 1
        assert stats.cache_hits == 1
        assert engine.backend.pair_calls == 0

    def test_zero_cache_has_no_probe_accounting(self, graph):
        engine = QueryEngine(CountingBackend(graph), cache_size=0)
        for _ in range(PAIR_AMORTIZE_THRESHOLD + 2):
            engine.single_pair(0, 5)
        stats = engine.statistics
        assert stats.pair_probe_hits == 0
        assert stats.pair_probe_misses == 0
        assert stats.cache_misses == 0
        assert stats.pair_admissions == 0
        assert engine.backend.source_calls == 0


class TestCrossKindAdmission:
    def test_hot_pair_source_admitted_at_threshold(self, engine):
        for _ in range(PAIR_AMORTIZE_THRESHOLD - 1):
            engine.single_pair(2, 8)
        assert engine.backend.source_calls == 0
        assert engine.cached_nodes() == []
        value = engine.single_pair(2, 8)  # crosses the threshold
        stats = engine.statistics
        assert engine.backend.source_calls == 1
        assert engine.cached_nodes() == [2]
        assert stats.pair_admissions == 1
        assert stats.cache_admissions == 1
        # The admission-crossing probe is a true miss: the cache did work.
        assert stats.cache_misses == 1
        assert stats.pair_probe_misses == PAIR_AMORTIZE_THRESHOLD
        # The pair is answered from the newly admitted vector.
        assert value == engine.single_source(2)[8]

    def test_admission_counts_canonical_source(self, engine):
        """(u, v) and (v, u) build pressure on the same canonical source."""
        engine.single_pair(3, 9)
        engine.single_pair(9, 3)
        engine.single_pair(3, 9)
        engine.single_pair(9, 3)
        assert engine.statistics.pair_admissions == 1
        assert engine.cached_nodes() == [3]

    def test_after_admission_pairs_hit_the_cache(self, engine):
        for _ in range(PAIR_AMORTIZE_THRESHOLD):
            engine.single_pair(1, 7)
        before = engine.backend.source_calls
        engine.single_pair(1, 6)
        engine.top_k(1, 3)
        assert engine.backend.source_calls == before
        assert engine.statistics.pair_probe_hits == 1

    def test_threshold_none_disables_admission(self, graph):
        engine = QueryEngine(
            CountingBackend(graph), cache_size=4, pair_admission_threshold=None
        )
        for _ in range(PAIR_AMORTIZE_THRESHOLD * 3):
            engine.single_pair(0, 6)
        stats = engine.statistics
        assert stats.pair_admissions == 0
        assert stats.cache_misses == 0
        assert engine.backend.source_calls == 0
        assert engine.cached_nodes() == []

    def test_batch_pairs_build_no_admission_pressure(self, engine):
        pairs = [(5, 11)] * (PAIR_AMORTIZE_THRESHOLD - 1)
        engine.single_pair_many(pairs, amortize=False)
        engine.single_pair(5, 11)  # standalone probe #1, not #threshold
        assert engine.statistics.pair_admissions == 0
        assert engine.cached_nodes() == []

    def test_invalid_threshold_rejected(self, graph):
        with pytest.raises(ParameterError):
            QueryEngine(
                CountingBackend(graph), cache_size=4, pair_admission_threshold=0
            )


class TestTtlExpiry:
    def test_entries_expire_and_are_counted(self, graph):
        engine = QueryEngine(
            CountingBackend(graph), cache_size=4, cache_ttl_seconds=0.05
        )
        engine.single_source(2)
        assert engine.statistics.cache_hits == 0
        engine.single_source(2)
        assert engine.statistics.cache_hits == 1
        time.sleep(0.06)
        engine.single_source(2)
        stats = engine.statistics
        assert stats.cache_expirations == 1
        assert stats.cache_misses == 2
        assert engine.backend.source_calls == 2

    def test_no_ttl_never_expires(self, engine):
        engine.single_source(1)
        time.sleep(0.02)
        engine.single_source(1)
        assert engine.statistics.cache_expirations == 0
        assert engine.statistics.cache_hits == 1

    def test_invalid_ttl_rejected(self, graph):
        with pytest.raises(ParameterError):
            QueryEngine(
                CountingBackend(graph), cache_size=4, cache_ttl_seconds=0.0
            )


class TestStatisticsSurface:
    def test_per_kind_hit_rates(self, engine):
        engine.single_source(0)   # miss
        engine.single_source(0)   # hit
        engine.top_k(0, 3)        # hit
        engine.top_k(5, 3)        # miss
        engine.single_pair(0, 7)  # probe hit
        payload = engine.statistics_snapshot().as_dict()
        assert payload["hits_by_kind"] == {"single_pair": 1,
                                           "single_source": 1, "top_k": 1}
        assert payload["misses_by_kind"] == {"single_source": 1, "top_k": 1}
        rates = payload["hit_rate_by_kind"]
        assert rates["single_source"] == 0.5
        assert rates["top_k"] == 0.5
        assert rates["single_pair"] == 1.0

    def test_latency_percentiles_by_outcome(self, engine):
        engine.single_source(0)
        engine.single_source(0)
        payload = engine.statistics_snapshot().as_dict()
        by_outcome = payload["latency_percentiles_by_outcome"]
        assert by_outcome["hit"]["count"] == 1
        assert by_outcome["miss"]["count"] == 1
        assert by_outcome["hit"]["p50"] <= by_outcome["miss"]["p50"]

    def test_describe_exposes_policy_knobs(self, graph):
        engine = QueryEngine(
            CountingBackend(graph),
            cache_size=4,
            cache_ttl_seconds=1.5,
            pair_admission_threshold=7,
        )
        described = engine.describe()
        assert described["cache_ttl_seconds"] == 1.5
        assert described["pair_admission_threshold"] == 7

    def test_merge_totals_identity_and_sum(self, engine, graph):
        other = QueryEngine(CountingBackend(graph), cache_size=4)
        engine.single_source(0)
        engine.single_pair(0, 5)
        other.top_k(1, 3)
        a = engine.statistics_snapshot().as_dict()
        b = other.statistics_snapshot().as_dict()
        merged = merge_statistics_totals([a, b])
        for counter in ENGINE_TOTAL_COUNTERS:
            assert merged[counter] == a[counter] + b[counter], counter
        # Merging one engine's stats reproduces its own counters exactly.
        alone = merge_statistics_totals([a])
        for counter in ENGINE_TOTAL_COUNTERS:
            assert alone[counter] == a[counter]
