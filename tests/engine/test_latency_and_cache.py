"""Latency percentiles and runtime cache resizing on the query engine."""

from __future__ import annotations

import pytest

from repro.engine import (
    create_engine,
    latency_percentiles_by_kind,
    latency_quantiles,
)
from repro.exceptions import ParameterError
from repro.graphs.datasets import load_dataset


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GrQc", scale=0.05, seed=0)


class TestLatencyQuantiles:
    def test_nearest_rank_on_known_sample(self):
        # Nearest-rank: ceil(q*n)-th order statistic — every reported value
        # actually occurred.
        sample = [float(v) for v in range(1, 101)]  # 1..100
        out = latency_quantiles(sample)
        assert out == {"count": 100, "p50": 50.0, "p95": 95.0, "p99": 99.0}

    def test_tiny_samples_use_real_order_statistics(self):
        assert latency_quantiles([0.25]) == {
            "count": 1, "p50": 0.25, "p95": 0.25, "p99": 0.25
        }
        out = latency_quantiles([0.2, 0.1])
        assert out["count"] == 2 and out["p50"] == 0.1 and out["p99"] == 0.2

    def test_empty_sample_reports_count_only(self):
        assert latency_quantiles([]) == {"count": 0}

    def test_grouping_by_kind(self):
        records = [("single_pair", 0.1), ("top_k", 0.3), ("single_pair", 0.2)]
        grouped = latency_percentiles_by_kind(records)
        assert sorted(grouped) == ["single_pair", "top_k"]
        assert grouped["single_pair"]["count"] == 2
        assert grouped["top_k"]["p50"] == 0.3

    def test_engine_statistics_expose_percentiles(self, graph):
        engine = create_engine(graph, backend="montecarlo", cache_size=8)
        engine.single_pair(0, 1)
        engine.top_k(0, 3)
        stats = engine.statistics.as_dict()
        assert stats["latency_percentiles"]["single_pair"]["count"] == 1
        assert stats["latency_percentiles"]["top_k"]["p99"] >= 0.0


class TestResizeCache:
    def test_shrinking_evicts_oldest_and_counts_evictions(self, graph):
        engine = create_engine(graph, backend="montecarlo", cache_size=8)
        for node in range(6):
            engine.single_source(node)
        before = engine.statistics.cache_evictions
        engine.resize_cache(2)
        assert engine.statistics.cache_evictions == before + 4
        # The two most recent sources survive.
        engine.single_source(5)
        assert engine.statistics.cache_hits >= 1

    def test_growing_keeps_entries(self, graph):
        engine = create_engine(graph, backend="montecarlo", cache_size=2)
        engine.single_source(0)
        engine.resize_cache(16)
        hits = engine.statistics.cache_hits
        engine.single_source(0)
        assert engine.statistics.cache_hits == hits + 1

    def test_zero_disables_and_negative_rejects(self, graph):
        engine = create_engine(graph, backend="montecarlo", cache_size=4)
        engine.single_source(0)
        engine.resize_cache(0)
        hits = engine.statistics.cache_hits
        engine.single_source(0)
        assert engine.statistics.cache_hits == hits  # nothing cached now
        with pytest.raises(ParameterError):
            engine.resize_cache(-1)
