"""Routing tests for the engine planner."""

from __future__ import annotations

import pytest

from repro.engine import (
    BackendConfig,
    create_engine,
    estimate_sling_index_bytes,
    plan_backend,
)
from repro.engine.planner import POWER_METHOD_MAX_NODES
from repro.exceptions import ParameterError
from repro.graphs import generators


@pytest.fixture(scope="module")
def graph():
    return generators.two_level_community(2, 10, seed=5)


class TestEstimate:
    def test_estimate_is_positive_and_covers_corrections(self, graph):
        estimate = estimate_sling_index_bytes(graph)
        assert estimate >= 8 * graph.num_nodes

    def test_estimate_grows_as_epsilon_shrinks(self, graph):
        loose = estimate_sling_index_bytes(graph, epsilon=0.2)
        tight = estimate_sling_index_bytes(graph, epsilon=0.025)
        assert tight > loose


class TestPlanning:
    def test_unconstrained_picks_in_memory_sling(self, graph):
        plan = plan_backend(graph)
        assert plan.backend == "sling"
        assert plan.memory_budget_bytes is None

    def test_large_budget_picks_in_memory_sling(self, graph):
        plan = plan_backend(graph, memory_budget_bytes=1 << 30)
        assert plan.backend == "sling"

    def test_tight_budget_falls_back_to_disk(self, graph):
        estimate = estimate_sling_index_bytes(graph)
        budget = max(8 * graph.num_nodes, estimate // 100)
        plan = plan_backend(graph, memory_budget_bytes=budget)
        assert plan.backend == "sling-disk"
        assert "disk" in plan.reason

    def test_starved_budget_falls_back_to_baseline(self, graph):
        plan = plan_backend(graph, memory_budget_bytes=4)
        assert plan.backend == "power"  # graph is tiny, exact fallback wins
        # The fallback exceeds the budget; the plan must say so.
        assert "not honoured" in plan.reason

    def test_no_index_build_uses_power_on_small_graphs(self, graph):
        plan = plan_backend(graph, allow_index_build=False)
        assert graph.num_nodes <= POWER_METHOD_MAX_NODES
        assert plan.backend == "power"

    def test_no_index_build_uses_montecarlo_on_larger_graphs(self):
        big = generators.preferential_attachment(
            POWER_METHOD_MAX_NODES + 10, 2, seed=1
        )
        plan = plan_backend(big, allow_index_build=False)
        assert plan.backend == "montecarlo_sqrtc"

    def test_prefer_short_circuits_planning(self, graph):
        plan = plan_backend(graph, memory_budget_bytes=4, prefer="linearize")
        assert plan.backend == "linearize"
        assert "explicitly requested" in plan.reason

    def test_prefer_accepts_figure_aliases(self, graph):
        assert plan_backend(graph, prefer="MC").backend == "montecarlo"

    def test_prefer_unknown_backend_rejected(self, graph):
        with pytest.raises(ParameterError):
            plan_backend(graph, prefer="FooBar")

    def test_plan_as_dict_round_trips(self, graph):
        plan = plan_backend(graph, memory_budget_bytes=123456)
        payload = plan.as_dict()
        assert payload["backend"] == plan.backend
        assert payload["memory_budget_bytes"] == 123456


class TestCreateEngine:
    def test_engine_carries_plan_and_answers_queries(self, graph):
        engine = create_engine(
            graph, config=BackendConfig(epsilon=0.1, seed=0), cache_size=8
        )
        assert engine.plan.backend == "sling"
        assert 0.0 <= engine.single_pair(0, 1) <= 1.0
        assert engine.backend.is_built

    def test_engine_respects_explicit_backend(self, graph):
        engine = create_engine(
            graph, backend="power", config=BackendConfig(epsilon=0.1)
        )
        assert engine.plan.backend == "power"
        assert engine.backend.name == "power"

    def test_hand_built_engine_has_no_plan(self, graph):
        from repro.engine import QueryEngine, create_backend

        engine = QueryEngine(create_backend("power", graph, BackendConfig(epsilon=0.1)))
        assert engine.plan is None
