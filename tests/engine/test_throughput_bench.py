"""The engine-throughput benchmark must honour its acceptance contract:
batched single-source queries on a warm cache are at least 2x the throughput
of uncached one-at-a-time queries, and the payload is valid JSON."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        import bench_engine_throughput
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
    return bench_engine_throughput


@pytest.fixture(scope="module")
def payload(bench_module):
    return bench_module.run_benchmark(
        dataset="GrQc", scale=0.05, epsilon=0.1, num_queries=30,
        distinct_sources=8, cache_size=32, seed=0,
    )


class TestEngineThroughputBenchmark:
    def test_batched_warm_is_at_least_twice_single_cold(self, payload):
        assert payload["speedups"]["batched_warm_vs_single_cold"] >= 2.0

    def test_warm_cells_are_fully_cache_resident(self, payload):
        assert payload["cells"]["single_warm"]["cache_hit_rate"] == 1.0
        assert payload["cells"]["batched_warm"]["cache_hit_rate"] == 1.0

    def test_payload_is_json_serialisable(self, payload):
        decoded = json.loads(json.dumps(payload))
        assert decoded["benchmark"] == "engine_throughput"
        assert set(decoded["cells"]) == {
            "single_cold", "single_warm", "batched_cold", "batched_warm",
        }

    def test_workload_is_deterministic_and_skewed(self, bench_module):
        first = bench_module.build_workload(100, 50, 10, seed=3)
        second = bench_module.build_workload(100, 50, 10, seed=3)
        assert first == second
        assert len(set(first)) <= 10
