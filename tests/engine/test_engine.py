"""Cache-behaviour and batching tests for :class:`QueryEngine`.

A counting stub backend makes backend-call amortization observable: the
cache and batching guarantees are asserted as exact hit/miss/eviction and
call counts, not timings.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import BackendInfo, QueryEngine, SimilarityBackend
from repro.engine.engine import PAIR_AMORTIZE_THRESHOLD
from repro.exceptions import ParameterError
from repro.graphs import generators


class CountingBackend(SimilarityBackend):
    """Deterministic stub: s(u, v) = 1/(1+|u-v|), with call counters.

    Deliberately NOT registered — it exists only to observe how often the
    engine reaches the backend.
    """

    info = BackendInfo(name="counting", exact=True, build_cost="none")

    def __init__(self, graph, config=None):
        super().__init__(graph, config)
        self.pair_calls = 0
        self.source_calls = 0

    def build(self):
        self._built = True
        return self

    def single_pair(self, node_u, node_v):
        self.pair_calls += 1
        return 1.0 / (1.0 + abs(int(node_u) - int(node_v)))

    def single_source(self, node):
        self.source_calls += 1
        n = self._graph.num_nodes
        return np.array(
            [1.0 / (1.0 + abs(int(node) - other)) for other in range(n)]
        )

    def index_size_bytes(self):
        return 8


@pytest.fixture()
def graph():
    return generators.cycle(12)


@pytest.fixture()
def engine(graph):
    return QueryEngine(CountingBackend(graph), cache_size=4)


class TestCacheBehaviour:
    def test_single_source_miss_then_hit(self, engine):
        first = engine.single_source(3)
        second = engine.single_source(3)
        np.testing.assert_allclose(first, second)
        assert engine.backend.source_calls == 1
        assert engine.statistics.cache_misses == 1
        assert engine.statistics.cache_hits == 1
        assert engine.statistics.cache_hit_rate == 0.5

    def test_results_are_caller_owned_copies(self, engine):
        first = engine.single_source(3)
        first[:] = -1.0
        second = engine.single_source(3)
        assert float(second[3]) == 1.0

    def test_eviction_is_lru(self, engine):
        for node in (0, 1, 2, 3):
            engine.single_source(node)
        engine.single_source(0)  # refresh node 0
        engine.single_source(4)  # evicts node 1, the least recently used
        assert engine.statistics.cache_evictions == 1
        assert engine.cached_nodes() == [2, 3, 0, 4]
        engine.single_source(1)  # gone: must recompute
        assert engine.backend.source_calls == 6

    def test_top_k_routes_through_cache(self, engine):
        engine.single_source(5)
        ranked = engine.top_k(5, 3)
        assert engine.backend.source_calls == 1
        assert len(ranked) == 3
        assert 5 not in {node for node, _ in ranked}
        # Nearest neighbours of 5 under the stub metric, id tie-break.
        assert [node for node, _ in ranked] == [4, 6, 3]

    def test_single_pair_served_from_cached_vector(self, engine):
        engine.single_source(2)
        score = engine.single_pair(2, 7)
        assert score == pytest.approx(1.0 / 6.0)
        assert engine.backend.pair_calls == 0
        score = engine.single_pair(7, 2)  # symmetric lookup also hits
        assert engine.backend.pair_calls == 0
        assert engine.statistics.cache_hits == 2

    def test_clear_cache(self, engine):
        engine.single_source(1)
        engine.clear_cache()
        engine.single_source(1)
        assert engine.backend.source_calls == 2

    def test_zero_cache_disables_caching(self, graph):
        engine = QueryEngine(CountingBackend(graph), cache_size=0)
        engine.single_source(1)
        engine.single_source(1)
        assert engine.backend.source_calls == 2
        assert engine.statistics.cache_hits == 0

    def test_negative_cache_size_rejected(self, graph):
        with pytest.raises(ParameterError):
            QueryEngine(CountingBackend(graph), cache_size=-1)


class TestBatchedExecution:
    def test_single_source_many_computes_each_distinct_source_once(self, engine):
        results = engine.single_source_many([0, 1, 0, 1, 0])
        assert len(results) == 5
        assert engine.backend.source_calls == 2
        assert engine.statistics.cache_hits == 3
        assert engine.statistics.batch_calls == 1

    def test_single_source_many_dedupes_even_without_cache(self, graph):
        engine = QueryEngine(CountingBackend(graph), cache_size=0)
        engine.single_source_many([4, 4, 4])
        assert engine.backend.source_calls == 1

    def test_single_pair_many_amortizes_hot_sources(self, engine):
        pairs = [(0, v) for v in range(PAIR_AMORTIZE_THRESHOLD)]
        scores = engine.single_pair_many(pairs)
        assert scores == [1.0 / (1.0 + v) for v in range(PAIR_AMORTIZE_THRESHOLD)]
        # One single-source computation instead of four pair calls.
        assert engine.backend.source_calls == 1
        assert engine.backend.pair_calls == 0

    def test_single_pair_many_cold_sources_stay_pairwise(self, engine):
        scores = engine.single_pair_many([(0, 1), (2, 3), (4, 5)])
        assert engine.backend.pair_calls == 3
        assert engine.backend.source_calls == 0
        assert scores == [0.5, 0.5, 0.5]

    def test_single_pair_many_amortizes_even_without_cache(self, graph):
        engine = QueryEngine(CountingBackend(graph), cache_size=0)
        pairs = [(0, v) for v in range(PAIR_AMORTIZE_THRESHOLD + 2)]
        engine.single_pair_many(pairs)
        # The hot-source vector must be computed once per batch, not per pair.
        assert engine.backend.source_calls == 1
        assert engine.backend.pair_calls == 0

    def test_single_pair_many_amortize_false_forces_pairwise(self, engine):
        pairs = [(0, v) for v in range(PAIR_AMORTIZE_THRESHOLD + 2)]
        engine.single_pair_many(pairs, amortize=False)
        assert engine.backend.pair_calls == len(pairs)
        assert engine.backend.source_calls == 0

    def test_top_k_many_shares_cached_vectors(self, engine):
        engine.top_k_many([1, 2, 1, 2], k=3)
        assert engine.backend.source_calls == 2
        assert engine.statistics.top_k_queries == 4

    def test_top_k_many_counts_as_one_batch_call(self, engine):
        engine.top_k_many([1, 2, 1], k=3)
        assert engine.statistics.batch_calls == 1

    def test_top_k_many_dedupes_even_without_cache(self, graph):
        engine = QueryEngine(CountingBackend(graph), cache_size=0)
        results = engine.top_k_many([4, 4, 4], k=3)
        assert engine.backend.source_calls == 1
        assert results[0] == results[1] == results[2]

    def test_top_k_many_matches_top_k(self, engine, graph):
        batched = engine.top_k_many([3, 7], k=4)
        fresh = QueryEngine(CountingBackend(graph), cache_size=4)
        assert batched == [fresh.top_k(3, 4), fresh.top_k(7, 4)]

    def test_top_k_many_rejects_bad_k(self, engine):
        with pytest.raises(ParameterError):
            engine.top_k_many([1, 2], k=0)


class TestStatistics:
    def test_counters_by_kind(self, engine):
        engine.single_pair(0, 1)
        engine.single_source(0)
        engine.top_k(0, 2)
        stats = engine.statistics
        assert stats.single_pair_queries == 1
        assert stats.single_source_queries == 1
        assert stats.top_k_queries == 1
        assert stats.total_queries == 3
        assert stats.total_seconds > 0.0
        assert stats.backend == "counting"

    def test_as_dict_is_json_serialisable(self, engine):
        engine.single_source(0)
        payload = json.loads(json.dumps(engine.statistics.as_dict()))
        assert payload["total_queries"] == 1
        assert payload["backend"] == "counting"
        assert 0.0 <= payload["cache_hit_rate"] <= 1.0

    def test_as_dict_exposes_recent_queries(self, engine):
        engine.single_source(0)
        engine.single_source(0)
        payload = json.loads(json.dumps(engine.statistics.as_dict()))
        records = payload["recent_queries"]
        assert [record["cache_hit"] for record in records] == [False, True]
        assert all(record["kind"] == "single_source" for record in records)
        assert all(record["seconds"] >= 0.0 for record in records)

    def test_as_dict_recent_queries_stay_bounded(self, engine):
        from repro.engine.engine import MAX_QUERY_RECORDS

        for _ in range(MAX_QUERY_RECORDS + 10):
            engine.single_pair(0, 1)
        payload = engine.statistics.as_dict()
        assert len(payload["recent_queries"]) == MAX_QUERY_RECORDS

    def test_recent_queries_record_latency_and_provenance(self, engine):
        engine.single_source(0)
        engine.single_source(0)
        records = engine.statistics.recent_queries
        assert [r.cache_hit for r in records] == [False, True]
        assert all(r.backend == "counting" for r in records)
        assert all(r.seconds >= 0.0 for r in records)

    def test_reset_statistics_keeps_cache(self, engine):
        engine.single_source(0)
        engine.reset_statistics()
        assert engine.statistics.total_queries == 0
        engine.single_source(0)
        assert engine.backend.source_calls == 1  # still cached

    def test_summary_mentions_backend_and_hit_rate(self, engine):
        engine.single_source(0)
        summary = engine.statistics.summary()
        assert "counting" in summary
        assert "cache hit rate" in summary


class TestEngineBuildsBackendIfNeeded:
    def test_unbuilt_backend_is_built_on_construction(self, graph):
        backend = CountingBackend(graph)
        assert not backend.is_built
        engine = QueryEngine(backend)
        assert engine.backend.is_built
