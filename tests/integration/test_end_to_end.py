"""Integration tests exercising the full pipeline across modules."""

from __future__ import annotations

import pytest

from repro.baselines import LinearizeIndex, MonteCarloIndex, PowerMethod
from repro.evaluation import max_error, random_pairs, top_k_precision
from repro.graphs import datasets, read_edge_list, write_edge_list
from repro.sling import DiskBackedIndex, SlingIndex, load_index, save_index

EPS = 0.1


class TestDatasetToQueriesPipeline:
    @pytest.fixture(scope="class")
    def graph(self):
        return datasets.load_dataset("GrQc", scale=0.08, seed=1)

    @pytest.fixture(scope="class")
    def truth(self, graph):
        return PowerMethod(graph, num_iterations=40).build().all_pairs()

    @pytest.fixture(scope="class")
    def sling(self, graph):
        return SlingIndex(graph, epsilon=EPS, seed=1).build()

    def test_sling_respects_error_bound_on_dataset_standin(self, sling, truth):
        assert max_error(sling.all_pairs(), truth) <= EPS

    def test_all_methods_agree_on_random_pairs(self, graph, truth, sling):
        mc = MonteCarloIndex(graph, num_walks=400, walk_length=10, seed=2).build()
        linearize = LinearizeIndex(graph, seed=3).build()
        for node_u, node_v in random_pairs(graph, 25, seed=4):
            reference = truth[node_u, node_v]
            assert sling.single_pair(node_u, node_v) == pytest.approx(
                reference, abs=EPS
            )
            assert mc.single_pair(node_u, node_v) == pytest.approx(reference, abs=0.15)
            assert linearize.single_pair(node_u, node_v) == pytest.approx(
                reference, abs=0.15
            )

    def test_single_source_consistent_with_single_pair(self, graph, sling):
        source = 3
        scores = sling.single_source(source)
        for target in range(0, graph.num_nodes, 7):
            assert scores[target] == pytest.approx(
                sling.single_pair(source, target), abs=2 * EPS
            )

    def test_top_k_precision_against_truth(self, sling, truth):
        assert top_k_precision(sling.all_pairs(), truth, 50) >= 0.8

    def test_sling_queries_cheaper_than_linearize(self, graph, sling):
        """The headline claim of Figure 1: SLING single-pair queries are much
        cheaper than Linearize's O(mT) traversal, already at tiny scales."""
        import time

        linearize = LinearizeIndex(graph, seed=5).build()
        pairs = random_pairs(graph, 50, seed=6)

        start = time.perf_counter()
        for node_u, node_v in pairs:
            sling.single_pair(node_u, node_v)
        sling_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        for node_u, node_v in pairs:
            linearize.single_pair(node_u, node_v)
        linearize_elapsed = time.perf_counter() - start

        assert sling_elapsed < linearize_elapsed


class TestFileRoundtripPipeline:
    def test_edge_list_to_index_to_disk_and_back(self, tmp_path):
        original = datasets.load_dataset("AS", scale=0.05, seed=2)
        edge_file = tmp_path / "graph.txt"
        write_edge_list(original, edge_file)
        graph = read_edge_list(edge_file)
        assert graph.num_nodes == original.num_nodes

        index = SlingIndex(graph, epsilon=EPS, seed=7).build()
        directory = save_index(index, tmp_path / "index")
        loaded = load_index(directory, graph)
        disk = DiskBackedIndex(directory, graph)
        for node_u, node_v in random_pairs(graph, 10, seed=8):
            in_memory = index.single_pair(node_u, node_v)
            assert loaded.single_pair(node_u, node_v) == pytest.approx(in_memory)
            assert disk.single_pair(node_u, node_v) == pytest.approx(in_memory)


class TestOptimizedIndexEquivalence:
    def test_all_option_combinations_stay_within_epsilon(self):
        graph = datasets.load_dataset("Wiki-Vote", scale=0.05, seed=3)
        truth = PowerMethod(graph, num_iterations=40).build().all_pairs()
        for reduce_space in (False, True):
            for enhance in (False, True):
                index = SlingIndex(
                    graph,
                    epsilon=EPS,
                    seed=4,
                    reduce_space=reduce_space,
                    enhance_accuracy=enhance,
                ).build()
                error = max_error(index.all_pairs(), truth)
                assert error <= EPS, (reduce_space, enhance, error)

    def test_parallel_and_sequential_builds_answer_identically_for_hitting(self):
        graph = datasets.load_dataset("AS", scale=0.05, seed=5)
        sequential = SlingIndex(graph, epsilon=EPS, seed=6).build()
        parallel = SlingIndex(graph, epsilon=EPS, seed=6).build(workers=2)
        for left, right in zip(sequential.hitting_sets, parallel.hitting_sets):
            assert left == right
