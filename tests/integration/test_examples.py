"""Integration tests that run the example scripts end to end.

The examples are part of the public deliverable, so they are executed as real
subprocesses (with tiny workloads) to make sure they keep working as the
library evolves.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        check=False,
    )


class TestExampleScripts:
    def test_examples_directory_contains_at_least_three_scripts(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3
        assert (EXAMPLES_DIR / "quickstart.py") in scripts

    def test_quickstart(self):
        result = run_example(
            "quickstart.py", "--nodes-per-community", "8", "--epsilon", "0.1"
        )
        assert result.returncode == 0, result.stderr
        assert "the guarantee holds" in result.stdout

    def test_citation_similarity(self):
        result = run_example(
            "citation_similarity.py", "--papers", "80", "--query", "40", "--top", "5"
        )
        assert result.returncode == 0, result.stderr
        assert "overlap with the exact top-5" in result.stdout

    def test_link_prediction(self):
        result = run_example(
            "link_prediction.py",
            "--communities",
            "3",
            "--community-size",
            "10",
            "--epsilon",
            "0.1",
        )
        assert result.returncode == 0, result.stderr
        assert "SimRank (SLING):" in result.stdout

    def test_traffic_replay(self):
        result = run_example(
            "traffic_replay.py",
            "--queries", "200",
            "--communities", "3",
            "--community-size", "8",
        )
        assert result.returncode == 0, result.stderr
        assert "traffic replay complete" in result.stdout
        assert "cache_size=64" in result.stdout

    def test_dynamic_graph(self):
        result = run_example(
            "dynamic_graph.py",
            "--queries", "120",
            "--communities", "3",
            "--community-size", "8",
        )
        assert result.returncode == 0, result.stderr
        assert "dynamic graph tour complete" in result.stdout
        assert "every post-mutation answer echoed the acked index_version" \
            in result.stdout
        assert "eps_stale=0.000" in result.stdout

    def test_accuracy_study(self):
        result = run_example(
            "accuracy_study.py", "--dataset", "GrQc", "--scale", "0.08", "--epsilon", "0.05"
        )
        assert result.returncode == 0, result.stderr
        assert "SLING" in result.stdout and "Linearize" in result.stdout
