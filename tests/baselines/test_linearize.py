"""Unit tests for the linearization method (Section 3.3, Appendix A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LinearizeIndex, simrank_matrix
from repro.exceptions import IndexNotBuiltError, NodeNotFoundError, ParameterError
from repro.graphs import generators
from repro.sling import exact_correction_factors


class TestConstruction:
    def test_invalid_parameters(self, community_graph):
        with pytest.raises(ParameterError):
            LinearizeIndex(community_graph, num_steps=0)
        with pytest.raises(ParameterError):
            LinearizeIndex(community_graph, num_walks=0)
        with pytest.raises(ParameterError):
            LinearizeIndex(community_graph, num_sweeps=0)
        with pytest.raises(ParameterError):
            LinearizeIndex(community_graph, diagonal=np.ones(5))

    def test_queries_before_build_raise(self, community_graph):
        method = LinearizeIndex(community_graph)
        with pytest.raises(IndexNotBuiltError):
            method.single_pair(0, 1)
        with pytest.raises(IndexNotBuiltError):
            _ = method.diagonal

    def test_paper_defaults(self, community_graph):
        method = LinearizeIndex(community_graph)
        assert method.num_steps == 11

    def test_name_label(self, community_graph):
        assert LinearizeIndex(community_graph).name == "Linearize"


class TestWithExactDiagonal:
    """With the true D supplied, Equation (11) guarantees eps = c^T/(1-c)."""

    @pytest.fixture(scope="class")
    def graph(self):
        return generators.two_level_community(2, 8, seed=23)

    @pytest.fixture(scope="class")
    def truth(self, graph, decay):
        return simrank_matrix(graph, c=decay, num_iterations=50)

    @pytest.fixture(scope="class")
    def exact_diagonal(self, graph, truth, decay):
        return exact_correction_factors(graph, truth, decay)

    def test_single_pair_error_bounded_by_truncation(
        self, graph, truth, exact_diagonal, decay
    ):
        method = LinearizeIndex(
            graph, c=decay, num_steps=11, diagonal=exact_diagonal
        ).build()
        bound = decay**12 / (1 - decay)
        for u in range(0, graph.num_nodes, 3):
            for v in range(0, graph.num_nodes, 5):
                assert abs(method.single_pair(u, v) - truth[u, v]) <= bound + 1e-9

    def test_single_source_matches_single_pair(self, graph, exact_diagonal, decay):
        method = LinearizeIndex(graph, c=decay, diagonal=exact_diagonal).build()
        scores = method.single_source(3)
        for node in range(graph.num_nodes):
            assert scores[node] == pytest.approx(method.single_pair(3, node), abs=1e-9)

    def test_diagonal_property_returns_supplied_values(
        self, graph, exact_diagonal, decay
    ):
        method = LinearizeIndex(graph, c=decay, diagonal=exact_diagonal).build()
        assert np.allclose(method.diagonal, exact_diagonal)

    def test_longer_truncation_improves_accuracy(self, graph, truth, exact_diagonal, decay):
        short = LinearizeIndex(
            graph, c=decay, num_steps=2, diagonal=exact_diagonal
        ).build()
        long = LinearizeIndex(
            graph, c=decay, num_steps=12, diagonal=exact_diagonal
        ).build()
        short_error = np.abs(short.all_pairs() - truth).max()
        long_error = np.abs(long.all_pairs() - truth).max()
        assert long_error <= short_error + 1e-12


class TestWithEstimatedDiagonal:
    def test_reasonable_accuracy_on_small_graph(
        self, community_graph, ground_truth_cache, decay
    ):
        truth = ground_truth_cache(community_graph)
        method = LinearizeIndex(community_graph, c=decay, seed=1).build()
        estimated = method.all_pairs()
        # No worst-case guarantee exists (Appendix A), but on a small graph the
        # heuristic should still land in the right ballpark.
        assert np.abs(estimated - truth).max() <= 0.15

    def test_diagonal_entries_are_reasonable(self, community_graph, decay):
        method = LinearizeIndex(community_graph, c=decay, seed=2).build()
        diagonal = method.diagonal
        assert diagonal.shape == (30,)
        assert np.all(diagonal <= 1.0 + 1e-9)
        assert np.all(diagonal >= 1.0 - decay - 0.2)

    def test_estimated_diagonal_close_to_exact(
        self, community_graph, ground_truth_cache, decay
    ):
        truth = ground_truth_cache(community_graph)
        exact = exact_correction_factors(community_graph, truth, decay)
        method = LinearizeIndex(
            community_graph, c=decay, num_walks=300, seed=3
        ).build()
        assert np.abs(method.diagonal - exact).max() <= 0.1

    def test_reproducible_with_seed(self, community_graph):
        first = LinearizeIndex(community_graph, seed=9).build()
        second = LinearizeIndex(community_graph, seed=9).build()
        assert np.allclose(first.diagonal, second.diagonal)

    def test_unknown_node_rejected(self, community_graph):
        method = LinearizeIndex(community_graph, seed=0).build()
        with pytest.raises(NodeNotFoundError):
            method.single_pair(0, 999)
        with pytest.raises(NodeNotFoundError):
            method.single_source(999)

    def test_index_size_is_linear_in_graph(self, decay):
        small_graph = generators.preferential_attachment(30, 2, seed=1)
        large_graph = generators.preferential_attachment(120, 2, seed=1)
        small = LinearizeIndex(small_graph, c=decay, seed=0).build()
        large = LinearizeIndex(large_graph, c=decay, seed=0).build()
        assert large.index_size_bytes() > small.index_size_bytes()
        # O(n + m), so far smaller than the n^2 of the power method.
        assert large.index_size_bytes() < 120 * 120 * 8

    def test_figure8_adversarial_cycle_is_not_diagonally_dominant(self, decay):
        """Figure 8 / Appendix A: on the 4-cycle the linear system's matrix M
        is not diagonally dominant, so Gauss–Seidel convergence is not
        guaranteed — yet the correct diagonal is simply (1 - c) everywhere and
        SimRank is 0 off the diagonal."""
        graph = generators.cycle(4)
        # M(k, i) = sum_l c^l (p^(l)_{k,i})^2; on a directed cycle the reverse
        # walk is deterministic, so p^(l)_{k,i} is 1 for exactly one i per l.
        coefficients = np.zeros((4, 4))
        for k in range(4):
            for level in range(200):
                coefficients[k, (k - level) % 4] += decay**level
        for k in range(4):
            off_diagonal = coefficients[k].sum() - coefficients[k, k]
            assert off_diagonal > coefficients[k, k]  # not diagonally dominant
        # The method must still behave sensibly here: with the exact diagonal
        # (1 - c for every node) every off-diagonal SimRank estimate is 0.
        method = LinearizeIndex(
            graph, c=decay, diagonal=np.full(4, 1.0 - decay)
        ).build()
        assert method.single_pair(0, 2) == pytest.approx(0.0, abs=1e-12)
        assert method.single_pair(1, 1) == pytest.approx(1.0, abs=decay**11)

    def test_zero_in_degree_graph(self, decay):
        # A path graph: the diagonal system is trivially solvable and queries
        # must not divide by zero.
        graph = generators.path(5)
        method = LinearizeIndex(graph, c=decay, seed=1).build()
        assert method.single_pair(1, 2) == pytest.approx(0.0, abs=0.05)
        assert method.single_pair(2, 2) == pytest.approx(1.0, abs=0.05)
