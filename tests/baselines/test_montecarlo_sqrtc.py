"""Unit tests for the √c-walk Monte Carlo variant (Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    SqrtCMonteCarloIndex,
    required_num_walks,
    required_sqrtc_walks,
)
from repro.exceptions import IndexNotBuiltError, NodeNotFoundError, ParameterError
from repro.graphs import generators


class TestParameterFormulas:
    def test_budget_grows_with_accuracy_and_size(self):
        assert required_sqrtc_walks(1000, 0.01, 0.01) > required_sqrtc_walks(
            1000, 0.1, 0.01
        )
        assert required_sqrtc_walks(10_000, 0.05, 0.01) > required_sqrtc_walks(
            50, 0.05, 0.01
        )

    def test_budget_never_exceeds_truncated_variant(self):
        # Dropping the log(1/eps) factor means the sqrt(c) budget is the same
        # Chernoff count, i.e. not larger than the truncated method's.
        assert required_sqrtc_walks(1000, 0.05, 0.01) <= required_num_walks(
            1000, 0.05, 0.01
        )

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            required_sqrtc_walks(0, 0.1, 0.1)
        with pytest.raises(ParameterError):
            required_sqrtc_walks(10, 0.0, 0.1)


class TestQueries:
    @pytest.fixture(scope="class")
    def method(self, community_graph):
        return SqrtCMonteCarloIndex(community_graph, num_walks=800, seed=5).build()

    def test_queries_before_build_raise(self, community_graph):
        method = SqrtCMonteCarloIndex(community_graph, num_walks=10)
        with pytest.raises(IndexNotBuiltError):
            method.single_pair(0, 1)

    def test_identical_nodes_score_one(self, method):
        assert method.single_pair(7, 7) == 1.0

    def test_scores_in_unit_interval(self, method):
        rng = np.random.default_rng(1)
        for _ in range(20):
            u, v = rng.integers(0, 30, size=2)
            assert 0.0 <= method.single_pair(int(u), int(v)) <= 1.0

    def test_unbiased_against_ground_truth(
        self, community_graph, ground_truth_cache, decay
    ):
        truth = ground_truth_cache(community_graph)
        method = SqrtCMonteCarloIndex(
            community_graph, c=decay, num_walks=3000, seed=2
        ).build()
        estimated = method.all_pairs()
        assert np.abs(estimated - truth).max() <= 0.06

    def test_outward_star_estimate(self, outward_star, decay):
        method = SqrtCMonteCarloIndex(
            outward_star, c=decay, num_walks=4000, seed=3
        ).build()
        assert method.single_pair(1, 2) == pytest.approx(decay, abs=0.04)

    def test_cycle_scores_zero(self, decay):
        graph = generators.cycle(6)
        method = SqrtCMonteCarloIndex(graph, c=decay, num_walks=200, seed=4).build()
        assert method.single_pair(0, 3) == 0.0

    def test_single_source_matches_single_pair(self, method):
        scores = method.single_source(2)
        for node in (0, 2, 15, 29):
            assert scores[node] == pytest.approx(method.single_pair(2, node))

    def test_walks_terminate_without_truncation_parameter(self, method):
        # sqrt(c)-walks stop on their own; the stored length should be far
        # below the safety cap of 16/(1 - sqrt(c)) ~ 71.
        assert method.stored_walk_length < 60

    def test_average_walk_length_matches_geometric_expectation(
        self, community_graph, decay
    ):
        # sqrt(c)-walks have expected length sqrt(c)/(1 - sqrt(c)) ~ 3.44 for
        # c = 0.6, so the stored matrix is mostly padding: the average number
        # of non-sentinel steps per walk must sit near that expectation.
        method = SqrtCMonteCarloIndex(
            community_graph, c=decay, num_walks=500, seed=0
        ).build()
        fingerprints = method._fingerprints
        assert fingerprints is not None
        steps_per_walk = (fingerprints >= 0).sum(axis=2).mean()
        expected = decay**0.5 / (1.0 - decay**0.5)
        assert steps_per_walk == pytest.approx(expected, rel=0.15)

    def test_path_graph_all_walks_stop(self, decay):
        graph = generators.path(4)
        method = SqrtCMonteCarloIndex(graph, c=decay, num_walks=50, seed=1).build()
        assert method.single_pair(0, 2) == 0.0

    def test_unknown_node_rejected(self, method):
        with pytest.raises(NodeNotFoundError):
            method.single_pair(0, 999)

    def test_invalid_walk_budget(self, community_graph):
        with pytest.raises(ParameterError):
            SqrtCMonteCarloIndex(community_graph, num_walks=0)

    def test_reproducible_with_seed(self, community_graph):
        first = SqrtCMonteCarloIndex(community_graph, num_walks=60, seed=9).build()
        second = SqrtCMonteCarloIndex(community_graph, num_walks=60, seed=9).build()
        assert first.single_pair(1, 8) == second.single_pair(1, 8)

    def test_name_label(self, community_graph):
        assert SqrtCMonteCarloIndex(community_graph, num_walks=5).name == "MC-sqrtc"
