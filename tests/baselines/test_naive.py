"""Unit tests for the naive SimRank oracle."""

from __future__ import annotations

import pytest

from repro.baselines import iterations_for_error, naive_simrank, naive_simrank_pair
from repro.exceptions import ParameterError
from repro.graphs import DiGraph, generators


class TestIterationsForError:
    def test_matches_lemma1_formula(self):
        # c = 0.6, eps = 0.025: t >= log_0.6(0.01) - 1 ~ 8.02 -> 9.
        assert iterations_for_error(0.6, 0.025) == 9

    def test_tighter_error_needs_more_iterations(self):
        assert iterations_for_error(0.6, 0.001) > iterations_for_error(0.6, 0.1)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            iterations_for_error(0.0, 0.1)
        with pytest.raises(ParameterError):
            iterations_for_error(0.6, 0.0)


class TestNaiveSimRank:
    def test_diagonal_is_one(self, decay):
        graph = generators.cycle(4)
        scores = naive_simrank(graph, c=decay, num_iterations=5)
        for node in graph.nodes():
            assert scores[(node, node)] == 1.0

    def test_cycle_off_diagonal_is_zero(self, decay):
        graph = generators.cycle(5)
        scores = naive_simrank(graph, c=decay, num_iterations=20)
        assert all(
            value == 0.0 for (u, v), value in scores.items() if u != v
        )

    def test_outward_star_leaves_have_score_c(self, outward_star, decay):
        scores = naive_simrank(outward_star, c=decay, num_iterations=10)
        assert scores[(1, 2)] == pytest.approx(decay)
        assert scores[(1, 0)] == 0.0

    def test_complete_graph_matches_closed_form(self, decay, complete_offdiag):
        graph = generators.complete(4)
        scores = naive_simrank(graph, c=decay, epsilon=0.0001)
        assert scores[(0, 1)] == pytest.approx(complete_offdiag(4, decay), abs=0.001)

    def test_symmetry(self, decay):
        graph = generators.two_level_community(2, 5, seed=1)
        scores = naive_simrank(graph, c=decay, num_iterations=10)
        for u in graph.nodes():
            for v in graph.nodes():
                assert scores[(u, v)] == pytest.approx(scores[(v, u)])

    def test_scores_monotone_in_iterations(self, decay):
        # The fixed-point iteration approaches SimRank from below.
        graph = generators.two_level_community(2, 4, seed=2)
        few = naive_simrank(graph, c=decay, num_iterations=3)
        many = naive_simrank(graph, c=decay, num_iterations=10)
        assert all(many[key] >= few[key] - 1e-12 for key in few)

    def test_requires_iterations_or_epsilon(self):
        graph = generators.cycle(3)
        with pytest.raises(ParameterError):
            naive_simrank(graph)

    def test_zero_iterations_gives_identity(self, decay):
        graph = generators.complete(3)
        scores = naive_simrank(graph, c=decay, num_iterations=0)
        assert scores[(0, 1)] == 0.0
        assert scores[(1, 1)] == 1.0

    def test_pair_helper(self, outward_star, decay):
        assert naive_simrank_pair(outward_star, 1, 2, c=decay) == pytest.approx(
            decay, abs=0.001
        )

    def test_nodes_pointing_to_common_parent(self, decay):
        # 0 -> 2, 1 -> 2: nodes 0 and 1 have no in-neighbours, so their
        # similarity is 0, while s(2, 2) = 1.
        graph = DiGraph(3, [(0, 2), (1, 2)])
        scores = naive_simrank(graph, c=decay, num_iterations=10)
        assert scores[(0, 1)] == 0.0

    def test_common_parent_children(self, decay):
        # 0 -> 1, 0 -> 2: children of a common parent have similarity c.
        graph = DiGraph(3, [(0, 1), (0, 2)])
        scores = naive_simrank(graph, c=decay, num_iterations=10)
        assert scores[(1, 2)] == pytest.approx(decay)
