"""Unit tests for the power method (Section 3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import PowerMethod, naive_simrank, simrank_matrix
from repro.exceptions import IndexNotBuiltError, NodeNotFoundError, ParameterError
from repro.graphs import generators


class TestSimrankMatrix:
    def test_matches_naive_oracle(self, decay):
        graph = generators.two_level_community(2, 5, seed=3)
        iterations = 15
        matrix = simrank_matrix(graph, c=decay, num_iterations=iterations)
        oracle = naive_simrank(graph, c=decay, num_iterations=iterations)
        for (u, v), value in oracle.items():
            assert matrix[u, v] == pytest.approx(value, abs=1e-9)

    def test_diagonal_is_one(self, decay):
        graph = generators.preferential_attachment(30, 2, seed=1)
        matrix = simrank_matrix(graph, c=decay, epsilon=0.05)
        assert np.allclose(matrix.diagonal(), 1.0)

    def test_matrix_is_symmetric(self, decay):
        graph = generators.preferential_attachment(30, 2, seed=2)
        matrix = simrank_matrix(graph, c=decay, epsilon=0.05)
        assert np.allclose(matrix, matrix.T)

    def test_values_in_unit_interval(self, decay):
        graph = generators.copying_model(40, 3, seed=3)
        matrix = simrank_matrix(graph, c=decay, epsilon=0.05)
        assert matrix.min() >= 0.0
        assert matrix.max() <= 1.0 + 1e-12

    def test_outward_star(self, outward_star, decay):
        matrix = simrank_matrix(outward_star, c=decay, num_iterations=10)
        assert matrix[1, 2] == pytest.approx(decay)
        assert matrix[0, 1] == 0.0

    def test_complete_graph_closed_form(self, decay, complete_offdiag):
        matrix = simrank_matrix(generators.complete(5), c=decay, epsilon=0.0001)
        assert matrix[0, 1] == pytest.approx(complete_offdiag(5, decay), abs=0.001)

    def test_lemma1_iteration_error_bound(self, decay):
        # The gap between t iterations and the fixed point is at most c^(t+1)/(1-c).
        graph = generators.two_level_community(2, 6, seed=4)
        coarse = simrank_matrix(graph, c=decay, num_iterations=5)
        fine = simrank_matrix(graph, c=decay, num_iterations=50)
        bound = decay**6 / (1 - decay)
        assert np.abs(coarse - fine).max() <= bound + 1e-12

    def test_requires_iterations_or_epsilon(self, decay):
        with pytest.raises(ParameterError):
            simrank_matrix(generators.cycle(3), c=decay)

    def test_invalid_decay(self):
        with pytest.raises(ParameterError):
            simrank_matrix(generators.cycle(3), c=1.5, num_iterations=3)


class TestPowerMethodClass:
    def test_queries_before_build_raise(self):
        method = PowerMethod(generators.cycle(4))
        with pytest.raises(IndexNotBuiltError):
            method.single_pair(0, 1)
        with pytest.raises(IndexNotBuiltError):
            method.single_source(0)
        with pytest.raises(IndexNotBuiltError):
            method.index_size_bytes()

    def test_single_pair_and_source_consistency(self, decay):
        graph = generators.two_level_community(2, 6, seed=5)
        method = PowerMethod(graph, c=decay, epsilon=0.01).build()
        row = method.single_source(3)
        for node in graph.nodes():
            assert row[node] == method.single_pair(3, node)

    def test_all_pairs_returns_copy(self):
        method = PowerMethod(generators.cycle(4)).build()
        matrix = method.all_pairs()
        matrix[0, 1] = 99.0
        assert method.single_pair(0, 1) != 99.0

    def test_index_size_is_n_squared_floats(self):
        graph = generators.cycle(10)
        method = PowerMethod(graph).build()
        assert method.index_size_bytes() == 10 * 10 * 8

    def test_epsilon_determines_iterations(self):
        loose = PowerMethod(generators.cycle(4), epsilon=0.1)
        tight = PowerMethod(generators.cycle(4), epsilon=0.001)
        assert tight.num_iterations > loose.num_iterations

    def test_explicit_iterations_override(self):
        method = PowerMethod(generators.cycle(4), num_iterations=7)
        assert method.num_iterations == 7

    def test_unknown_node_rejected(self):
        method = PowerMethod(generators.cycle(4)).build()
        with pytest.raises(NodeNotFoundError):
            method.single_pair(0, 9)
        with pytest.raises(NodeNotFoundError):
            method.single_source(-2)

    def test_name_label(self):
        assert PowerMethod(generators.cycle(3)).name == "Power"
