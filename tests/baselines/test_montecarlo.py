"""Unit tests for the Monte Carlo fingerprint index (Section 3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    MonteCarloIndex,
    required_num_walks,
    required_walk_length,
)
from repro.exceptions import IndexNotBuiltError, NodeNotFoundError, ParameterError
from repro.graphs import generators


class TestParameterFormulas:
    def test_required_num_walks_grows_with_accuracy(self):
        assert required_num_walks(1000, 0.01, 0.01) > required_num_walks(
            1000, 0.1, 0.01
        )

    def test_required_num_walks_grows_with_graph_size(self):
        assert required_num_walks(10_000, 0.05, 0.01) > required_num_walks(
            100, 0.05, 0.01
        )

    def test_required_walk_length_matches_truncation_bound(self, decay):
        length = required_walk_length(decay, 0.025)
        assert decay ** (length) <= 0.025 / 2 + 1e-12

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            required_num_walks(0, 0.1, 0.1)
        with pytest.raises(ParameterError):
            required_walk_length(1.5, 0.1)


class TestBuildAndQueries:
    @pytest.fixture(scope="class")
    def method(self, community_graph):
        return MonteCarloIndex(
            community_graph, num_walks=400, walk_length=10, seed=7
        ).build()

    def test_queries_before_build_raise(self, community_graph):
        method = MonteCarloIndex(community_graph, num_walks=10, walk_length=5)
        with pytest.raises(IndexNotBuiltError):
            method.single_pair(0, 1)
        with pytest.raises(IndexNotBuiltError):
            method.index_size_bytes()

    def test_identical_nodes_score_one(self, method):
        assert method.single_pair(3, 3) == 1.0

    def test_scores_in_unit_interval(self, method):
        rng = np.random.default_rng(0)
        for _ in range(30):
            u, v = rng.integers(0, 30, size=2)
            assert 0.0 <= method.single_pair(int(u), int(v)) <= 1.0

    def test_approximates_ground_truth(self, community_graph, ground_truth_cache, decay):
        truth = ground_truth_cache(community_graph)
        method = MonteCarloIndex(
            community_graph, c=decay, num_walks=2000, walk_length=12, seed=1
        ).build()
        estimated = method.all_pairs()
        # 2000 walks give roughly 1/sqrt(2000) ~ 0.022 standard error.
        assert np.abs(estimated - truth).max() <= 0.08

    def test_cycle_scores_are_zero(self, decay):
        graph = generators.cycle(6)
        method = MonteCarloIndex(graph, c=decay, num_walks=100, walk_length=8, seed=2).build()
        assert method.single_pair(0, 2) == 0.0

    def test_outward_star_estimate(self, outward_star, decay):
        method = MonteCarloIndex(
            outward_star, c=decay, num_walks=3000, walk_length=5, seed=3
        ).build()
        assert method.single_pair(1, 2) == pytest.approx(decay, abs=0.05)

    def test_single_source_matches_single_pair(self, method):
        scores = method.single_source(4)
        for node in (0, 4, 17, 29):
            assert scores[node] == pytest.approx(method.single_pair(4, node))

    def test_index_size_accounts_for_fingerprints(self, community_graph):
        method = MonteCarloIndex(
            community_graph, num_walks=50, walk_length=7, seed=0
        ).build()
        assert method.index_size_bytes() == 30 * 50 * 7 * 4

    def test_index_size_grows_with_walks(self, community_graph):
        small = MonteCarloIndex(
            community_graph, num_walks=20, walk_length=5, seed=0
        ).build()
        large = MonteCarloIndex(
            community_graph, num_walks=80, walk_length=5, seed=0
        ).build()
        assert large.index_size_bytes() == 4 * small.index_size_bytes()

    def test_defaults_follow_paper_formulas(self, decay):
        graph = generators.cycle(50)
        method = MonteCarloIndex(graph, c=decay, epsilon=0.1, delta=0.1)
        assert method.num_walks == required_num_walks(50, 0.1, 0.1)
        assert method.walk_length == required_walk_length(decay, 0.1)

    def test_unknown_node_rejected(self, method):
        with pytest.raises(NodeNotFoundError):
            method.single_pair(0, 999)

    def test_invalid_overrides(self, community_graph):
        with pytest.raises(ParameterError):
            MonteCarloIndex(community_graph, num_walks=0, walk_length=5)
        with pytest.raises(ParameterError):
            MonteCarloIndex(community_graph, num_walks=5, walk_length=0)

    def test_reproducible_with_seed(self, community_graph):
        first = MonteCarloIndex(
            community_graph, num_walks=50, walk_length=6, seed=11
        ).build()
        second = MonteCarloIndex(
            community_graph, num_walks=50, walk_length=6, seed=11
        ).build()
        assert first.single_pair(2, 9) == second.single_pair(2, 9)

    def test_walks_stop_at_source_nodes(self, decay):
        # On a path graph all reverse walks funnel to node 0 and then stop;
        # fingerprints must use the sentinel, not repeat the last node.
        graph = generators.path(4)
        method = MonteCarloIndex(graph, c=decay, num_walks=20, walk_length=6, seed=4).build()
        assert method.single_pair(0, 1) == 0.0
