"""Hit-rate consistency under the realistic-traffic harness.

The property pinned here: the engine, a single service, and a sharded
pool must all agree on what a hit rate *is*.  There is exactly one
definition — :func:`repro.engine.merge_statistics_totals`, called by both
``SimRankService.statistics`` and the router's stats fan-out merge — so
driving the same generated traffic through a 1-worker and a 4-worker
executor must yield identical query values, and every layer's totals
must reduce to ``cache_hits / (cache_hits + cache_misses)`` over the
same per-engine counters.  The real sharded pool is exercised in
``test_router.py``; the partitioned merge here replays its exact merge
path without spawning worker processes.
"""

from __future__ import annotations

import pytest

from repro.engine import ENGINE_TOTAL_COUNTERS, merge_statistics_totals
from repro.evaluation.traffic import (
    TrafficPattern,
    generate_traffic,
    replay_events,
)
from repro.graphs import generators
from repro.service import ParallelExecutor, ServiceConfig, SimRankService

#: Two generated datasets so the partitioned merge has shards to split.
GRAPHS = {
    "alpha": generators.two_level_community(3, 8, seed=0),
    "beta": generators.cycle(20),
}

#: A hot-pair pattern: pairs probe the cached region, so every layer's
#: pair/probe counters are exercised, not just vector hits.
PATTERN = TrafficPattern(
    num_queries=240,
    seed=13,
    hot_set_size=6,
    drift_every=80,
    burst_every=60,
    burst_length=12,
    pair_mode="hot",
)


def make_service() -> SimRankService:
    # The power backend is deterministic, so identical traffic must give
    # bitwise-identical values regardless of executor concurrency.
    service = SimRankService(ServiceConfig(backend="power", cache_size=8))
    for name, graph in GRAPHS.items():
        service.open_dataset(name, graph=graph)
    return service


def traffic_events():
    return generate_traffic(
        {name: graph.num_nodes for name, graph in GRAPHS.items()}, PATTERN
    )


def engine_dicts(payload: dict) -> list[dict]:
    return [
        engine_stats
        for detail in payload["datasets"].values()
        for engine_stats in detail["engines"].values()
    ]


class TestWorkersOneVersusFour:
    def test_identical_values_and_envelopes(self):
        events = traffic_events()
        wire = [event.to_wire() for event in events]
        outputs = {}
        for workers in (1, 4):
            service = make_service()
            with ParallelExecutor(service, workers=workers) as executor:
                results = executor.run(wire)
            assert all(result.ok for result in results)
            outputs[workers] = [
                (result.kind, result.dataset, result.value)
                for result in results
            ]
        assert outputs[1] == outputs[4]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_totals_are_the_shared_merge_of_the_engines(self, workers):
        service = make_service()
        with ParallelExecutor(service, workers=workers) as executor:
            executor.run([event.to_wire() for event in traffic_events()])
        payload = service.statistics()
        merged = merge_statistics_totals(engine_dicts(payload))
        totals = payload["totals"]
        for counter in ENGINE_TOTAL_COUNTERS:
            assert totals[counter] == merged[counter], counter
        assert totals["cache_hit_rate"] == merged["cache_hit_rate"]
        lookups = totals["cache_hits"] + totals["cache_misses"]
        assert lookups > 0  # the pattern actually exercised the cache
        assert totals["cache_hit_rate"] == totals["cache_hits"] / lookups
        assert totals["hit_rate_by_kind"] == merged["hit_rate_by_kind"]


class TestPartitionedMerge:
    def test_sharded_merge_agrees_with_the_single_service(self):
        """Partitioning engines across shards (the router's fan-out shape)
        and merging the shard totals must reproduce the flat merge."""
        service = make_service()
        replay_events(service, traffic_events())
        dicts = engine_dicts(service.statistics())
        assert len(dicts) >= 2
        flat = merge_statistics_totals(dicts)
        shards = [
            merge_statistics_totals(dicts[: len(dicts) // 2]),
            merge_statistics_totals(dicts[len(dicts) // 2:]),
        ]
        combined = merge_statistics_totals(shards)
        for counter in ENGINE_TOTAL_COUNTERS:
            assert combined[counter] == flat[counter], counter
        assert combined["cache_hit_rate"] == flat["cache_hit_rate"]
        assert combined["hits_by_kind"] == flat["hits_by_kind"]
        assert combined["misses_by_kind"] == flat["misses_by_kind"]
        assert combined["hit_rate_by_kind"] == flat["hit_rate_by_kind"]
        assert combined["total_seconds"] == pytest.approx(flat["total_seconds"])
