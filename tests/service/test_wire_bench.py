"""The wire-overhead benchmark must produce a sane, JSON-able payload.

Timing cells are hardware-dependent, so only structural properties and the
robust invariants (chunking bounds the peak line, reassembly is exact) are
asserted; the actual microsecond numbers are the benchmark's output.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        import bench_wire_overhead
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
    return bench_wire_overhead


@pytest.fixture(scope="module")
def payload(bench_module):
    return bench_module.run_benchmark(
        dataset="GrQc", scale=0.05, epsilon=0.1, iterations=50, repeats=2,
        seed=0,
    )


class TestWireOverheadBenchmark:
    def test_payload_is_json_serialisable(self, payload):
        decoded = json.loads(json.dumps(payload))
        assert decoded["benchmark"] == "wire_overhead"

    def test_codec_cells_are_positive(self, payload):
        cells = {cell["cell"]: cell for cell in payload["codec"]}
        assert set(cells) == {
            "request_top_k", "response_top_k", "response_single_source",
        }
        for cell in cells.values():
            assert cell["encode_microseconds_per_frame"] > 0
            assert cell["decode_microseconds_per_frame"] > 0
            assert cell["line_bytes"] > 0

    def test_chunking_bounds_the_peak_line(self, payload):
        streaming = payload["streaming"]
        assert streaming["chunked_lines"] > streaming["monolithic_lines"] == 1
        assert (
            streaming["chunked_peak_line_bytes"]
            < streaming["monolithic_peak_line_bytes"]
        )
        assert streaming["peak_line_reduction_factor"] > 1.0

    def test_targets_are_recorded_in_the_output(self, payload):
        assert set(payload["targets"]) == {
            "peak_line_reduction_factor_at_least",
            "chunked_latency_factor_at_most",
        }
        assert set(payload["meets_target"]) == {
            "peak_line_reduction", "chunked_latency",
        }
        # On the 30-node test stand-in the done frame's fixed metadata caps
        # the reduction below the realistic-scale 4x target, so only the
        # robust lower bound is asserted here; the benchmark's own default
        # run measures the real thing.
        assert payload["streaming"]["peak_line_reduction_factor"] > 2.0
