"""JSONL wire-protocol round-trips for requests and result envelopes."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import WireFormatError
from repro.service import (
    AllPairsQuery,
    QueryError,
    QueryResult,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
    decode_request,
    decode_result,
    encode_request,
    encode_result,
    result_from_wire,
)

SUCCESS_ENVELOPES = [
    QueryResult.success(
        kind="single_pair", dataset="GrQc", value=0.25, backend="sling",
        plan={"backend": "sling", "reason": "r"}, seconds=0.001, cache_hit=True,
    ),
    QueryResult.success(
        kind="single_source", dataset="GrQc", value=[0.0, 0.5, 1.0],
        backend="power", plan=None, seconds=0.2, cache_hit=False,
    ),
    QueryResult.success(
        kind="top_k", dataset="AS",
        value=[{"rank": 1, "node": 4, "score": 0.9}],
        backend="sling", plan={"backend": "sling"}, seconds=0.01, cache_hit=False,
    ),
    QueryResult.success(
        kind="all_pairs", dataset="AS", value=[[0.0, 1.0], [1.0, 0.0]],
        backend="naive", plan=None, seconds=1.5, cache_hit=None,
    ),
]


class TestRequestLines:
    @pytest.mark.parametrize(
        "query",
        [
            SinglePairQuery("GrQc", 3, 5),
            SingleSourceQuery("GrQc", 3),
            TopKQuery("GrQc", node=3, k=5),
            AllPairsQuery("GrQc"),
        ],
        ids=lambda q: q.kind,
    )
    def test_encode_decode_round_trip(self, query):
        line = encode_request(query)
        assert json.loads(line)["kind"] == query.kind  # one JSON object per line
        assert "\n" not in line
        assert decode_request(line) == query

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(WireFormatError):
            decode_request("{not json")

    def test_decode_rejects_non_object_lines(self):
        with pytest.raises(WireFormatError):
            decode_request("[1, 2, 3]")


class TestResultLines:
    @pytest.mark.parametrize("result", SUCCESS_ENVELOPES, ids=lambda r: r.kind)
    def test_success_round_trip_every_kind(self, result):
        line = encode_result(result)
        assert "\n" not in line
        assert decode_result(line) == result

    def test_error_round_trip(self):
        result = QueryResult.failure(
            "unknown_dataset", "no such dataset", kind="top_k",
            dataset="Nope", seconds=0.1,
        )
        decoded = decode_result(encode_result(result))
        assert decoded == result
        assert decoded.error == QueryError("unknown_dataset", "no such dataset")
        assert not decoded.ok

    def test_error_wire_shape(self):
        payload = QueryResult.failure("bad_request", "boom").to_wire()
        assert payload["ok"] is False
        assert payload["error"] == {"code": "bad_request", "message": "boom"}
        assert "value" not in payload  # error envelopes carry no value fields

    def test_success_wire_shape(self):
        payload = SUCCESS_ENVELOPES[0].to_wire()
        assert payload["ok"] is True
        assert "error" not in payload
        assert set(payload) == {
            "ok", "kind", "dataset", "seconds", "value", "backend", "plan",
            "cache_hit",
        }

    @pytest.mark.parametrize(
        "payload",
        [
            "nope",
            {},
            {"ok": "yes"},
            {"ok": False},  # error envelope without an error object
            {"ok": False, "error": "boom"},
            {"ok": False, "error": {"message": "no code"}},
        ],
    )
    def test_malformed_result_payloads_raise(self, payload):
        with pytest.raises(WireFormatError):
            result_from_wire(payload)
