"""Protocol v2: request envelopes, response frames, chunked streaming.

Covers the wire-level tentpole pieces — versioned envelopes with id echo,
``partial``/``done`` streaming with exact reassembly, compact encoding —
plus the v1 back-compat guarantee: a recorded v1 JSONL transcript replayed
through ``repro serve`` yields byte-equivalent ``value`` fields.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.exceptions import WireFormatError
from repro.service import (
    PROTOCOL_VERSION,
    PingRequest,
    QueryResult,
    ServiceConfig,
    ShutdownRequest,
    SimRankService,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
    decode_envelope,
    decode_envelope_line,
    decode_result,
    encode_request,
    encode_response,
    encode_result,
    response_frames,
    result_from_frames,
)

from repro.cli import main

#: Fast settings shared by every serve invocation (mirrors test_serve_cli).
FAST = ["--scale", "0.05", "--epsilon", "0.1", "--mc-walks", "30"]


def run_serve_frames(capsys, lines, *extra):
    """Run ``repro serve`` over a stdin payload; return every output frame."""
    import sys

    stdin = sys.stdin
    sys.stdin = io.StringIO("\n".join(lines) + "\n")
    try:
        exit_code = main(["serve", *FAST, *extra])
    finally:
        sys.stdin = stdin
    captured = capsys.readouterr()
    frames = [json.loads(line) for line in captured.out.splitlines() if line]
    return exit_code, frames, captured.err


def fast_service():
    return SimRankService(ServiceConfig(scale=0.05, seed=0))


class TestRequestEnvelope:
    def test_bare_v1_line_decodes_as_v2_with_null_id(self):
        env = decode_envelope({"kind": "top_k", "dataset": "GrQc", "node": 3, "k": 5})
        assert env.request == TopKQuery("GrQc", node=3, k=5)
        assert env.id is None
        assert env.chunk_size is None

    @pytest.mark.parametrize("request_id", [0, 7, "req-42", "", -3])
    def test_id_round_trips(self, request_id):
        env = decode_envelope(
            {"v": 2, "id": request_id, "kind": "single_source",
             "dataset": "GrQc", "node": 1}
        )
        assert env.id == request_id
        assert env.request == SingleSourceQuery("GrQc", 1)

    def test_control_kinds_decode_through_the_envelope(self):
        env = decode_envelope({"id": 1, "kind": "ping"})
        assert env.request == PingRequest()

    @pytest.mark.parametrize("bad_id", [1.5, True, [1], {"a": 1}])
    def test_invalid_ids_fail_without_echo(self, bad_id):
        env = decode_envelope({"id": bad_id, "kind": "ping"})
        assert isinstance(env.request, QueryResult)
        assert env.request.error.code == "bad_request"
        assert env.id is None  # an unechoable id is not echoed

    @pytest.mark.parametrize("bad_version", [0, 3, "2", 2.0, True])
    def test_unsupported_versions_are_rejected_with_id_echo(self, bad_version):
        env = decode_envelope({"v": bad_version, "id": 9, "kind": "ping"})
        assert isinstance(env.request, QueryResult)
        assert "protocol version" in env.request.error.message
        assert env.id == 9

    @pytest.mark.parametrize("bad_chunk", [0, -1, "big", 1.5, False])
    def test_invalid_chunk_sizes_are_rejected(self, bad_chunk):
        env = decode_envelope(
            {"id": 3, "chunk_size": bad_chunk, "kind": "single_source",
             "dataset": "GrQc", "node": 0}
        )
        assert isinstance(env.request, QueryResult)
        assert "chunk_size" in env.request.error.message
        assert env.id == 3

    def test_envelope_keys_do_not_leak_into_the_body(self):
        # A v1 decoder would reject "id" as an unexpected field; the v2
        # decoder strips envelope keys before strict body validation.
        env = decode_envelope(
            {"v": 2, "id": 1, "chunk_size": 4, "kind": "single_pair",
             "dataset": "GrQc", "node_u": 0, "node_v": 1}
        )
        assert env.request == SinglePairQuery("GrQc", 0, 1)
        assert env.chunk_size == 4

    def test_undecodable_body_keeps_the_id(self):
        env = decode_envelope({"id": "abc", "kind": "top_k", "dataset": "GrQc"})
        assert isinstance(env.request, QueryResult)
        assert env.request.error.code == "bad_request"
        assert env.id == "abc"

    def test_invalid_json_line_is_total(self):
        env = decode_envelope_line("{definitely not json")
        assert isinstance(env.request, QueryResult)
        assert "invalid JSON" in env.request.error.message

    def test_non_object_payloads_fail(self):
        env = decode_envelope([1, 2, 3])
        assert isinstance(env.request, QueryResult)
        assert env.request.error.code == "bad_request"


class TestCompactEncoding:
    """Satellite: wire lines carry no padded whitespace."""

    def test_requests_encode_compactly(self):
        line = encode_request(TopKQuery("GrQc", node=3, k=5))
        assert line == json.dumps(json.loads(line), separators=(",", ":"))

    def test_results_encode_compactly(self):
        result = QueryResult.success(
            kind="top_k", dataset="GrQc",
            value=[{"rank": 1, "node": 4, "score": 0.9}],
            backend="sling", plan={"backend": "sling"}, seconds=0.01,
            cache_hit=False,
        )
        for line in (encode_result(result), encode_response(result, id=1)):
            assert line == json.dumps(json.loads(line), separators=(",", ":"))

    def test_frames_encode_compactly(self):
        result = QueryResult.success(
            kind="single_source", dataset="GrQc", value=[0.1] * 64,
            backend="sling", plan=None, seconds=0.01, cache_hit=False,
        )
        for line in response_frames(result, id=2, chunk_size=16):
            assert line == json.dumps(json.loads(line), separators=(",", ":"))


def _success_single_source(n=100):
    return QueryResult.success(
        kind="single_source", dataset="GrQc",
        value=[float(i) / n for i in range(n)],
        backend="sling", plan={"backend": "sling"}, seconds=0.5,
        cache_hit=False,
    )


class TestResponseFrames:
    def test_monolithic_response_echoes_id_and_version(self):
        result = _success_single_source(4)
        (line,) = response_frames(result, id="r1")
        payload = json.loads(line)
        assert payload["v"] == PROTOCOL_VERSION
        assert payload["id"] == "r1"
        assert payload["ok"] is True
        assert payload["value"] == result.value
        assert "frame" not in payload

    def test_chunked_frames_are_bounded_and_ordered(self):
        result = _success_single_source(100)
        lines = list(response_frames(result, id=7, chunk_size=16))
        frames = [json.loads(line) for line in lines]
        partials, done = frames[:-1], frames[-1]
        assert len(partials) == 7  # ceil(100 / 16)
        assert all(f["frame"] == "partial" for f in partials)
        assert [f["seq"] for f in partials] == list(range(7))
        assert [f["offset"] for f in partials] == [16 * i for i in range(7)]
        assert all(len(f["value"]) <= 16 for f in partials)
        assert all(f["id"] == 7 for f in frames)
        assert done["frame"] == "done"
        assert done["chunks"] == 7 and done["total"] == 100
        assert "value" not in done
        # Every frame line is far smaller than the monolithic line.
        (monolithic,) = response_frames(result, id=7)
        assert max(len(line) for line in lines) < len(monolithic)

    def test_reassembly_is_exact(self):
        result = _success_single_source(100)
        frames = [
            json.loads(line)
            for line in response_frames(result, id=1, chunk_size=9)
        ]
        rebuilt = result_from_frames(frames)
        assert rebuilt.value == result.value
        assert rebuilt.ok and rebuilt.kind == "single_source"
        assert rebuilt.backend == result.backend
        assert rebuilt.plan == result.plan

    def test_short_values_never_chunk(self):
        result = _success_single_source(8)
        assert len(list(response_frames(result, id=1, chunk_size=8))) == 1

    def test_errors_never_chunk(self):
        failure = QueryResult.failure("bad_request", "boom", kind="single_source")
        lines = list(response_frames(failure, id=5, chunk_size=1))
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["id"] == 5 and payload["ok"] is False

    def test_unchunkable_kinds_never_chunk(self):
        result = QueryResult.success(
            kind="top_k", dataset="GrQc",
            value=[{"rank": i, "node": i, "score": 0.5} for i in range(1, 50)],
            backend="sling", plan=None, seconds=0.1, cache_hit=True,
        )
        assert len(list(response_frames(result, id=1, chunk_size=2))) == 1

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda frames: frames[:-1],                      # missing done
            lambda frames: [frames[1], frames[0], *frames[2:]],  # misordered
            lambda frames: [frames[0], *frames[2:]],          # gap
            lambda frames: [*frames[:-1],
                            {**frames[-1], "total": 999}],    # wrong total
        ],
        ids=["missing-done", "misordered", "gap", "wrong-total"],
    )
    def test_corrupt_frame_sequences_raise(self, mutate):
        frames = [
            json.loads(line)
            for line in response_frames(_success_single_source(64), id=1,
                                        chunk_size=8)
        ]
        with pytest.raises(WireFormatError):
            result_from_frames(mutate(frames))


class TestServeV2:
    """The serve loop end of the protocol: hello, id echo, chunking."""

    def test_hello_frame_opens_the_stream(self, capsys):
        _, frames, _ = run_serve_frames(capsys, ['{"kind":"ping"}'])
        hello = frames[0]
        assert hello["frame"] == "hello"
        assert hello["protocol"] == PROTOCOL_VERSION
        assert "sling" in hello["backends"]
        assert hello["datasets"] == []  # nothing open yet
        assert "GrQc" in hello["registry"]

    def test_no_hello_suppresses_the_handshake(self, capsys):
        _, frames, _ = run_serve_frames(capsys, ['{"kind":"ping"}'], "--no-hello")
        assert all(f.get("frame") != "hello" for f in frames)

    def test_ids_are_echoed_in_arrival_order(self, capsys):
        lines = [
            '{"v":2,"id":"a","kind":"top_k","dataset":"GrQc","node":1,"k":2}',
            '{"kind":"top_k","dataset":"GrQc","node":1,"k":2}',
            '{"v":2,"id":17,"kind":"ping"}',
        ]
        _, frames, _ = run_serve_frames(capsys, lines)
        responses = [f for f in frames if "frame" not in f]
        assert [r["id"] for r in responses] == ["a", None, 17]
        assert all(r["v"] == PROTOCOL_VERSION for r in responses)

    def test_chunked_single_source_over_the_loop(self, capsys):
        lines = [
            '{"v":2,"id":1,"kind":"single_source","dataset":"GrQc","node":0}',
            '{"v":2,"id":2,"chunk_size":7,"kind":"single_source",'
            '"dataset":"GrQc","node":0}',
        ]
        _, frames, _ = run_serve_frames(capsys, lines)
        monolithic = next(f for f in frames if f.get("id") == 1)
        streamed = [f for f in frames if f.get("id") == 2]
        assert streamed[-1]["frame"] == "done"
        rebuilt = result_from_frames(streamed)
        assert rebuilt.value == monolithic["value"]

    def test_server_side_chunk_size_default(self, capsys):
        lines = ['{"v":2,"id":1,"kind":"single_source","dataset":"GrQc","node":0}']
        _, frames, _ = run_serve_frames(capsys, lines, "--chunk-size", "7")
        streamed = [f for f in frames if f.get("id") == 1]
        assert streamed[-1]["frame"] == "done"
        assert len(streamed) > 2


class TestV1TranscriptReplay:
    """A recorded v1 transcript replayed through the v2 serve loop yields
    byte-equivalent ``value`` fields (the PR acceptance criterion)."""

    TRANSCRIPT = [
        '{"kind":"top_k","dataset":"GrQc","node":3,"k":5}',
        '{"kind":"single_pair","dataset":"GrQc","node_u":1,"node_v":2}',
        '{"kind":"single_source","dataset":"GrQc","node":0}',
        '{"kind":"single_pair","dataset":"GrQc","node_u":2,"node_v":1}',
        '{"kind":"all_pairs","dataset":"GrQc"}',
    ]

    def test_values_are_byte_equivalent(self, capsys):
        # The recorded expectation: the PR 2 service API, same settings as
        # the serve loop's FAST flags (scale 0.05, epsilon 0.1, 30 walks).
        from repro.engine import BackendConfig

        service = SimRankService(
            ServiceConfig(
                scale=0.05, seed=0,
                backend_config=BackendConfig(epsilon=0.1, seed=0, mc_num_walks=30),
            )
        )
        expected = [
            json.dumps(service.execute_wire(json.loads(line)).value,
                       separators=(",", ":"))
            for line in self.TRANSCRIPT
        ]

        exit_code, frames, _ = run_serve_frames(capsys, self.TRANSCRIPT)
        assert exit_code == 0
        replayed = [f for f in frames if "frame" not in f]
        assert len(replayed) == len(expected)
        assert all(r["ok"] for r in replayed)
        got = [
            json.dumps(r["value"], separators=(",", ":")) for r in replayed
        ]
        assert got == expected

    def test_v1_lines_still_decode_through_v1_entry_points(self):
        for line in self.TRANSCRIPT:
            assert decode_envelope_line(line).id is None

    def test_v2_response_lines_decode_with_decode_result(self):
        result = _success_single_source(4)
        decoded = decode_result(encode_response(result, id=3))
        assert decoded == result


class TestShutdownControl:
    def test_shutdown_stops_the_serve_loop(self, capsys):
        lines = [
            '{"v":2,"id":1,"kind":"top_k","dataset":"GrQc","node":1,"k":2}',
            '{"v":2,"id":2,"kind":"shutdown"}',
        ]
        exit_code, frames, err = run_serve_frames(capsys, lines)
        assert exit_code == 0
        responses = [f for f in frames if "frame" not in f]
        assert responses[-1]["kind"] == "shutdown"
        assert responses[-1]["value"] == {"stopping": True}
        assert "2/2 ok" in err

    def test_requests_after_shutdown_are_not_answered(self, capsys):
        import sys

        # Feed the loop through a pipe-like single stream: everything is
        # available up front, but the reader must stop at the shutdown ack.
        lines = [
            '{"v":2,"id":1,"kind":"ping"}',
            '{"v":2,"id":2,"kind":"shutdown"}',
        ] + [
            json.dumps({"v": 2, "id": 100 + i, "kind": "ping"})
            for i in range(50)
        ]
        exit_code, frames, _ = run_serve_frames(capsys, lines)
        assert exit_code == 0
        responses = [f for f in frames if "frame" not in f]
        answered = [r["id"] for r in responses]
        assert answered[:2] == [1, 2]
        # In-flight requests may drain, but the tail must not: the reader
        # stopped, so far fewer than the 50 trailing pings were answered.
        assert len(answered) < 20

    def test_in_process_shutdown_matches(self):
        service = fast_service()
        result = service.execute_control(ShutdownRequest())
        assert result.ok and result.value == {"stopping": True}
