"""The mutation control-plane: ``mutate`` requests end to end.

Covers the wire shape of :class:`MutateRequest`, the in-place session
update (same engine object, version-scoped cache invalidation,
``index_version`` stamped on every subsequent answer), the re-freeze
path, and the full error mapping — including the read-only shared
``sling-disk`` rejection.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import BackendConfig
from repro.exceptions import ParameterError
from repro.graphs import generators
from repro.service import (
    ERROR_BAD_REQUEST,
    ERROR_NODE_OUT_OF_RANGE,
    ERROR_UNKNOWN_DATASET,
    MutateRequest,
    ServiceConfig,
    SimRankClient,
    SimRankService,
    SingleSourceQuery,
    control_from_wire,
    request_from_wire,
)
from repro.sling import SlingIndex, save_index

CONFIG = ServiceConfig(
    scale=0.05, backend="sling", backend_config=BackendConfig(epsilon=0.1, seed=0)
)


@pytest.fixture()
def service():
    return SimRankService(CONFIG)


@pytest.fixture()
def toy_service():
    """A service with an attached 30-node community graph called ``toy``."""
    service = SimRankService(CONFIG)
    service.open_dataset("toy", graph=generators.two_level_community(3, 10, seed=7))
    return service


class TestMutateRequest:
    def test_normalizes_edge_lists(self):
        request = MutateRequest(dataset="toy", add=[[0, 1], (2, 3)], remove=[(4, 5)])
        assert request.add == ((0, 1), (2, 3))
        assert request.remove == ((4, 5),)
        assert request.refreeze is False

    def test_wire_round_trip(self):
        request = MutateRequest(
            dataset="toy", add=[(0, 1)], remove=[(2, 3)], refreeze=True
        )
        wire = json.loads(json.dumps(request.to_wire()))
        assert wire["kind"] == "mutate"
        assert control_from_wire(wire) == request
        assert request_from_wire(wire) == request

    def test_rejects_malformed_edges(self):
        with pytest.raises(ParameterError):
            MutateRequest(dataset="toy", add="0,1")
        with pytest.raises(ParameterError):
            MutateRequest(dataset="toy", add=[(0, 1, 2)])
        with pytest.raises(ParameterError):
            MutateRequest(dataset="toy", add=[(0, -1)])
        with pytest.raises(ParameterError):
            MutateRequest(dataset="toy", remove=[(True, 1)])
        with pytest.raises(ParameterError):
            MutateRequest(dataset="")


class TestMutationFlow:
    def test_mutation_ack_and_version_stamping(self, toy_service):
        service = toy_service
        # Warm the engine cache, and pin the pre-mutation serving state.
        before = service.execute(SingleSourceQuery("toy", 17))
        assert before.ok and before.index_version is None
        assert "index_version" not in before.to_wire()

        result = service.execute_control(MutateRequest(dataset="toy", add=[(0, 17)]))
        assert result.ok, result.error
        ack = result.value
        assert ack["index_version"] == 1
        assert ack["edges_added"] == 1
        assert ack["edges_removed"] == 0
        assert ack["epsilon_stale"] == pytest.approx(0.2)  # 2 * epsilon
        assert ack["backend"] == "sling"
        assert ack["refrozen"] is False
        assert result.index_version == 1

        after = service.execute(SingleSourceQuery("toy", 17))
        assert after.ok
        assert after.index_version == 1
        assert after.to_wire()["index_version"] == 1
        assert not np.array_equal(after.value, before.value)

    def test_same_engine_keeps_serving_with_scoped_invalidation(self, toy_service):
        service = toy_service
        session = service.open_dataset("toy")
        engine = session.engine()
        service.execute(SingleSourceQuery("toy", 17))
        service.execute_control(MutateRequest(dataset="toy", add=[(0, 17)]))
        assert session.engine() is engine
        assert engine.statistics.cache_invalidations >= 1
        assert engine.index_version == 1
        assert session.index_version == 1

    def test_statistics_and_describe_surface_the_version(self, toy_service):
        service = toy_service
        service.execute_control(MutateRequest(dataset="toy", add=[(0, 17)]))
        assert service.statistics()["datasets"]["toy"]["index_version"] == 1
        assert service.describe("toy")["index_version"] == 1

    def test_refreeze_clears_staleness(self, toy_service):
        service = toy_service
        service.execute_control(MutateRequest(dataset="toy", add=[(0, 17)]))
        result = service.execute_control(MutateRequest(dataset="toy", refreeze=True))
        assert result.ok
        ack = result.value
        assert ack["refrozen"] is True
        assert ack["index_version"] == 2
        assert ack["epsilon_stale"] == 0.0
        query = service.execute(SingleSourceQuery("toy", 17))
        assert query.index_version == 2

    def test_client_convenience_method(self, toy_service):
        with SimRankClient.in_process(toy_service) as client:
            ack = client.mutate("toy", add=[(0, 17)])
            assert ack["index_version"] == 1
            assert ack["edges_added"] == 1


class TestErrorMapping:
    def test_unknown_dataset(self, service):
        result = service.execute_control(
            MutateRequest(dataset="NotADataset", add=[(0, 1)])
        )
        assert not result.ok
        assert result.error.code == ERROR_UNKNOWN_DATASET

    def test_out_of_range_edge(self, toy_service):
        result = service_result = toy_service.execute_control(
            MutateRequest(dataset="toy", add=[(0, 10_000)])
        )
        assert not result.ok
        assert service_result.error.code == ERROR_NODE_OUT_OF_RANGE
        assert "10000" in result.error.message

    def test_shared_disk_index_is_read_only(self, tmp_path):
        graph = generators.two_level_community(3, 10, seed=7)
        index = SlingIndex(graph, c=0.6, epsilon=0.1, seed=0).build()
        save_index(index, tmp_path / "toy")
        service = SimRankService(
            ServiceConfig(
                scale=0.05,
                backend="sling",
                index_dir=str(tmp_path),
                backend_config=BackendConfig(epsilon=0.1, seed=0),
            )
        )
        service.open_dataset("toy", graph=graph)
        result = service.execute_control(MutateRequest(dataset="toy", add=[(0, 17)]))
        assert not result.ok
        assert result.error.code == ERROR_BAD_REQUEST
        assert "read-only" in result.error.message
