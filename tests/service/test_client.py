"""`SimRankClient` parity: in-process, subprocess, and socket transports
agree.

The shared scenario drives every query kind and every control operation
through every transport with identical settings and asserts the *values*
are identical (timing fields are normalised away — they are the only
thing allowed to differ).  The subprocess half doubles as the
client↔server smoke suite CI runs against a real ``repro serve`` child
(select it with ``-k subprocess``); the socket half runs the same
scenario across a real Unix-domain socket (``-k socket``), and
``tests/service/test_router.py`` reuses it against a multi-worker router.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.engine import BackendConfig
from repro.service import (
    ServiceConfig,
    ServiceError,
    SimRankClient,
    TopKQuery,
)

#: Settings shared by both transports — must stay in lockstep so values
#: are reproducible across processes.
SCALE, EPSILON, SEED, MC_WALKS = 0.05, 0.1, 0, 30

#: Timing keys normalised away before parity comparison; everything else
#: must match exactly.
TIMING_KEYS = {
    "seconds",
    "total_seconds",
    "recent_queries",
    "latency_percentiles",
    "latency_percentiles_by_outcome",
}


def make_client(transport: str) -> SimRankClient:
    if transport == "in_process":
        return SimRankClient.in_process(
            config=ServiceConfig(
                scale=SCALE,
                seed=SEED,
                backend_config=BackendConfig(
                    epsilon=EPSILON, seed=SEED, mc_num_walks=MC_WALKS
                ),
            )
        )
    if transport == "socket":
        return SimRankClient.connect_socket(
            scale=SCALE, epsilon=EPSILON, seed=SEED, mc_walks=MC_WALKS
        )
    return SimRankClient.connect(
        scale=SCALE, epsilon=EPSILON, seed=SEED, mc_walks=MC_WALKS
    )


def normalize(value):
    """Strip timing fields recursively; all other structure must match."""
    if isinstance(value, dict):
        return {
            key: normalize(item)
            for key, item in value.items()
            if key not in TIMING_KEYS
        }
    if isinstance(value, list):
        return [normalize(item) for item in value]
    return value


def run_scenario(client: SimRankClient) -> list:
    """Every query kind and every control operation, in a fixed order."""
    record = []

    def step(label, value):
        record.append((label, normalize(value)))

    step("hello", client.hello())
    step("ping", client.ping())
    step("open", client.open_dataset("GrQc"))
    step("open-again", client.open_dataset("GrQc"))
    step("single_pair", client.single_pair("GrQc", 1, 2))
    unchunked = client.single_source("GrQc", 0)
    chunked = client.single_source("GrQc", 0, chunk_size=7)
    assert chunked == unchunked  # chunking must not change the answer
    step("single_source", unchunked)
    step("single_source-chunked", chunked)
    step("top_k", client.top_k("GrQc", 3, 5))
    step("all_pairs", client.all_pairs("GrQc", chunk_size=11))
    step("list", client.list_datasets())
    step("describe-service", client.describe())
    step("describe-dataset", client.describe("GrQc"))
    step("stats", client.stats())
    step("close", client.close_dataset("GrQc"))
    step("close-again", client.close_dataset("GrQc"))

    # Error envelopes must be identical too (codes and messages).
    missing = client.execute(TopKQuery("NoSuchDataset", node=0, k=3))
    step("error-unknown-dataset", (missing.ok, missing.error.code))
    out_of_range = client.execute(TopKQuery("GrQc", node=10**9, k=3))
    step("error-out-of-range", (out_of_range.ok, out_of_range.error.code,
                                out_of_range.error.message))

    step("shutdown", client.shutdown())
    return record


class TestTransportParity:
    def test_in_process_and_subprocess_records_are_identical(self):
        with make_client("in_process") as local:
            local_record = run_scenario(local)
        with make_client("subprocess") as remote:
            remote_record = run_scenario(remote)
        assert_records_identical(local_record, remote_record)

    def test_socket_transport_record_is_identical_too(self):
        with make_client("in_process") as local:
            local_record = run_scenario(local)
        with make_client("socket") as remote:
            remote_record = run_scenario(remote)
        assert_records_identical(local_record, remote_record)

    def test_scenario_covers_every_kind(self):
        with make_client("in_process") as client:
            labels = {label for label, _ in run_scenario(client)}
        assert {"single_pair", "single_source", "top_k", "all_pairs"} <= labels
        assert {"ping", "open", "close", "list", "stats", "describe-service",
                "describe-dataset", "shutdown"} <= labels


def assert_records_identical(local_record, remote_record):
    """Same labels in the same order, identical values at every step —
    shared with the socket and router suites."""
    assert [label for label, _ in local_record] == [
        label for label, _ in remote_record
    ]
    for (label, local_value), (_, remote_value) in zip(
        local_record, remote_record
    ):
        assert local_value == remote_value, f"transports diverge at {label!r}"


@pytest.fixture(params=["in_process", "subprocess", "socket"])
def client(request):
    instance = make_client(request.param)
    yield instance
    instance.close()


class TestBorrowedService:
    """A caller-supplied service belongs to the caller, not the client."""

    def test_close_leaves_a_borrowed_services_sessions_alone(self):
        from repro.service import SimRankService

        service = SimRankService(ServiceConfig(scale=SCALE, seed=SEED))
        service.open_dataset("GrQc")
        with SimRankClient.in_process(service) as client:
            assert client.list_datasets() == ["GrQc"]
        assert service.list_datasets() == ["GrQc"]  # close() did not tear down

    def test_explicit_shutdown_still_tears_down(self):
        from repro.service import SimRankService

        service = SimRankService(ServiceConfig(scale=SCALE, seed=SEED))
        service.open_dataset("GrQc")
        client = SimRankClient.in_process(service)
        assert client.shutdown() == {"stopping": True}
        assert service.list_datasets() == []  # the caller asked for it
        client.close()

    def test_owned_service_is_torn_down_with_the_client(self):
        client = SimRankClient.in_process(
            config=ServiceConfig(scale=SCALE, seed=SEED)
        )
        client.open_dataset("GrQc")
        client.close()
        assert client.closed


class TestClientBehavior:
    """Per-transport behavior; ``-k subprocess`` is the CI smoke selection."""

    def test_hello_advertises_protocol_and_backends(self, client):
        hello = client.hello()
        assert hello["protocol"] == 2
        assert "sling" in hello["backends"]
        assert hello["datasets"] == []
        assert "GrQc" in hello["registry"]

    def test_chunked_single_source_reassembles_exactly(self, client):
        unchunked = client.single_source("GrQc", 2)
        chunked = client.single_source("GrQc", 2, chunk_size=5)
        assert chunked == unchunked
        assert len(chunked) == client.describe("GrQc")["num_nodes"]

    def test_value_helpers_raise_service_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.top_k("NoSuchDataset", 0, 3)
        assert excinfo.value.code == "unknown_dataset"
        assert excinfo.value.result.ok is False

    def test_shutdown_then_use_fails_cleanly(self, client):
        assert client.shutdown() == {"stopping": True}
        assert client.closed
        with pytest.raises(ServiceError):
            client.ping()

    def test_hello_is_a_connect_time_snapshot(self, client):
        # hello is the handshake, identically on both transports: opening a
        # dataset afterwards must not change it (live state is describe()).
        assert client.hello()["datasets"] == []
        client.open_dataset("GrQc")
        assert client.hello()["datasets"] == []
        assert client.describe()["datasets"] == ["GrQc"]

    def test_sessions_persist_between_calls(self, client):
        client.open_dataset("GrQc")
        client.single_pair("GrQc", 0, 1)
        stats = client.stats()
        assert stats["totals"]["total_queries"] == 1
        assert client.list_datasets() == ["GrQc"]

    def test_stats_expose_latency_percentiles(self, client):
        client.open_dataset("GrQc")
        for node in range(4):
            client.single_pair("GrQc", node, node + 1)
        percentiles = client.stats()["totals"]["latency_percentiles"]
        assert percentiles["single_pair"]["count"] == 4
        assert (
            percentiles["single_pair"]["p50"]
            <= percentiles["single_pair"]["p95"]
            <= percentiles["single_pair"]["p99"]
        )


class TestDeadChildMidRequest:
    """A server child dying mid-request must resolve the in-flight request
    to a structured ``unavailable`` envelope and reap the corpse — never
    hang the caller on a pipe read or leak a zombie."""

    @pytest.mark.parametrize("transport", ["subprocess", "socket"])
    def test_killed_child_surfaces_error_envelope_and_is_reaped(
        self, transport
    ):
        from repro.service import SinglePairQuery

        client = make_client(transport)
        try:
            client.open_dataset("GrQc")
            process = client._transport._process
            # Freeze the child so the query is genuinely in flight (written,
            # unanswered) at the moment of death.
            os.kill(process.pid, signal.SIGSTOP)
            results = []
            worker = threading.Thread(
                target=lambda: results.append(
                    client.execute(SinglePairQuery("GrQc", 1, 2))
                )
            )
            worker.start()
            time.sleep(0.3)  # let the request reach the frozen child
            os.kill(process.pid, signal.SIGKILL)  # acts even while stopped
            worker.join(timeout=30)
            assert not worker.is_alive(), "request hung on a dead child"
            (result,) = results
            assert result.ok is False
            assert result.error.code == "unavailable"
            assert result.kind == "single_pair"
            assert result.dataset == "GrQc"
            assert process.poll() is not None  # reaped — no zombie left
            with pytest.raises(ServiceError):  # later calls fail fast
                client.ping()
        finally:
            client.close()
