"""`SocketServer`: protocol parity over real sockets, and hostile peers.

The parity half replays the shared transport scenario from
``test_client`` against an in-process :class:`SocketServer` through
``SimRankClient(address=...)``.  The hostile half speaks raw bytes:
garbage lines, partial lines, oversized frames, disconnects mid-stream,
and concurrent connections hammering one dataset — the server must answer
with error envelopes or shrug, never wedge or crash.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest
import test_client

from repro.engine import BackendConfig
from repro.service import (
    Address,
    ServiceConfig,
    ServiceError,
    SimRankClient,
    SimRankService,
    SocketServer,
)
from repro.service.net.channel import LineChannel, OversizedLineError, parse_address


def make_service() -> SimRankService:
    return SimRankService(
        ServiceConfig(
            scale=test_client.SCALE,
            seed=test_client.SEED,
            backend_config=BackendConfig(
                epsilon=test_client.EPSILON,
                seed=test_client.SEED,
                mc_num_walks=test_client.MC_WALKS,
            ),
        )
    )


@pytest.fixture
def server():
    instance = SocketServer(
        make_service(),
        address=Address(family="tcp", host="127.0.0.1", port=0),
        workers=2,
    )
    instance.start()
    yield instance
    instance.stop()


def raw_connection(server: SocketServer) -> LineChannel:
    """A raw line channel to the server, with the hello frame consumed."""
    channel = LineChannel(server.address.connect(timeout=10.0))
    channel.settimeout(30.0)
    hello = channel.read_line()
    assert hello is not None and '"frame":"hello"' in hello
    return channel


class TestParityOverSockets:
    def test_scenario_matches_in_process_byte_for_byte(self, server):
        with test_client.make_client("in_process") as local:
            local_record = test_client.run_scenario(local)
        remote = SimRankClient(address=str(server.address))
        remote_record = test_client.run_scenario(remote)
        remote.close()
        test_client.assert_records_identical(local_record, remote_record)
        # The scenario's shutdown stopped the whole server.
        assert server.wait(timeout=30)

    def test_connections_share_one_warm_service(self, server):
        first = SimRankClient(address=str(server.address))
        second = SimRankClient(address=str(server.address))
        try:
            first.open_dataset("GrQc")
            assert second.list_datasets() == ["GrQc"]
            assert second.hello()["datasets"] == []  # connect-time snapshot
        finally:
            first.close()
            second.close()

    def test_client_close_leaves_a_shared_server_running(self, server):
        client = SimRankClient(address=str(server.address))
        client.ping()
        client.close()  # must NOT shut the shared server down
        follow_up = SimRankClient(address=str(server.address))
        assert follow_up.ping()["pong"] is True
        follow_up.close()

    def test_close_marks_a_shared_client_closed(self, server):
        client = SimRankClient(address=str(server.address))
        assert client.ping()["pong"] is True
        client.close()
        assert client.closed is True
        # Requests after close fail fast, exactly like the other transports
        # — not with a misleading went-away-mid-request envelope.
        with pytest.raises(ServiceError, match="shut down"):
            client.ping()


class TestHostilePeers:
    def test_garbage_line_gets_bad_request_and_connection_survives(self, server):
        channel = raw_connection(server)
        try:
            channel.send_line("this is not json {{{")
            frame = json.loads(channel.read_line())
            assert frame["ok"] is False
            assert frame["error"]["code"] == "bad_request"
            # Same connection keeps serving.
            channel.send_line('{"v":2,"id":7,"kind":"ping"}')
            frame = json.loads(channel.read_line())
            assert frame["ok"] is True and frame["id"] == 7
        finally:
            channel.close()

    def test_partial_line_then_disconnect_leaves_server_healthy(self, server):
        sock = server.address.connect(timeout=10.0)
        sock.recv(65536)  # hello
        sock.sendall(b'{"v":2,"id":1,"kind":"pi')  # no newline, then vanish
        sock.close()
        client = SimRankClient(address=str(server.address))
        assert client.ping()["pong"] is True
        client.close()

    def test_oversized_line_is_bounded_and_answered(self):
        server = SocketServer(
            make_service(),
            address=Address(family="tcp", host="127.0.0.1", port=0),
            max_line_bytes=4096,
        )
        server.start()
        try:
            channel = raw_connection(server)
            try:
                channel.send_line('{"padding":"' + "x" * 20000 + '"}')
                frame = json.loads(channel.read_line())
                assert frame["ok"] is False
                assert frame["error"]["code"] == "bad_request"
                assert "frame limit" in frame["error"]["message"]
                # The stream realigned on the next newline: still serving.
                channel.send_line('{"v":2,"id":3,"kind":"ping"}')
                frame = json.loads(channel.read_line())
                assert frame["ok"] is True and frame["id"] == 3
            finally:
                channel.close()
        finally:
            server.stop()

    def test_disconnect_mid_stream_takes_down_only_that_connection(self, server):
        channel = raw_connection(server)
        channel.send_line(
            '{"v":2,"id":1,"kind":"all_pairs","dataset":"GrQc","chunk_size":3}'
        )
        first = channel.read_line()
        assert first is not None and '"frame":"partial"' in first
        channel.close()  # hang up with most of the stream unsent
        client = SimRankClient(address=str(server.address))
        assert client.single_pair("GrQc", 1, 2) >= 0.0
        client.close()

    def test_blank_lines_are_ignored(self, server):
        channel = raw_connection(server)
        try:
            channel.send_line("")
            channel.send_line("   ")
            channel.send_line('{"v":2,"id":9,"kind":"ping"}')
            frame = json.loads(channel.read_line())
            assert frame["id"] == 9 and frame["ok"] is True
        finally:
            channel.close()

    def test_concurrent_connections_hammering_one_dataset(self, server):
        expected = None
        with SimRankClient(address=str(server.address)) as warm:
            warm.open_dataset("GrQc")
            expected = warm.single_source("GrQc", 0)
        errors: list = []

        def hammer() -> None:
            try:
                client = SimRankClient(address=str(server.address))
                for _ in range(5):
                    assert client.single_source("GrQc", 0, chunk_size=7) == expected
                    assert client.ping()["pong"] is True
                client.close()
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []


class TestPingStaysResponsive:
    def test_ping_answered_while_executor_is_busy(self):
        """Pings bypass the shared executor: a health probe must round-trip
        while the only worker thread is deep in a long query, or the pool's
        health checker would kill a merely-busy worker mid-request."""
        service = make_service()
        started = threading.Event()
        release = threading.Event()
        original = service.execute

        def slow_execute(request, *, backend=None):
            started.set()
            release.wait(timeout=60)
            return original(request, backend=backend)

        service.execute = slow_execute
        server = SocketServer(
            service,
            address=Address(family="tcp", host="127.0.0.1", port=0),
            workers=1,
        )
        server.start()
        try:
            busy = raw_connection(server)
            busy.send_line(
                '{"v":2,"id":1,"kind":"single_pair","dataset":"GrQc",'
                '"node_u":1,"node_v":2}'
            )
            assert started.wait(timeout=30)
            probe = raw_connection(server)
            probe.settimeout(5.0)  # a queued-behind-the-query ping trips this
            try:
                probe.send_line('{"v":2,"id":"health","kind":"ping"}')
                frame = json.loads(probe.read_line())
                assert frame["ok"] is True and frame["value"]["pong"] is True
            finally:
                probe.close()
            release.set()
            frame = json.loads(busy.read_line())
            assert frame["id"] == 1
            busy.close()
        finally:
            release.set()
            server.stop()


class TestChannelAndAddress:
    def test_parse_address_forms(self):
        assert parse_address("127.0.0.1:7077").port == 7077
        assert parse_address("tcp:localhost:0").family == "tcp"
        assert parse_address("unix:/tmp/x.sock").path == "/tmp/x.sock"
        assert parse_address("/tmp/y.sock").family == "unix"
        with pytest.raises(ValueError):
            parse_address("")
        with pytest.raises(ValueError):
            parse_address("localhost:99999")
        with pytest.raises(ValueError):
            parse_address("unix:")

    def test_line_channel_roundtrip_and_oversize(self):
        left, right = socket.socketpair()
        sender = LineChannel(left)
        receiver = LineChannel(right, max_line_bytes=64)
        try:
            sender.send_line("short")
            assert receiver.read_line() == "short"
            sender.send_line("y" * 500)
            sender.send_line("after")
            with pytest.raises(OversizedLineError):
                receiver.read_line()
            assert receiver.read_line() == "after"  # realigned post-discard
            left.close()
            assert receiver.read_line() is None  # EOF
        finally:
            sender.close()
            receiver.close()

    def test_oversized_discard_resumes_after_timeout(self):
        left, right = socket.socketpair()
        receiver = LineChannel(right, max_line_bytes=64)
        try:
            receiver.settimeout(0.2)
            left.sendall(b"x" * 500)  # oversized, newline not yet sent
            with pytest.raises(socket.timeout):
                receiver.read_line()  # discard interrupted mid-line
            left.sendall(b"tail-of-the-oversized-line\n")
            left.sendall(b"after\n")
            # The resumed discard still reports the frame-limit breach and
            # must NOT surface the oversized line's tail as a frame.
            with pytest.raises(OversizedLineError):
                receiver.read_line()
            assert receiver.read_line() == "after"
        finally:
            left.close()
            receiver.close()
