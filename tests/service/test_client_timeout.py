"""Client read timeouts over the socket transport, and retry integration.

A stalled server must never hang a client configured with ``timeout``:
the request resolves to a structured ``timeout`` envelope, the (now
ambiguous) lockstep channel is torn down and re-established, and the
client keeps working.  With a :class:`RetryPolicy` the timeout is
retryable, so a transient stall is ridden out invisibly; client-level
``deadline_ms`` bounds the whole retry loop.
"""

from __future__ import annotations

import threading
import time

import pytest
import test_client

from repro.engine import BackendConfig
from repro.exceptions import ParameterError
from repro.service import (
    ERROR_TIMEOUT,
    Address,
    RetryPolicy,
    ServiceConfig,
    SimRankClient,
    SinglePairQuery,
    SimRankService,
)
from repro.service.net import SocketServer

DATASET = "GrQc"


def make_service() -> SimRankService:
    return SimRankService(
        ServiceConfig(
            scale=test_client.SCALE,
            seed=test_client.SEED,
            backend_config=BackendConfig(
                epsilon=test_client.EPSILON,
                seed=test_client.SEED,
                mc_num_walks=test_client.MC_WALKS,
            ),
        )
    )


class _Stall:
    """Monkeypatch for ``service.execute``: stall the first ``count`` calls."""

    def __init__(self, service: SimRankService, seconds: float, count: int = 1):
        self._orig = service.execute
        self._seconds = seconds
        self._lock = threading.Lock()
        self._remaining = count
        self.calls = 0

    def __call__(self, query, **kwargs):
        with self._lock:
            self.calls += 1
            stall = self._remaining > 0
            if stall:
                self._remaining -= 1
        if stall:
            time.sleep(self._seconds)
        return self._orig(query, **kwargs)


@pytest.fixture
def stalled():
    service = make_service()
    service.open_dataset(DATASET)
    stall = _Stall(service, seconds=1.5)
    service.execute = stall
    server = SocketServer(
        service,
        address=Address(family="tcp", host="127.0.0.1", port=0),
        workers=2,
    )
    server.start()
    yield server, stall
    service.execute = stall._orig
    server.stop()


class TestClientTimeout:
    def test_stalled_request_becomes_a_timeout_envelope(self, stalled):
        server, _ = stalled
        client = SimRankClient(address=str(server.address), timeout=0.3)
        result = client.execute(SinglePairQuery(DATASET, node_u=1, node_v=2))
        assert not result.ok
        assert result.error.code == ERROR_TIMEOUT
        assert "0.3" in result.error.message
        assert result.kind == "single_pair"
        assert result.dataset == DATASET
        # The channel was re-established: the client still works once the
        # stall has drained.
        follow_up = client.execute(SinglePairQuery(DATASET, node_u=1, node_v=2))
        assert follow_up.ok, follow_up.error
        client.close()

    def test_retry_policy_rides_out_a_transient_stall(self, stalled):
        server, stall = stalled
        client = SimRankClient(
            address=str(server.address),
            timeout=0.3,
            retry=RetryPolicy(max_attempts=4, base_delay=0.05, seed=0),
        )
        result = client.execute(SinglePairQuery(DATASET, node_u=1, node_v=2))
        assert result.ok, result.error
        assert stall.calls >= 2  # first attempt stalled, a retry answered
        client.close()

    def test_client_deadline_bounds_the_retry_loop(self):
        # A server that stalls *every* data-plane call: without the
        # client-side deadline, 50 attempts would grind for many seconds.
        service = make_service()
        service.open_dataset(DATASET)
        stall = _Stall(service, seconds=1.5, count=10_000)
        service.execute = stall
        server = SocketServer(
            service,
            address=Address(family="tcp", host="127.0.0.1", port=0),
            workers=4,
        )
        server.start()
        try:
            client = SimRankClient(
                address=str(server.address),
                timeout=0.2,
                retry=RetryPolicy(max_attempts=50, base_delay=0.05, seed=0),
            )
            started = time.monotonic()
            result = client.execute(
                SinglePairQuery(DATASET, node_u=1, node_v=2),
                deadline_ms=400.0,
            )
            elapsed = time.monotonic() - started
            assert not result.ok
            assert result.error.code in ("timeout", "deadline_exceeded")
            assert elapsed < 5.0  # nowhere near 50 attempts
            client.close()
        finally:
            service.execute = stall._orig
            server.stop()

    def test_non_positive_timeout_is_rejected(self, stalled):
        server, _ = stalled
        with pytest.raises(ParameterError):
            SimRankClient(address=str(server.address), timeout=0.0)
