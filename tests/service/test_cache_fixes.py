"""Regression tests for the service-layer cache/session fixes.

Pins the four bugfixes of the cache-accounting PR at this layer:

* case-variant dataset spellings are memoized onto the lock-free
  ``execute`` fast path (no registry scan per query);
* ``statistics()`` totals carry *every* engine counter (they used to drop
  ``cache_evictions`` and ``batch_calls``);
* ``cache_budget_vectors=0`` disables caching instead of rounding up to
  one vector per session;
* the ``cache_ttl_seconds`` / ``pair_admission_threshold`` config knobs
  reach every engine a session builds.
"""

from __future__ import annotations

import pytest

from repro.engine import ENGINE_TOTAL_COUNTERS, BackendConfig
from repro.graphs import generators
from repro.service import (
    ServiceConfig,
    SimRankService,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
)

CONFIG = ServiceConfig(
    scale=0.05, backend_config=BackendConfig(epsilon=0.1, seed=0)
)


@pytest.fixture()
def service():
    return SimRankService(CONFIG)


class TestCanonicalMemo:
    def test_case_variant_spelling_skips_rescans_after_first_query(
        self, service, monkeypatch
    ):
        first = service.execute(SingleSourceQuery("grqc", 0))
        assert first.ok

        def boom(name):  # noqa: ANN001 - monkeypatched method
            raise AssertionError(
                f"steady-state query re-resolved {name!r} through _canonical"
            )

        monkeypatch.setattr(service, "_canonical", boom)
        # The memoized spelling must now reach the session without any
        # canonical resolution (which would also mean taking the RLock).
        second = service.execute(SingleSourceQuery("grqc", 1))
        assert second.ok
        assert second.dataset == "GrQc"

    def test_close_drops_memoized_spellings(self, service):
        assert service.execute(SingleSourceQuery("grqc", 0)).ok
        assert service.close_dataset("GrQc") is True
        assert "grqc" not in service._canonical_memo
        # A fresh graph can now be registered under the same key without a
        # stale memo entry routing old spellings to the dead session.
        graph = generators.two_level_community(2, 8, seed=1)
        service.open_dataset("GrQc", graph=graph)
        result = service.execute(SingleSourceQuery("grqc", 0))
        assert result.ok

    def test_close_all_clears_the_memo(self, service):
        assert service.execute(SingleSourceQuery("grqc", 0)).ok
        service.close_all()
        assert service._canonical_memo == {}

    def test_unknown_names_are_not_memoized(self, service):
        result = service.execute(SingleSourceQuery("no-such-dataset", 0))
        assert not result.ok
        assert "no-such-dataset" not in service._canonical_memo


class TestStatisticsTotals:
    def test_totals_carry_every_engine_counter(self, service):
        service.execute(SingleSourceQuery("GrQc", 0))
        service.execute(TopKQuery("GrQc", 0, k=3))
        service.execute(SinglePairQuery("GrQc", 0, 1))
        totals = service.statistics()["totals"]
        for counter in ENGINE_TOTAL_COUNTERS:
            assert counter in totals, counter
        assert "cache_evictions" in totals  # the regression
        assert "batch_calls" in totals      # the regression
        assert "hit_rate_by_kind" in totals
        assert "latency_percentiles_by_outcome" in totals

    def test_totals_equal_sum_of_engines(self, service):
        for name in ("GrQc", "AS"):
            service.execute(SingleSourceQuery(name, 0))
            service.execute(TopKQuery(name, 1, k=3))
        payload = service.statistics()
        for counter in ENGINE_TOTAL_COUNTERS:
            summed = sum(
                engine_stats[counter]
                for detail in payload["datasets"].values()
                for engine_stats in detail["engines"].values()
            )
            assert payload["totals"][counter] == summed, counter


class TestCacheBudgetZero:
    def test_zero_budget_disables_caching(self):
        service = SimRankService(
            ServiceConfig(
                scale=0.05,
                cache_budget_vectors=0,
                backend_config=BackendConfig(epsilon=0.1, seed=0),
            )
        )
        session = service.open_dataset("GrQc")
        assert session._cache_capacity == 0
        assert session.engine().cache_size == 0
        service.execute(SingleSourceQuery("GrQc", 0))
        service.execute(SingleSourceQuery("GrQc", 0))
        totals = service.statistics()["totals"]
        assert totals["cache_hits"] == 0
        assert session.engine().cached_nodes() == []

    def test_zero_budget_applies_to_every_session(self):
        service = SimRankService(
            ServiceConfig(
                scale=0.05,
                cache_budget_vectors=0,
                backend_config=BackendConfig(epsilon=0.1, seed=0),
            )
        )
        for name in ("GrQc", "AS"):
            session = service.open_dataset(name)
            assert session.engine().cache_size == 0

    def test_positive_budget_still_divides(self):
        service = SimRankService(
            ServiceConfig(
                scale=0.05,
                cache_budget_vectors=8,
                backend_config=BackendConfig(epsilon=0.1, seed=0),
            )
        )
        service.open_dataset("GrQc")
        service.open_dataset("AS")
        for name in ("GrQc", "AS"):
            assert service.open_dataset(name).engine().cache_size == 4


class TestPolicyKnobsReachEngines:
    def test_config_knobs_forwarded_to_engines(self):
        service = SimRankService(
            ServiceConfig(
                scale=0.05,
                cache_ttl_seconds=2.5,
                pair_admission_threshold=9,
                backend_config=BackendConfig(epsilon=0.1, seed=0),
            )
        )
        engine = service.open_dataset("GrQc").engine()
        assert engine.cache_ttl_seconds == 2.5
        assert engine.pair_admission_threshold == 9

    def test_describe_reports_the_knobs(self):
        service = SimRankService(
            ServiceConfig(
                scale=0.05,
                cache_ttl_seconds=2.5,
                pair_admission_threshold=9,
                backend_config=BackendConfig(epsilon=0.1, seed=0),
            )
        )
        config = service.describe()["config"]
        assert config["cache_ttl_seconds"] == 2.5
        assert config["pair_admission_threshold"] == 9
