"""Behavioural tests for :class:`SimRankService` and its dataset sessions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BackendConfig
from repro.exceptions import ParameterError
from repro.graphs import generators
from repro.service import (
    ERROR_BAD_REQUEST,
    ERROR_NODE_OUT_OF_RANGE,
    ERROR_UNKNOWN_DATASET,
    AllPairsQuery,
    ServiceConfig,
    SimRankService,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
)

#: Tiny, fast configuration shared by every test in this module.
CONFIG = ServiceConfig(
    scale=0.05, backend_config=BackendConfig(epsilon=0.1, seed=0)
)


@pytest.fixture()
def service():
    return SimRankService(CONFIG)


class TestSessions:
    def test_open_list_close(self, service):
        assert service.list_datasets() == []
        session = service.open_dataset("GrQc")
        assert session.graph.num_nodes > 0
        assert service.list_datasets() == ["GrQc"]
        assert service.close_dataset("GrQc") is True
        assert service.list_datasets() == []
        assert service.close_dataset("GrQc") is False

    def test_open_is_idempotent(self, service):
        assert service.open_dataset("GrQc") is service.open_dataset("GrQc")

    def test_dataset_names_resolve_case_insensitively(self, service):
        session = service.open_dataset("grqc")
        assert session.name == "GrQc"
        assert service.open_dataset("GRQC") is session

    def test_execute_opens_sessions_lazily(self, service):
        result = service.execute(SingleSourceQuery("GrQc", 0))
        assert result.ok
        assert service.list_datasets() == ["GrQc"]

    def test_attached_graph_session(self, service):
        graph = generators.two_level_community(2, 8, seed=1)
        session = service.open_dataset("toy", graph=graph)
        assert session.graph is graph
        result = service.execute(TopKQuery("toy", node=0, k=3))
        assert result.ok and len(result.value) == 3

    def test_conflicting_attached_graph_rejected(self, service):
        service.open_dataset("toy", graph=generators.cycle(8))
        with pytest.raises(ParameterError):
            service.open_dataset("toy", graph=generators.cycle(9))

    def test_unknown_dataset_without_graph_raises_on_open(self, service):
        with pytest.raises(ParameterError):
            service.open_dataset("NotADataset")

    def test_engines_shared_across_alias_spellings(self, service):
        session = service.open_dataset("GrQc")
        assert session.engine("MC") is session.engine("montecarlo")
        assert session.backends() == ["montecarlo"]

    def test_close_all(self, service):
        service.open_dataset("GrQc")
        service.open_dataset("AS")
        service.close_all()
        assert service.list_datasets() == []


class TestExecute:
    def test_single_pair_value_matches_engine(self, service):
        session = service.open_dataset("GrQc")
        expected = session.engine().single_pair(3, 5)
        result = service.execute(SinglePairQuery("GrQc", 3, 5))
        assert result.ok
        assert result.value == pytest.approx(expected)
        assert result.kind == "single_pair"
        assert result.dataset == "GrQc"
        assert result.backend == "sling"
        assert result.plan["backend"] == "sling"
        assert result.seconds >= 0.0
        assert result.error is None

    def test_single_source_value_is_plain_list(self, service):
        result = service.execute(SingleSourceQuery("GrQc", 0))
        assert result.ok
        assert isinstance(result.value, list)
        assert len(result.value) == service.open_dataset("GrQc").num_nodes
        assert all(isinstance(score, float) for score in result.value)

    def test_top_k_value_shape(self, service):
        result = service.execute(TopKQuery("GrQc", node=0, k=4))
        assert result.ok
        assert [entry["rank"] for entry in result.value] == [1, 2, 3, 4]
        assert all(set(entry) == {"rank", "node", "score"} for entry in result.value)

    def test_all_pairs_square_matrix(self, service):
        graph = generators.cycle(6)
        service.open_dataset("cycle", graph=graph)
        result = service.execute(AllPairsQuery("cycle"))
        assert result.ok
        matrix = np.asarray(result.value)
        assert matrix.shape == (6, 6)
        assert result.cache_hit is None  # not meaningful for a full sweep

    def test_cache_hit_flag_flips_on_repeat(self, service):
        first = service.execute(SingleSourceQuery("GrQc", 2))
        second = service.execute(SingleSourceQuery("GrQc", 2))
        assert first.cache_hit is False
        assert second.cache_hit is True

    def test_explicit_backend_override(self, service):
        result = service.execute(TopKQuery("GrQc", node=0, k=2), backend="power")
        assert result.ok
        assert result.backend == "power"
        session = service.open_dataset("GrQc")
        assert "power" in session.backends()


class TestErrorEnvelopes:
    def test_unknown_dataset(self, service):
        result = service.execute(TopKQuery("NotADataset", node=0, k=2))
        assert not result.ok
        assert result.error.code == ERROR_UNKNOWN_DATASET
        assert "NotADataset" in result.error.message
        assert result.kind == "top_k"

    def test_node_out_of_range(self, service):
        n = service.open_dataset("GrQc").num_nodes
        for query in (
            SinglePairQuery("GrQc", n, 0),
            SinglePairQuery("GrQc", 0, n),
            SingleSourceQuery("GrQc", n + 7),
            TopKQuery("GrQc", node=n, k=2),
        ):
            result = service.execute(query)
            assert not result.ok
            assert result.error.code == ERROR_NODE_OUT_OF_RANGE
            assert str(n) in result.error.message or str(n + 7) in result.error.message

    def test_unknown_backend_is_bad_request(self, service):
        result = service.execute(TopKQuery("GrQc", node=0, k=2), backend="magic")
        assert not result.ok
        assert result.error.code == ERROR_BAD_REQUEST

    def test_execute_wire_malformed_payloads_never_raise(self, service):
        for payload in (None, 17, "x", [], {}, {"kind": "nope"},
                        {"kind": "top_k", "dataset": "GrQc", "node": 0, "k": 0}):
            result = service.execute_wire(payload)
            assert not result.ok
            assert result.error.code == ERROR_BAD_REQUEST

    def test_execute_wire_good_payload(self, service):
        result = service.execute_wire(
            {"kind": "single_pair", "dataset": "GrQc", "node_u": 1, "node_v": 2}
        )
        assert result.ok
        assert isinstance(result.value, float)

    def test_failed_engine_build_becomes_internal_error_envelope(
        self, service, monkeypatch
    ):
        from repro.exceptions import StorageError
        from repro.service import service as service_module

        def broken_build(*args, **kwargs):
            raise StorageError("disk full")

        monkeypatch.setattr(service_module, "create_engine", broken_build)
        result = service.execute(TopKQuery("GrQc", node=0, k=2))
        assert not result.ok
        assert result.error.code == "internal_error"
        assert "disk full" in result.error.message

    def test_known_dataset_with_broken_config_is_not_unknown_dataset(self):
        broken = SimRankService(ServiceConfig(scale=-1.0))
        result = broken.execute(TopKQuery("GrQc", node=0, k=2))
        assert not result.ok
        assert result.error.code == "internal_error"  # GrQc itself is valid
        unknown = broken.execute(TopKQuery("NotADataset", node=0, k=2))
        assert unknown.error.code == ERROR_UNKNOWN_DATASET

    def test_internal_errors_become_envelopes(self, service):
        session = service.open_dataset("GrQc")
        engine = session.engine()

        def boom(*args, **kwargs):
            raise RuntimeError("backend exploded")

        engine.single_pair = boom
        result = service.execute(SinglePairQuery("GrQc", 0, 1))
        assert not result.ok
        assert result.error.code == "internal_error"
        assert "backend exploded" in result.error.message


class TestStatistics:
    def test_aggregate_statistics_roll_up(self, service):
        service.execute(SingleSourceQuery("GrQc", 0))
        service.execute(SingleSourceQuery("GrQc", 0))
        service.execute(TopKQuery("AS", node=1, k=3))
        stats = service.statistics()
        assert set(stats["datasets"]) == {"GrQc", "AS"}
        assert stats["totals"]["total_queries"] == 3
        assert stats["totals"]["cache_hits"] >= 1
        assert stats["totals"]["total_seconds"] > 0.0
        grqc = stats["datasets"]["GrQc"]
        assert grqc["num_nodes"] > 0
        assert grqc["engines"]["auto"]["single_source_queries"] == 2

    def test_session_total_queries(self, service):
        session = service.open_dataset("GrQc")
        service.execute(SingleSourceQuery("GrQc", 0))
        service.execute(TopKQuery("GrQc", node=0, k=2), backend="power")
        assert session.total_queries() == 2
