"""End-to-end tests for the ``repro batch`` JSONL sub-command."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main

#: Fast settings shared by every batch invocation.
FAST = ["--scale", "0.05", "--epsilon", "0.1", "--mc-walks", "30"]


def run_batch(capsys, lines, *extra):
    """Run ``repro batch`` over a stdin payload; return (exit, envelopes, err)."""
    import sys

    stdin = sys.stdin
    sys.stdin = io.StringIO("\n".join(lines) + "\n")
    try:
        exit_code = main(["batch", *FAST, *extra])
    finally:
        sys.stdin = stdin
    captured = capsys.readouterr()
    envelopes = [json.loads(line) for line in captured.out.splitlines() if line]
    return exit_code, envelopes, captured.err


class TestBatchHappyPath:
    def test_single_top_k_request(self, capsys):
        exit_code, envelopes, err = run_batch(
            capsys,
            ['{"kind":"top_k","dataset":"GrQc","node":3,"k":5}'],
            "--backend", "auto",
        )
        assert exit_code == 0
        assert len(envelopes) == 1
        envelope = envelopes[0]
        assert envelope["ok"] is True
        assert envelope["kind"] == "top_k"
        assert envelope["dataset"] == "GrQc"
        assert len(envelope["value"]) == 5
        assert envelope["value"][0]["rank"] == 1
        assert envelope["backend"] == "sling"
        assert envelope["plan"]["backend"] == "sling"
        assert envelope["seconds"] > 0.0
        assert "1/1 ok" in err

    def test_every_kind_and_blank_lines(self, capsys):
        exit_code, envelopes, _ = run_batch(
            capsys,
            [
                '{"kind":"single_pair","dataset":"GrQc","node_u":1,"node_v":2}',
                "",
                '{"kind":"single_source","dataset":"GrQc","node":1}',
                '{"kind":"top_k","dataset":"GrQc","node":1,"k":3}',
                '{"kind":"all_pairs","dataset":"GrQc"}',
            ],
        )
        assert exit_code == 0
        assert [envelope["kind"] for envelope in envelopes] == [
            "single_pair", "single_source", "top_k", "all_pairs",
        ]
        assert all(envelope["ok"] for envelope in envelopes)

    def test_sessions_are_reused_across_lines(self, capsys):
        request = '{"kind":"single_source","dataset":"GrQc","node":4}'
        exit_code, envelopes, _ = run_batch(capsys, [request, request])
        assert exit_code == 0
        assert envelopes[0]["cache_hit"] is False
        assert envelopes[1]["cache_hit"] is True

    def test_file_input_and_output(self, capsys, tmp_path):
        requests = tmp_path / "requests.jsonl"
        responses = tmp_path / "responses.jsonl"
        requests.write_text(
            '{"kind":"top_k","dataset":"GrQc","node":3,"k":2}\n'
            '{"kind":"single_pair","dataset":"GrQc","node_u":0,"node_v":1}\n',
            encoding="utf-8",
        )
        exit_code = main(
            ["batch", *FAST, "--input", str(requests), "--output", str(responses)]
        )
        assert exit_code == 0
        assert capsys.readouterr().out == ""  # everything went to the file
        lines = responses.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["ok"] for line in lines)


class TestBatchErrorEnvelopes:
    def test_bad_lines_yield_envelopes_and_nonzero_exit(self, capsys):
        exit_code, envelopes, err = run_batch(
            capsys,
            [
                "this is not json",
                '{"kind":"top_k","dataset":"NotADataset","node":3,"k":5}',
                '{"kind":"top_k","dataset":"GrQc","node":3,"k":5}',
                '{"kind":"top_k","dataset":"GrQc","node":99999999,"k":5}',
                '{"kind":"top_k","dataset":"GrQc","node":3,"k":-1}',
            ],
        )
        assert exit_code == 1
        assert [envelope["ok"] for envelope in envelopes] == [
            False, False, True, False, False,
        ]
        codes = [e["error"]["code"] for e in envelopes if not e["ok"]]
        assert codes == [
            "bad_request", "unknown_dataset", "node_out_of_range", "bad_request",
        ]
        assert "1/5 ok" in err and "4 error(s)" in err

    def test_no_traceback_on_garbage(self, capsys):
        exit_code, envelopes, err = run_batch(capsys, ["{{{{", "[1,2]", '"str"'])
        assert exit_code == 1
        assert len(envelopes) == 3
        assert all(not envelope["ok"] for envelope in envelopes)
        assert "Traceback" not in err

    def test_stats_flag_dumps_service_statistics(self, capsys):
        exit_code, _, err = run_batch(
            capsys,
            ['{"kind":"single_source","dataset":"GrQc","node":1}'],
            "--stats",
        )
        assert exit_code == 0
        assert '"totals"' in err


class TestBatchFiles:
    def test_missing_input_file_fails_cleanly(self, capsys):
        exit_code = main(["batch", *FAST, "--input", "/no/such/file.jsonl"])
        assert exit_code == 1
        err = capsys.readouterr().err
        assert "cannot read --input" in err
        assert "Traceback" not in err

    def test_unwritable_output_fails_cleanly(self, capsys, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"kind":"all_pairs","dataset":"GrQc"}\n')
        exit_code = main(
            ["batch", *FAST, "--input", str(requests),
             "--output", str(tmp_path / "missing-dir" / "out.jsonl")]
        )
        assert exit_code == 1
        assert "cannot write --output" in capsys.readouterr().err


class TestBatchLineNumbers:
    """Satellite: file input stamps decode failures with the bad line."""

    def test_malformed_file_lines_carry_their_line_number(self, capsys, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"kind":"top_k","dataset":"GrQc","node":1,"k":2}\n'
            "this is not json\n"
            "\n"
            '{"kind":"teleport"}\n'
            '{"kind":"top_k","dataset":"GrQc","node":2,"k":2}\n',
            encoding="utf-8",
        )
        output = tmp_path / "out.jsonl"
        exit_code = main(
            ["batch", *FAST, "--input", str(requests), "--output", str(output)]
        )
        assert exit_code == 1
        envelopes = [
            json.loads(line) for line in output.read_text().splitlines() if line
        ]
        assert [e["ok"] for e in envelopes] == [True, False, False, True]
        # Blank lines still count: the line numbers are positions in the
        # input file, so they point at the actual bad lines.
        assert envelopes[1]["error"]["detail"] == {"line": 2}
        assert envelopes[2]["error"]["detail"] == {"line": 4}

    def test_line_numbers_survive_workers(self, capsys, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"kind":"top_k","dataset":"GrQc","node":1,"k":2}\n{oops\n',
            encoding="utf-8",
        )
        output = tmp_path / "out.jsonl"
        exit_code = main(
            ["batch", *FAST, "--workers", "2",
             "--input", str(requests), "--output", str(output)]
        )
        assert exit_code == 1
        envelopes = [
            json.loads(line) for line in output.read_text().splitlines() if line
        ]
        assert envelopes[1]["error"]["detail"] == {"line": 2}

    def test_stdin_failures_carry_no_line_detail(self, capsys):
        _, envelopes, _ = run_batch(capsys, ["{broken"])
        assert "detail" not in envelopes[0]["error"]

    def test_execution_errors_carry_no_line_detail(self, capsys, tmp_path):
        # Only *decode* failures are malformed lines; a well-formed request
        # that fails to execute is not stamped.
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"kind":"top_k","dataset":"NotADataset","node":1,"k":2}\n',
            encoding="utf-8",
        )
        output = tmp_path / "out.jsonl"
        main(["batch", *FAST, "--input", str(requests), "--output", str(output)])
        (envelope,) = [
            json.loads(line) for line in output.read_text().splitlines() if line
        ]
        assert envelope["error"]["code"] == "unknown_dataset"
        assert "detail" not in envelope["error"]


class TestBatchParser:
    def test_batch_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["batch", "--backend", "FooBar"])


class TestBatchWorkers:
    """``--workers N`` must keep the sequential path's contract exactly."""

    LINES = [
        '{"kind":"top_k","dataset":"GrQc","node":%d,"k":4}' % (n % 9)
        for n in range(30)
    ] + [
        "{broken",
        '{"kind":"single_pair","dataset":"GrQc","node_u":1,"node_v":2}',
    ]

    def _strip(self, envelope):
        return {
            key: value
            for key, value in envelope.items()
            if key not in ("seconds", "cache_hit")
        }

    def test_parallel_output_matches_sequential(self, capsys):
        exit_seq, sequential, _ = run_batch(capsys, self.LINES)
        exit_par, parallel, err = run_batch(capsys, self.LINES, "--workers", "4")
        assert exit_seq == exit_par == 1  # the broken line fails either way
        assert len(parallel) == len(sequential) == len(self.LINES)
        assert [self._strip(e) for e in parallel] == [
            self._strip(e) for e in sequential
        ]
        assert "31/32 ok, 1 error(s)" in err

    def test_workers_with_file_io(self, capsys, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"kind":"top_k","dataset":"GrQc","node":1,"k":3}\n'
            '{"kind":"top_k","dataset":"GrQc","node":1,"k":3}\n'
        )
        output = tmp_path / "out.jsonl"
        exit_code = main(
            ["batch", *FAST, "--workers", "2",
             "--input", str(requests), "--output", str(output)]
        )
        assert exit_code == 0
        envelopes = [
            json.loads(line) for line in output.read_text().splitlines() if line
        ]
        assert len(envelopes) == 2
        assert envelopes[0]["value"] == envelopes[1]["value"]

    def test_workers_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["batch", "--workers", "0"])
