"""The control plane: typed requests, service semantics, hostile frames.

The hostile-frame suite covers the PR's required adversarial cases:
unknown kinds, ``shutdown`` mid-batch, ``close_dataset`` with queries in
flight, duplicate ``id``s, and v1/v2 mixed streams.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.cli import main
from repro.exceptions import ParameterError, WireFormatError
from repro.service import (
    CONTROL_KINDS,
    CloseDatasetRequest,
    DescribeRequest,
    ListDatasetsRequest,
    OpenDatasetRequest,
    ParallelExecutor,
    PingRequest,
    ServiceConfig,
    ShutdownRequest,
    SimRankService,
    SingleSourceQuery,
    StatsRequest,
    control_from_wire,
    request_from_wire,
)

FAST = ["--scale", "0.05", "--epsilon", "0.1", "--mc-walks", "30"]


def fast_service(**kwargs):
    kwargs.setdefault("scale", 0.05)
    kwargs.setdefault("seed", 0)
    return SimRankService(ServiceConfig(**kwargs))


class TestControlWire:
    @pytest.mark.parametrize(
        "request_obj",
        [
            PingRequest(),
            OpenDatasetRequest("GrQc"),
            CloseDatasetRequest("GrQc"),
            ListDatasetsRequest(),
            StatsRequest(),
            DescribeRequest(),
            DescribeRequest(dataset="GrQc"),
            ShutdownRequest(),
        ],
        ids=lambda r: f"{r.kind}{'-ds' if getattr(r, 'dataset', None) else ''}",
    )
    def test_round_trip(self, request_obj):
        assert control_from_wire(request_obj.to_wire()) == request_obj

    def test_every_kind_is_registered(self):
        assert set(CONTROL_KINDS) == {
            "ping", "open_dataset", "close_dataset", "list_datasets",
            "stats", "describe", "mutate", "shutdown",
        }

    def test_describe_dataset_is_optional(self):
        assert control_from_wire({"kind": "describe"}) == DescribeRequest()

    def test_unknown_control_kind_raises(self):
        with pytest.raises(WireFormatError, match="unknown control kind"):
            control_from_wire({"kind": "reboot"})

    def test_missing_required_field_raises(self):
        with pytest.raises(WireFormatError, match="missing field"):
            control_from_wire({"kind": "open_dataset"})

    def test_unexpected_field_raises(self):
        with pytest.raises(WireFormatError, match="unexpected field"):
            control_from_wire({"kind": "ping", "force": True})

    def test_empty_dataset_raises(self):
        with pytest.raises(ParameterError):
            control_from_wire({"kind": "close_dataset", "dataset": "  "})

    def test_union_decoder_routes_both_planes(self):
        assert request_from_wire({"kind": "ping"}) == PingRequest()
        assert request_from_wire(
            {"kind": "single_source", "dataset": "GrQc", "node": 1}
        ) == SingleSourceQuery("GrQc", 1)
        with pytest.raises(WireFormatError, match="unknown request kind"):
            request_from_wire({"kind": "explode"})


class TestExecuteControl:
    def test_ping(self):
        result = fast_service().execute_control(PingRequest())
        assert result.ok and result.kind == "ping"
        assert result.value == {"pong": True, "protocol": 2}

    def test_open_list_close_lifecycle(self):
        service = fast_service()
        opened = service.execute_control(OpenDatasetRequest("GrQc"))
        assert opened.ok
        assert opened.value["already_open"] is False
        assert opened.value["num_nodes"] > 0
        again = service.execute_control(OpenDatasetRequest("GrQc"))
        assert again.value["already_open"] is True

        listed = service.execute_control(ListDatasetsRequest())
        assert listed.value == {"datasets": ["GrQc"]}

        closed = service.execute_control(CloseDatasetRequest("GrQc"))
        assert closed.ok and closed.value["closed"] is True
        assert service.list_datasets() == []
        re_closed = service.execute_control(CloseDatasetRequest("GrQc"))
        assert re_closed.ok and re_closed.value["closed"] is False

    def test_open_unknown_dataset_is_an_error_envelope(self):
        result = fast_service().execute_control(OpenDatasetRequest("Nope"))
        assert not result.ok
        assert result.error.code == "unknown_dataset"

    def test_stats_matches_service_statistics(self):
        service = fast_service()
        service.execute(SingleSourceQuery("GrQc", 1))
        result = service.execute_control(StatsRequest())
        assert result.ok
        assert result.value == service.statistics()
        assert result.value["totals"]["total_queries"] == 1

    def test_describe_service(self):
        service = fast_service()
        result = service.execute_control(DescribeRequest())
        assert result.ok
        assert result.value["protocol"] == 2
        assert "sling" in result.value["backends"]
        assert result.value["config"]["scale"] == 0.05

    def test_describe_open_session_exposes_engine_detail(self):
        service = fast_service()
        service.execute(SingleSourceQuery("GrQc", 1))
        result = service.execute_control(DescribeRequest(dataset="GrQc"))
        assert result.ok
        detail = result.value
        assert detail["num_nodes"] > 0 and detail["num_edges"] > 0
        engine = detail["engines"]["auto"]
        assert engine["backend"] == "sling"
        assert engine["backend_info"]["thread_safe_queries"] is True
        assert engine["cached_vectors"] == 1
        assert engine["statistics"]["single_source_queries"] == 1
        assert engine["plan"]["backend"] == "sling"

    def test_describe_unopened_session_is_an_error_not_a_build(self):
        service = fast_service()
        result = service.execute_control(DescribeRequest(dataset="GrQc"))
        assert not result.ok
        assert result.error.code == "unknown_dataset"
        assert service.list_datasets() == []  # describing must not open

    def test_control_envelopes_carry_no_backend_or_plan(self):
        result = fast_service().execute_control(PingRequest())
        assert result.backend is None and result.plan is None
        assert result.cache_hit is None and result.seconds >= 0.0

    def test_execute_request_dispatches_both_planes(self):
        service = fast_service()
        assert service.execute_request(PingRequest()).kind == "ping"
        assert service.execute_request(SingleSourceQuery("GrQc", 0)).ok


def run_batch(capsys, lines, *extra):
    import sys

    stdin = sys.stdin
    sys.stdin = io.StringIO("\n".join(lines) + "\n")
    try:
        exit_code = main(["batch", *FAST, *extra])
    finally:
        sys.stdin = stdin
    captured = capsys.readouterr()
    envelopes = [json.loads(line) for line in captured.out.splitlines() if line]
    return exit_code, envelopes, captured.err


class TestHostileFrames:
    """Adversarial wire input must come back as envelopes, never crashes."""

    def test_unknown_kind_is_a_bad_request_envelope(self, capsys):
        exit_code, envelopes, err = run_batch(
            capsys, ['{"kind":"format_disk"}', '{"kind":"ping"}']
        )
        assert exit_code == 1  # the bad line fails the batch
        assert [e["ok"] for e in envelopes] == [False, True]
        assert envelopes[0]["error"]["code"] == "bad_request"
        assert "unknown request kind" in envelopes[0]["error"]["message"]
        assert "Traceback" not in err

    def test_duplicate_ids_are_answered_independently(self, capsys):
        lines = [
            '{"v":2,"id":"dup","kind":"ping"}',
            '{"v":2,"id":"dup","kind":"top_k","dataset":"GrQc","node":1,"k":2}',
            '{"v":2,"id":"dup","kind":"ping"}',
        ]
        exit_code, envelopes, _ = run_batch(capsys, lines)
        assert exit_code == 0
        assert [e["id"] for e in envelopes] == ["dup", "dup", "dup"]
        assert [e["kind"] for e in envelopes] == ["ping", "top_k", "ping"]
        assert all(e["ok"] for e in envelopes)

    def test_v1_v2_mixed_stream(self, capsys):
        lines = [
            '{"kind":"top_k","dataset":"GrQc","node":1,"k":2}',         # v1
            '{"v":2,"id":1,"kind":"top_k","dataset":"GrQc","node":1,"k":2}',
            '{"v":1,"kind":"single_pair","dataset":"GrQc","node_u":0,"node_v":1}',
            '{"v":2,"id":2,"kind":"list_datasets"}',
            '{"v":3,"id":3,"kind":"ping"}',                             # future
        ]
        exit_code, envelopes, _ = run_batch(capsys, lines)
        assert exit_code == 1  # the v3 line is rejected
        assert [e["id"] for e in envelopes] == [None, 1, None, 2, 3]
        assert [e["ok"] for e in envelopes] == [True, True, True, True, False]
        # v1 and v2 spellings of the same query answer identically.
        assert envelopes[0]["value"] == envelopes[1]["value"]
        assert envelopes[3]["value"] == {"datasets": ["GrQc"]}
        assert "protocol version" in envelopes[4]["error"]["message"]

    def test_shutdown_mid_batch_stops_processing(self, capsys):
        lines = [
            '{"kind":"ping"}',
            '{"v":2,"id":"bye","kind":"shutdown"}',
            '{"kind":"ping"}',
            '{"kind":"ping"}',
        ]
        exit_code, envelopes, err = run_batch(capsys, lines)
        assert exit_code == 0  # everything answered before the stop was ok
        assert [e["kind"] for e in envelopes] == ["ping", "shutdown"]
        assert envelopes[1]["id"] == "bye"
        assert "2/2 ok" in err

    def test_shutdown_mid_batch_with_workers(self, capsys):
        lines = ['{"kind":"ping"}'] * 3 + ['{"kind":"shutdown"}']
        exit_code, envelopes, _ = run_batch(capsys, lines, "--workers", "2")
        assert exit_code == 0
        assert [e["kind"] for e in envelopes] == ["ping"] * 3 + ["shutdown"]

    def test_close_dataset_with_queries_in_flight(self):
        """Concurrent closes interleaved with queries: every request gets a
        well-formed envelope and the service stays consistent."""
        service = fast_service()
        service.open_dataset("GrQc")
        errors: list = []
        barrier = threading.Barrier(6)

        def query_worker():
            barrier.wait()
            for node in range(10):
                result = service.execute(SingleSourceQuery("GrQc", node % 5))
                # Lazy re-open means closes never break queries...
                if not result.ok:
                    errors.append(result)

        def close_worker():
            barrier.wait()
            for _ in range(10):
                result = service.execute_control(CloseDatasetRequest("GrQc"))
                if not result.ok:
                    errors.append(result)

        threads = [threading.Thread(target=query_worker) for _ in range(4)] + [
            threading.Thread(target=close_worker) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # ...and the control plane still reports a coherent state.
        final = service.execute_control(ListDatasetsRequest())
        assert final.ok and set(final.value["datasets"]) <= {"GrQc"}

    def test_control_through_parallel_executor(self):
        """Control frames ride the executor like any other request, in
        order, without being deduplicated."""
        service = fast_service()
        with ParallelExecutor(service, workers=2) as executor:
            results = executor.run(
                [
                    {"kind": "open_dataset", "dataset": "GrQc"},
                    {"kind": "single_source", "dataset": "GrQc", "node": 1},
                    {"v": 2, "id": 9, "kind": "stats"},
                    {"kind": "close_dataset", "dataset": "GrQc"},
                    {"kind": "close_dataset", "dataset": "GrQc"},
                ]
            )
        assert [r.kind for r in results] == [
            "open_dataset", "single_source", "stats", "close_dataset",
            "close_dataset",
        ]
        assert all(r.ok for r in results)
        # Identical control requests are NOT deduplicated: the second close
        # really ran, found nothing open, and reported closed=False.
        assert results[3].value["closed"] in (True, False)
        assert [results[3].value["closed"], results[4].value["closed"]].count(
            True
        ) <= 1

    def test_garbage_ids_and_bodies_never_traceback(self, capsys):
        lines = [
            '{"id":{"nested":1},"kind":"ping"}',
            '{"v":"two","kind":"ping"}',
            '{"chunk_size":-5,"kind":"single_source","dataset":"GrQc","node":0}',
            "[]",
            "null",
            '"shutdown"',
        ]
        exit_code, envelopes, err = run_batch(capsys, lines)
        assert exit_code == 1
        assert len(envelopes) == len(lines)
        assert all(not e["ok"] for e in envelopes)
        assert all(e["error"]["code"] == "bad_request" for e in envelopes)
        assert "Traceback" not in err


class TestStatsControlMatchesShutdownDump:
    """Satellite: ``serve --stats`` is redundant-but-kept — the ``stats``
    control request returns the same snapshot on demand."""

    def test_in_flight_stats_equal_shutdown_dump(self, capsys):
        import sys

        lines = [
            '{"kind":"top_k","dataset":"GrQc","node":1,"k":3}',
            '{"kind":"single_pair","dataset":"GrQc","node_u":0,"node_v":1}',
            '{"v":2,"id":"s","kind":"stats"}',
        ]
        stdin = sys.stdin
        sys.stdin = io.StringIO("\n".join(lines) + "\n")
        try:
            exit_code = main(["serve", *FAST, "--stats"])
        finally:
            sys.stdin = stdin
        captured = capsys.readouterr()
        assert exit_code == 0
        frames = [json.loads(line) for line in captured.out.splitlines() if line]
        in_flight = next(f for f in frames if f.get("id") == "s")["value"]
        shutdown_dump = json.loads(captured.err[captured.err.index("{"):])
        assert in_flight == shutdown_dump
        assert in_flight["totals"]["total_queries"] == 2
