"""The service-overhead benchmark must produce a sane, JSON-able payload.

Timing ratios are hardware-dependent, so only structural properties and the
one robust ordering (cold backend queries dwarf the envelope cost) are
asserted here; the actual overhead numbers are the benchmark's output.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        import bench_service_overhead
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
    return bench_service_overhead


@pytest.fixture(scope="module")
def payload(bench_module):
    return bench_module.run_benchmark(
        dataset="GrQc", scale=0.05, epsilon=0.1, num_queries=60,
        distinct_sources=6, k=5, repeats=2, seed=0,
    )


class TestServiceOverheadBenchmark:
    def test_payload_is_json_serialisable(self, payload):
        decoded = json.loads(json.dumps(payload))
        assert decoded["benchmark"] == "service_overhead"
        assert set(decoded["cells"]) == {
            "single_pair_warm", "top_k_warm", "single_source_cold",
        }

    def test_every_cell_reports_both_paths(self, payload):
        for cell in payload["cells"].values():
            assert cell["direct_microseconds_per_query"] > 0.0
            assert cell["service_microseconds_per_query"] > 0.0

    def test_overheads_mirror_cells(self, payload):
        for name, cell in payload["cells"].items():
            assert payload["overheads"][name] == cell["overhead_fraction"]
            assert payload["meets_target"][name] == (
                cell["overhead_fraction"] < payload["target_fraction"]
            )

    def test_cold_queries_dwarf_the_envelope(self, payload):
        # A cold single-source computation costs hundreds of microseconds;
        # the envelope costs a few.  Even on noisy CI the cold overhead must
        # stay far below the warm single-pair overhead's scale.
        assert payload["cells"]["single_source_cold"][
            "direct_microseconds_per_query"
        ] > 10 * payload["cells"]["single_pair_warm"][
            "direct_microseconds_per_query"
        ]
