"""Service knobs behind multi-process serving: the per-process cache
budget and prebuilt-index reuse (``ServiceConfig.cache_budget_vectors`` /
``ServiceConfig.index_dir``)."""

from __future__ import annotations

import pytest

from repro.engine import BackendConfig
from repro.graphs.datasets import load_dataset
from repro.service import ServiceConfig, SimRankService
from repro.sling import SlingIndex, has_saved_index, save_index

SCALE, SEED = 0.05, 0


class TestCacheBudget:
    def make_service(self, budget):
        return SimRankService(
            ServiceConfig(
                scale=SCALE, seed=SEED, cache_size=128,
                cache_budget_vectors=budget,
            )
        )

    def capacity(self, service, name):
        return service._sessions[name]._cache_capacity

    def test_budget_divides_across_open_datasets(self):
        service = self.make_service(8)
        service.open_dataset("GrQc")
        assert self.capacity(service, "GrQc") == 8
        service.open_dataset("AS")
        assert self.capacity(service, "GrQc") == 4
        assert self.capacity(service, "AS") == 4
        service.close_dataset("AS")
        assert self.capacity(service, "GrQc") == 8  # reclaimed on close
        service.close_all()

    def test_budget_caps_engines_built_before_the_rebalance(self):
        service = self.make_service(4)
        session = service.open_dataset("GrQc")
        engine = session.engine()  # built at capacity 4
        service.open_dataset("AS")  # rebalance to 2 resizes the live engine
        assert engine._cache_size == 2
        service.close_all()

    def test_no_budget_keeps_plain_cache_size(self):
        service = self.make_service(None)
        service.open_dataset("GrQc")
        service.open_dataset("AS")
        assert self.capacity(service, "GrQc") == 128
        service.close_all()

    def test_describe_reports_the_budget(self):
        service = self.make_service(16)
        config = service.describe()["config"]
        assert config["cache_budget_vectors"] == 16
        assert config["index_dir"] is None
        service.close_all()


class TestPrebuiltIndexReuse:
    @pytest.fixture
    def index_root(self, tmp_path):
        graph = load_dataset("GrQc", scale=SCALE, seed=SEED)
        index = SlingIndex(graph, c=0.6, epsilon=0.1, seed=SEED).build()
        directory = tmp_path / "GrQc"
        save_index(index, directory)
        assert has_saved_index(directory)
        return tmp_path

    def service(self, index_dir, backend="sling-disk"):
        return SimRankService(
            ServiceConfig(
                scale=SCALE, seed=SEED, backend=backend,
                index_dir=str(index_dir) if index_dir is not None else None,
                backend_config=BackendConfig(epsilon=0.1, seed=SEED),
            )
        )

    def test_saved_index_is_attached_not_rebuilt(self, index_root):
        meta = (index_root / "GrQc" / "sling_meta.json").read_bytes()
        service = self.service(index_root)
        engine = service.open_dataset("GrQc").engine()
        assert engine.backend.name == "sling-disk"
        # Attaching must not have rewritten the saved index files.
        assert (index_root / "GrQc" / "sling_meta.json").read_bytes() == meta
        service.close_all()

    def test_answers_match_a_fresh_build(self, index_root):
        reused = self.service(index_root)
        fresh = self.service(None)
        try:
            source = 3
            assert reused.open_dataset("GrQc").engine().single_source(
                source
            ) == pytest.approx(
                fresh.open_dataset("GrQc").engine().single_source(source)
            )
        finally:
            reused.close_all()
            fresh.close_all()

    def test_missing_saved_index_falls_back_to_normal_build(self, tmp_path):
        service = self.service(tmp_path)  # empty root: nothing saved
        engine = service.open_dataset("GrQc").engine()
        assert engine.single_pair(0, 1) >= 0.0
        service.close_all()
