"""End-to-end deadlines, overload shedding, degradation, and retry policy.

The PR-10 robustness contract at the worker: ``deadline_ms`` on a v2
envelope is validated at decode (a failure envelope, never an exception),
becomes an absolute monotonic deadline that never crosses the wire, and an
expired request is shed with ``deadline_exceeded`` before any work runs.
Under pressure the executor sheds past ``max_pending`` with ``overloaded``
(health probes and shutdown exempt) and degrades exact ``single_source``
answers past ``degrade_pending``.  The client's :class:`RetryPolicy`
retries exactly the retryable codes with bounded exponential backoff.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import BackendConfig
from repro.exceptions import ParameterError
from repro.graphs import generators
from repro.service import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_OVERLOADED,
    ERROR_TIMEOUT,
    ERROR_UNAVAILABLE,
    RETRYABLE_ERROR_CODES,
    ParallelExecutor,
    PingRequest,
    QueryResult,
    RetryPolicy,
    ServiceConfig,
    SimRankService,
    SinglePairQuery,
    SingleSourceQuery,
)
from repro.service.wire import RequestEnvelope, decode_envelope

DATASET = "grid"


def make_service(**overrides) -> SimRankService:
    service = SimRankService(ServiceConfig(backend="power", **overrides))
    service.open_dataset(DATASET, graph=generators.small_world(16, 4, seed=3))
    return service


def wire_query(**extra) -> dict:
    return {
        "v": 2,
        "id": 7,
        "kind": "single_pair",
        "dataset": DATASET,
        "node_u": 0,
        "node_v": 1,
        **extra,
    }


class TestDeadlineDecode:
    def test_valid_deadline_becomes_absolute_monotonic(self):
        before = time.monotonic()
        envelope = decode_envelope(wire_query(deadline_ms=500))
        after = time.monotonic()
        assert isinstance(envelope.request, SinglePairQuery)
        assert envelope.deadline_ms == 500.0
        assert before + 0.5 <= envelope.deadline <= after + 0.5
        assert not envelope.expired()

    def test_absent_deadline_means_no_deadline(self):
        envelope = decode_envelope(wire_query())
        assert envelope.deadline_ms is None
        assert envelope.deadline is None
        assert not envelope.expired()

    @pytest.mark.parametrize(
        "bad", [True, False, "100", 0, -5, float("inf"), float("nan"), [100]]
    )
    def test_invalid_deadline_is_a_failure_envelope_not_an_exception(self, bad):
        envelope = decode_envelope(wire_query(deadline_ms=bad))
        assert isinstance(envelope.request, QueryResult)
        assert envelope.request.error.code == ERROR_BAD_REQUEST
        assert "deadline_ms" in envelope.request.error.message
        assert envelope.id == 7  # the reply still correlates

    def test_expired_is_inclusive_at_the_boundary(self):
        envelope = RequestEnvelope(
            request=SinglePairQuery(DATASET, node_u=0, node_v=1),
            deadline=100.0,
        )
        assert not envelope.expired(now=99.999)
        assert envelope.expired(now=100.0)
        assert envelope.expired(now=100.1)


class TestDeadlineShedding:
    def test_expired_request_is_shed_before_execution(self):
        service = make_service()
        envelope = RequestEnvelope(
            request=SinglePairQuery(DATASET, node_u=0, node_v=1),
            deadline=time.monotonic() - 1.0,
        )
        with ParallelExecutor(service, workers=1) as executor:
            result = executor.submit(envelope).result(timeout=10)
        assert not result.ok
        assert result.error.code == ERROR_DEADLINE_EXCEEDED
        assert result.kind == "single_pair"
        assert result.dataset == DATASET

    def test_wire_deadline_propagates_into_the_pool(self):
        service = make_service()
        envelope = decode_envelope(wire_query(deadline_ms=0.01))
        time.sleep(0.005)  # 10 microseconds: long expired by dispatch time
        with ParallelExecutor(service, workers=1) as executor:
            result = executor.submit(envelope).result(timeout=10)
        assert not result.ok
        assert result.error.code == ERROR_DEADLINE_EXCEEDED

    def test_live_deadline_still_answers(self):
        service = make_service()
        envelope = decode_envelope(wire_query(deadline_ms=60000))
        with ParallelExecutor(service, workers=1) as executor:
            result = executor.submit(envelope).result(timeout=10)
        assert result.ok, result.error


class _Gate:
    """Monkeypatch helper: the first ``execute`` blocks until released."""

    def __init__(self, service: SimRankService):
        self.started = threading.Event()
        self.release = threading.Event()
        self._orig = service.execute

    def __call__(self, query, **kwargs):
        self.started.set()
        assert self.release.wait(timeout=30)
        return self._orig(query, **kwargs)


class TestOverloadShedding:
    def test_submit_past_max_pending_sheds_with_overloaded(self, monkeypatch):
        service = make_service()
        gate = _Gate(service)
        monkeypatch.setattr(service, "execute", gate)
        query = SinglePairQuery(DATASET, node_u=0, node_v=1)
        with ParallelExecutor(service, workers=1, max_pending=1) as executor:
            first = executor.submit(query)
            assert gate.started.wait(timeout=10)
            shed = executor.submit(query).result(timeout=1)
            assert not shed.ok
            assert shed.error.code == ERROR_OVERLOADED
            assert "back off and retry" in shed.error.message
            assert shed.kind == "single_pair"
            assert shed.dataset == DATASET
            assert executor.pending == 1
            gate.release.set()
            assert first.result(timeout=10).ok
        assert executor.pending == 0

    def test_ping_and_shutdown_are_exempt_from_shedding(self, monkeypatch):
        service = make_service()
        gate = _Gate(service)
        monkeypatch.setattr(service, "execute", gate)
        with ParallelExecutor(service, workers=2, max_pending=1) as executor:
            held = executor.submit(SinglePairQuery(DATASET, node_u=0, node_v=1))
            assert gate.started.wait(timeout=10)
            pong = executor.submit(PingRequest()).result(timeout=10)
            assert pong.ok
            assert pong.value["pong"] is True
            gate.release.set()
            assert held.result(timeout=10).ok

    @pytest.mark.parametrize("field", ["max_pending", "degrade_pending"])
    def test_bounds_must_be_positive(self, field):
        service = make_service()
        with pytest.raises(ParameterError):
            ParallelExecutor(service, workers=1, **{field: 0})


class TestGracefulDegradation:
    def test_degrade_pending_alone_triggers_degraded_answers(self):
        # Regression: pending was only tracked when max_pending was set, so
        # degrade_pending on its own never fired.  With the threshold at 1,
        # every submitted request sees itself pending and degrades.
        seen: list = []
        results = {}
        query = SingleSourceQuery(DATASET, node=0)
        # Degradation reroutes to the cascade kernel, which only the SLING
        # backend exposes; two fresh services so the exact run cannot
        # pre-warm the cache the degraded run would then answer from.
        for label, kwargs in (("exact", {}), ("degraded", {"degrade_pending": 1})):
            service = SimRankService(
                ServiceConfig(
                    scale=0.05,
                    backend="sling",
                    backend_config=BackendConfig(epsilon=0.1, seed=0),
                )
            )
            service.open_dataset(
                DATASET, graph=generators.small_world(16, 4, seed=3)
            )
            orig = service.execute

            def spy(q, _orig=orig, **kw):
                seen.append(kw.get("degrade"))
                return _orig(q, **kw)

            service.execute = spy
            with ParallelExecutor(service, workers=1, **kwargs) as executor:
                results[label] = executor.submit(query).result(timeout=10)
        assert seen == [None, True]  # the kwarg only appears when degrading
        exact, degraded = results["exact"], results["degraded"]
        assert exact.ok and degraded.ok
        assert exact.degraded is False
        assert degraded.degraded is True
        assert degraded.cache_hit is None  # bypasses the engine cache
        # The cascade path answers within the backend's accuracy target —
        # the values stay sane, just not bitwise equal to the exact path.
        assert len(degraded.value) == len(exact.value)
        assert all(-1e-9 <= v <= 1.0 + 1e-9 for v in degraded.value)


class TestRetryPolicy:
    def failure(self, code: str) -> QueryResult:
        return QueryResult.failure(code, "boom")

    def test_delay_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        delays = [policy.delay(1) for _ in range(50)]
        assert all(0.1 <= d <= 0.15 for d in delays)
        again = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        assert [again.delay(1) for _ in range(50)] == delays

    def test_retries_exactly_the_retryable_codes(self):
        policy = RetryPolicy(max_attempts=3)
        assert RETRYABLE_ERROR_CODES == frozenset(
            {ERROR_UNAVAILABLE, ERROR_OVERLOADED, ERROR_TIMEOUT}
        )
        for code in RETRYABLE_ERROR_CODES:
            assert policy.should_retry(self.failure(code), attempt=1)
        assert not policy.should_retry(
            self.failure(ERROR_DEADLINE_EXCEEDED), attempt=1
        )
        assert not policy.should_retry(self.failure(ERROR_BAD_REQUEST), attempt=1)

    def test_attempt_budget_and_success_stop_retrying(self):
        policy = RetryPolicy(max_attempts=3)
        failure = self.failure(ERROR_UNAVAILABLE)
        assert policy.should_retry(failure, attempt=2)
        assert not policy.should_retry(failure, attempt=3)
        ok = QueryResult.success(
            kind="ping", dataset=None, value={"pong": True}, backend=None,
            plan=None, seconds=0.0, cache_hit=None,
        )
        assert not policy.should_retry(ok, attempt=1)

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
