"""Mutation WAL torture tests: durability, corruption, dedup, disk-full.

The WAL's contract is *an ack on the wire implies the record is on disk*
and *recovery replays exactly the acked history*.  These tests attack that
contract directly: torn tails, flipped checksum bytes, duplicate
``mutation_id`` retries, a crash between the checkpoint tmp-write and the
rename, injected ``ENOSPC`` mid-append, and — the regression that
motivated effective-delta logging — a no-op add of a base edge followed by
a real remove and a checkpoint fold.
"""

from __future__ import annotations

import errno
import os

import pytest

from repro.engine import BackendConfig
from repro.graphs import generators
from repro.service import (
    ERROR_UNAVAILABLE,
    FAIL_AFTER_ENV,
    MutateRequest,
    MutationWAL,
    ServiceConfig,
    SimRankService,
    SingleSourceQuery,
)

DATASET = "toy"


def toy_graph():
    return generators.two_level_community(3, 10, seed=7)


def make_service(wal_dir) -> SimRankService:
    config = ServiceConfig(
        scale=0.05,
        backend="sling",
        backend_config=BackendConfig(epsilon=0.1, seed=0),
        wal_dir=str(wal_dir),
    )
    service = SimRankService(config)
    service.open_dataset(DATASET, graph=toy_graph())
    return service


def ack(version: int) -> dict:
    return {"dataset": DATASET, "index_version": version, "backend": "sling"}


def append(wal: MutationWAL, *, add=(), remove=(), refreeze=False,
           mutation_id=None, version=1) -> None:
    wal.append(
        add=add, remove=remove, refreeze=refreeze,
        mutation_id=mutation_id, ack=ack(version),
    )


class TestRoundTrip:
    def test_records_and_acks_survive_reopen(self, tmp_path):
        with MutationWAL(tmp_path, DATASET) as wal:
            append(wal, add=[(0, 25)], mutation_id="m-1", version=1)
            append(wal, remove=[(0, 2)], mutation_id="m-2", version=2)
        with MutationWAL(tmp_path, DATASET) as wal:
            assert len(wal.records) == 2
            assert wal.records[0]["add"] == [[0, 25]]
            assert wal.records[1]["remove"] == [[0, 2]]
            assert wal.known("m-1") and wal.known("m-2")
            assert not wal.known("m-3")
            assert wal.recorded_ack("m-1") == ack(1)
            assert wal.truncated_bytes == 0
            assert wal.has_history()

    def test_fresh_log_has_no_history(self, tmp_path):
        with MutationWAL(tmp_path, DATASET) as wal:
            assert not wal.has_history()
            assert wal.stats()["records"] == 0
            assert wal.stats()["checkpoint_version"] is None

    def test_dataset_names_with_slashes_stay_in_directory(self, tmp_path):
        with MutationWAL(tmp_path, "a/b") as wal:
            append(wal, add=[(0, 1)], mutation_id="m-1")
        assert (tmp_path / "a_b.wal").exists()
        assert not (tmp_path / "a").exists()


class TestCorruption:
    def test_torn_tail_is_truncated_and_appends_resume(self, tmp_path):
        with MutationWAL(tmp_path, DATASET) as wal:
            append(wal, add=[(0, 25)], mutation_id="m-1")
            append(wal, add=[(1, 25)], mutation_id="m-2")
        log = tmp_path / f"{DATASET}.wal"
        good = log.stat().st_size
        # A crash mid-append: the header promises more bytes than exist.
        with open(log, "ab") as fh:
            fh.write(b"\x00\x00\x00\x99AB")
        with MutationWAL(tmp_path, DATASET) as wal:
            assert len(wal.records) == 2
            assert wal.truncated_bytes == 6
            assert log.stat().st_size == good
            append(wal, add=[(2, 25)], mutation_id="m-3")
        with MutationWAL(tmp_path, DATASET) as wal:
            assert [r.get("mutation_id") for r in wal.records] == [
                "m-1", "m-2", "m-3",
            ]
            assert wal.truncated_bytes == 0

    def test_flipped_checksum_byte_stops_replay_at_last_intact_record(
        self, tmp_path
    ):
        with MutationWAL(tmp_path, DATASET) as wal:
            append(wal, add=[(0, 25)], mutation_id="m-1")
            append(wal, add=[(1, 25)], mutation_id="m-2")
            append(wal, add=[(2, 25)], mutation_id="m-3")
        log = tmp_path / f"{DATASET}.wal"
        data = bytearray(log.read_bytes())
        # Locate the second record's payload and flip one byte in it.
        import struct

        length1 = struct.unpack_from(">I", data, 0)[0]
        second_payload = 8 + length1 + 8
        data[second_payload] ^= 0xFF
        log.write_bytes(bytes(data))
        with MutationWAL(tmp_path, DATASET) as wal:
            # Stop-at-first-corruption: m-3 was intact but follows the
            # corrupt record, so it is (correctly, conservatively) dropped.
            assert [r.get("mutation_id") for r in wal.records] == ["m-1"]
            assert wal.truncated_bytes > 0
            assert not wal.known("m-2") and not wal.known("m-3")
        assert log.stat().st_size == 8 + length1

    def test_garbage_prefix_yields_empty_log(self, tmp_path):
        log = tmp_path / f"{DATASET}.wal"
        log.write_bytes(os.urandom(64))
        with MutationWAL(tmp_path, DATASET) as wal:
            assert wal.records == []
            assert wal.truncated_bytes == 64
        assert log.stat().st_size == 0


class TestCheckpoint:
    def test_fold_truncates_log_and_keeps_dedup_ids(self, tmp_path):
        with MutationWAL(tmp_path, DATASET) as wal:
            append(wal, add=[(0, 25)], mutation_id="m-1")
            append(wal, add=[(1, 25)], mutation_id="m-2", refreeze=True)
            wal.checkpoint(version=2)
            assert wal.records == []
            assert wal.stats()["bytes"] == 0
            assert wal.stats()["checkpoint_version"] == 2
            # Dedup outlives the fold; the full ack does not.
            assert wal.known("m-1") and wal.known("m-2")
            assert wal.recorded_ack("m-1") is None
        with MutationWAL(tmp_path, DATASET) as wal:
            assert wal.has_history()
            payload = wal.checkpoint_payload
            assert payload["added"] == [[0, 25], [1, 25]]
            assert payload["removed"] == []
            assert sorted(payload["mutation_ids"]) == ["m-1", "m-2"]

    def test_net_delta_cancellation(self, tmp_path):
        with MutationWAL(tmp_path, DATASET) as wal:
            append(wal, add=[(0, 25)])
            append(wal, remove=[(0, 25)])
            append(wal, remove=[(0, 2)])
            append(wal, add=[(0, 2)])
            append(wal, add=[(3, 25)])
            added, removed = wal.net_delta()
            assert added == [[3, 25]]
            assert removed == []

    def test_net_delta_cancels_across_a_checkpoint(self, tmp_path):
        with MutationWAL(tmp_path, DATASET) as wal:
            append(wal, add=[(5, 25)], mutation_id="m-1")
            wal.checkpoint(version=1)
            append(wal, remove=[(5, 25)], mutation_id="m-2")
            assert wal.net_delta() == ([], [])

    def test_stale_tmp_from_interrupted_checkpoint_is_harmless(self, tmp_path):
        with MutationWAL(tmp_path, DATASET) as wal:
            append(wal, add=[(0, 25)], mutation_id="m-1")
            # A crash after the tmp write but before os.replace leaves this
            # file behind; it must neither be loaded nor block the next fold.
            stale = wal.checkpoint_path.with_suffix(".ckpt.json.tmp")
            stale.write_text("{ not json", encoding="utf-8")
        with MutationWAL(tmp_path, DATASET) as wal:
            assert len(wal.records) == 1
            assert wal.checkpoint_payload is None
            wal.checkpoint(version=1)
        with MutationWAL(tmp_path, DATASET) as wal:
            assert wal.checkpoint_payload["version"] == 1
            assert wal.known("m-1")


class TestDiskFull:
    def test_append_raises_enospc_when_armed(self, tmp_path, monkeypatch):
        with MutationWAL(tmp_path, DATASET) as wal:
            monkeypatch.setenv(FAIL_AFTER_ENV, "1")
            with pytest.raises(OSError) as excinfo:
                append(wal, add=[(0, 25)], mutation_id="m-1")
            assert excinfo.value.errno == errno.ENOSPC
            assert wal.records == []
            assert not wal.known("m-1")
            monkeypatch.delenv(FAIL_AFTER_ENV)
            append(wal, add=[(0, 25)], mutation_id="m-1")
            assert wal.known("m-1")


class TestServiceDurability:
    """The WAL as wired through ``ServiceConfig(wal_dir=...)``."""

    def probe(self, service: SimRankService, node: int = 0) -> list:
        result = service.execute(SingleSourceQuery(DATASET, node=node))
        assert result.ok
        return list(result.value)

    def test_acked_mutation_survives_restart(self, tmp_path):
        service = make_service(tmp_path)
        result = service.execute_control(
            MutateRequest(dataset=DATASET, add=[(0, 25)], mutation_id="m-1")
        )
        assert result.ok
        live = self.probe(service)
        assert (tmp_path / f"{DATASET}.wal").stat().st_size > 0

        # A fresh process opens the same dataset over the same base graph;
        # recovery must replay the acked delta before the first answer.
        recovered = make_service(tmp_path)
        session = recovered.open_dataset(DATASET)
        assert session.graph.has_edge(0, 25)
        assert self.probe(recovered) == pytest.approx(live, abs=1e-6)

    def test_duplicate_mutation_id_applies_once(self, tmp_path):
        service = make_service(tmp_path)
        request = MutateRequest(
            dataset=DATASET, add=[(0, 25)], mutation_id="m-dup"
        )
        first = service.execute_control(request)
        assert first.ok
        assert "deduplicated" not in first.value
        second = service.execute_control(request)
        assert second.ok
        assert second.value["deduplicated"] is True
        # Applied exactly once: the version did not advance again.
        assert second.value["index_version"] == first.value["index_version"]
        assert second.index_version == first.index_version

    def test_disk_full_rolls_back_and_same_id_retry_lands(
        self, tmp_path, monkeypatch
    ):
        service = make_service(tmp_path)
        assert service.execute_control(
            MutateRequest(dataset=DATASET, add=[(0, 25)], mutation_id="df-1")
        ).ok
        baseline = self.probe(service)

        wal_bytes = service.wal_for(DATASET).stats()["bytes"]
        monkeypatch.setenv(FAIL_AFTER_ENV, str(wal_bytes))
        failed = service.execute_control(
            MutateRequest(dataset=DATASET, add=[(1, 26)], mutation_id="df-2")
        )
        assert not failed.ok
        assert failed.error.code == ERROR_UNAVAILABLE
        # The ack never outran the log: the apply was rolled back, reads
        # still answer the pre-failure state.
        session = service.open_dataset(DATASET)
        assert not session.graph.has_edge(1, 26)
        assert self.probe(service) == pytest.approx(baseline, abs=1e-6)

        monkeypatch.delenv(FAIL_AFTER_ENV)
        retried = service.execute_control(
            MutateRequest(dataset=DATASET, add=[(1, 26)], mutation_id="df-2")
        )
        assert retried.ok
        # The first attempt was never logged, so this is a real apply, not
        # a dedup answer.
        assert retried.value.get("deduplicated") is not True

        recovered = make_service(tmp_path)
        session = recovered.open_dataset(DATASET)
        assert session.graph.has_edge(0, 25)
        assert session.graph.has_edge(1, 26)

    def test_noop_add_does_not_cancel_a_real_remove_across_checkpoint(
        self, tmp_path
    ):
        """Regression: effective-delta logging.

        A ``mutate`` that adds an edge the base graph already has is a
        no-op — logging the *requested* delta would make ``net_delta``'s
        cancellation wrongly erase a later real remove of that edge, so
        the checkpoint fold would resurrect it on recovery.
        """
        base_edge = (0, 2)
        assert toy_graph().has_edge(*base_edge)

        service = make_service(tmp_path)
        assert service.execute_control(
            MutateRequest(dataset=DATASET, add=[base_edge], mutation_id="n-1")
        ).ok
        assert service.execute_control(
            MutateRequest(dataset=DATASET, remove=[base_edge], mutation_id="n-2")
        ).ok
        assert service.execute_control(
            MutateRequest(dataset=DATASET, refreeze=True, mutation_id="n-3")
        ).ok
        live = self.probe(service)

        recovered = make_service(tmp_path)
        session = recovered.open_dataset(DATASET)
        assert not session.graph.has_edge(*base_edge)
        assert self.probe(recovered) == pytest.approx(live, abs=1e-6)
