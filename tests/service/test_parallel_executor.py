"""The :class:`ParallelExecutor` contract and the service-level stress tests.

Covers the three guarantees the executor makes — deterministic ordered
output, per-request error envelopes that never kill the pool, and values
identical to the sequential path for any worker count — plus the
service-layer concurrency stress test (8 threads on one session) and the
Monte-Carlo determinism requirement (same seed ⇒ identical results across
runs and across worker counts).
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ParameterError
from repro.graphs import generators
from repro.service import (
    ParallelExecutor,
    ServiceConfig,
    SimRankService,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
)

DATASET = "grid"


def make_service(backend: str = "power", **overrides) -> SimRankService:
    config = ServiceConfig(
        backend=backend,
        cache_size=overrides.pop("cache_size", 64),
        **overrides,
    )
    service = SimRankService(config)
    graph = generators.two_level_community(3, 11, seed=13)
    service.open_dataset(DATASET, graph=graph)
    return service


def mixed_queries(n: int, count: int = 60) -> list:
    queries = []
    for i in range(count):
        node = i % n
        if i % 3 == 0:
            queries.append(TopKQuery(DATASET, node=node, k=5))
        elif i % 3 == 1:
            queries.append(SinglePairQuery(DATASET, node_u=node, node_v=(node + 2) % n))
        else:
            queries.append(SingleSourceQuery(DATASET, node=node))
    return queries


def essence(result) -> tuple:
    """The deterministic part of an envelope (latency and cache-hit flags
    legitimately vary between runs and worker counts)."""
    error = (result.error.code, result.error.message) if result.error else None
    return (result.ok, result.kind, result.dataset, result.backend, result.value, error)


class TestOrderedOutput:
    def test_results_align_with_requests_for_any_worker_count(self):
        service = make_service()
        n = service.open_dataset(DATASET).num_nodes
        queries = mixed_queries(n)
        sequential = [essence(service.execute(query)) for query in queries]
        for workers in (1, 2, 4, 8):
            with ParallelExecutor(service, workers=workers) as executor:
                results = executor.run(queries)
            assert [essence(result) for result in results] == sequential, workers

    def test_empty_batch(self):
        service = make_service()
        with ParallelExecutor(service, workers=4) as executor:
            assert executor.run([]) == []

    def test_wire_payloads_and_typed_queries_mix(self):
        service = make_service()
        requests = [
            TopKQuery(DATASET, node=1, k=3),
            {"kind": "single_pair", "dataset": DATASET, "node_u": 0, "node_v": 2},
        ]
        with ParallelExecutor(service, workers=2) as executor:
            results = executor.run(requests)
        assert [result.ok for result in results] == [True, True]
        assert results[0].kind == "top_k"
        assert results[1].kind == "single_pair"


class TestErrorIsolation:
    def test_failures_stay_in_their_slots(self):
        service = make_service()
        n = service.open_dataset(DATASET).num_nodes
        requests = [
            TopKQuery(DATASET, node=0, k=3),
            {"kind": "unknown_kind"},
            TopKQuery(DATASET, node=10 * n, k=3),
            {"kind": "top_k", "dataset": "no-such-dataset", "node": 0, "k": 3},
            "not even a dict",
            TopKQuery(DATASET, node=1, k=3),
        ]
        with ParallelExecutor(service, workers=3) as executor:
            results = executor.run(requests)
        codes = [result.error.code if result.error else None for result in results]
        assert codes == [
            None,
            "bad_request",
            "node_out_of_range",
            "unknown_dataset",
            "bad_request",
            None,
        ]
        assert results[0].ok and results[5].ok

    def test_run_lines_turns_bad_json_into_envelopes(self):
        service = make_service()
        lines = [
            '{"kind": "top_k", "dataset": "%s", "node": 2, "k": 3}' % DATASET,
            "",  # blank lines are skipped, not answered
            "{not json",
            '{"kind": "single_pair", "dataset": "%s", "node_u": 0, "node_v": 1}'
            % DATASET,
        ]
        with ParallelExecutor(service, workers=2) as executor:
            results = executor.run_lines(lines)
        assert len(results) == 3  # the blank line produced nothing
        assert results[0].ok
        assert not results[1].ok and results[1].error.code == "bad_request"
        assert results[2].ok

    def test_run_stream_windows_preserve_order_and_envelopes(self):
        service = make_service()
        n = service.open_dataset(DATASET).num_nodes
        lines = [
            '{"kind": "top_k", "dataset": "%s", "node": %d, "k": 3}'
            % (DATASET, i % n)
            for i in range(17)
        ]
        lines.insert(5, "{bad json")
        lines.insert(9, "   ")  # skipped, not answered
        with ParallelExecutor(service, workers=2) as executor:
            whole = executor.run_lines(lines)
            windowed = list(executor.run_stream(iter(lines), window=4))
        assert [essence(result) for result in windowed] == [
            essence(result) for result in whole
        ]
        assert len(windowed) == 18  # 17 requests + 1 bad line, no blank
        with ParallelExecutor(service, workers=2) as executor:
            with pytest.raises(ParameterError):
                list(executor.run_stream(lines, window=0))

    def test_closed_executor_rejects_work(self):
        service = make_service()
        executor = ParallelExecutor(service, workers=2)
        executor.close()
        with pytest.raises(ParameterError):
            executor.submit(TopKQuery(DATASET, node=0, k=3))
        with pytest.raises(ParameterError):
            executor.run([TopKQuery(DATASET, node=0, k=3)])
        # The inline path (workers=1 / single chunk) must honour the same
        # contract instead of quietly executing on a closed executor.
        single = ParallelExecutor(service, workers=1)
        single.close()
        with pytest.raises(ParameterError):
            single.run([TopKQuery(DATASET, node=0, k=3)])


class TestDeduplication:
    def test_duplicate_queries_share_one_answer(self):
        service = make_service()
        queries = [TopKQuery(DATASET, node=3, k=4) for _ in range(32)]
        with ParallelExecutor(service, workers=1) as executor:
            results = executor.run(queries)
        # One worker means one batch-wide chunk, so every duplicate shares
        # the single envelope object; with more workers sharing is per chunk.
        assert len({id(result) for result in results}) == 1
        assert len({tuple((e["node"], e["rank"]) for e in r.value) for r in results}) == 1

    def test_wire_payload_duplicates_share_one_answer_too(self):
        """Regression: dedupe must apply on the JSONL path (the only path
        the CLI uses), not just to typed Query objects."""
        service = make_service()
        payloads = [
            {"kind": "top_k", "dataset": DATASET, "node": 3, "k": 4}
            for _ in range(32)
        ]
        with ParallelExecutor(service, workers=1) as executor:
            results = executor.run(payloads)
        assert len({id(result) for result in results}) < len(results)
        assert all(result.ok for result in results)

    def test_dedupe_does_not_leak_across_backends(self):
        service = make_service()
        queries = [SinglePairQuery(DATASET, node_u=0, node_v=2)] * 4
        with ParallelExecutor(service, workers=1) as executor:
            auto = executor.run(queries)
        with ParallelExecutor(service, workers=1, backend="naive") as executor:
            pinned = executor.run(queries)
        assert {result.backend for result in auto} == {"power"}
        assert {result.backend for result in pinned} == {"naive"}


class TestStreaming:
    def test_submit_preserves_caller_order(self):
        service = make_service()
        n = service.open_dataset(DATASET).num_nodes
        queries = mixed_queries(n, count=40)
        sequential = [essence(service.execute(query)) for query in queries]
        with ParallelExecutor(service, workers=4) as executor:
            futures = [executor.submit(query) for query in queries]
            results = [future.result() for future in futures]
        assert [essence(result) for result in results] == sequential

    def test_submit_line_handles_bad_json(self):
        service = make_service()
        with ParallelExecutor(service, workers=2) as executor:
            future = executor.submit_line("{broken")
            result = future.result()
        assert not result.ok and result.error.code == "bad_request"


class TestServiceStress:
    """Satellite: hammer one service session from 8 threads, 50 iterations."""

    NUM_THREADS = 8
    ITERATIONS = 50

    def test_eight_threads_match_sequential_with_consistent_counters(self):
        service = make_service(cache_size=128)
        session = service.open_dataset(DATASET)
        n = session.num_nodes
        queries = mixed_queries(n, count=33)
        expected = [essence(service.execute(query)) for query in queries]
        engine = session.engine()
        for node in range(n):  # fully warm so counter arithmetic is exact
            engine.single_source(node)
        engine.reset_statistics()

        for iteration in range(self.ITERATIONS):
            observed: list[list] = [None] * self.NUM_THREADS
            barrier = threading.Barrier(self.NUM_THREADS)

            def worker(slot: int) -> None:
                barrier.wait()
                observed[slot] = [essence(service.execute(q)) for q in queries]

            threads = [
                threading.Thread(target=worker, args=(slot,))
                for slot in range(self.NUM_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            for slot in range(self.NUM_THREADS):
                assert observed[slot] == expected, f"iteration {iteration}"
            stats = engine.statistics_snapshot()
            total = (iteration + 1) * self.NUM_THREADS * len(queries)
            assert stats.total_queries == total, f"iteration {iteration}"
            # Warm cache, capacity > n: every query is exactly one lookup
            # and every lookup hits; a single lost update breaks this.
            assert stats.cache_hits == total, f"iteration {iteration}"
            assert stats.cache_misses == 0
            assert stats.cache_evictions == 0

    def test_concurrent_first_touch_builds_one_engine(self):
        """Concurrent first queries on a fresh session must race into one
        engine build, not several."""
        for _ in range(5):
            service = make_service()
            session = service.open_dataset(DATASET)
            barrier = threading.Barrier(self.NUM_THREADS)
            engines = [None] * self.NUM_THREADS

            def worker(slot: int) -> None:
                barrier.wait()
                engines[slot] = session.engine()

            threads = [
                threading.Thread(target=worker, args=(slot,))
                for slot in range(self.NUM_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len({id(engine) for engine in engines}) == 1
            assert session.backends() == ["power"]


class TestMonteCarloDeterminism:
    """Satellite: same seed ⇒ identical Monte-Carlo results across runs and
    across worker counts."""

    BACKENDS = ("montecarlo", "montecarlo_sqrtc")

    def run_workload(self, backend: str, workers: int) -> list:
        service = make_service(backend=backend, seed=7)
        n = service.open_dataset(DATASET).num_nodes
        queries = mixed_queries(n, count=45)
        with ParallelExecutor(service, workers=workers) as executor:
            return [essence(result) for result in executor.run(queries)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_same_seed_same_results_across_runs(self, backend):
        assert self.run_workload(backend, workers=1) == self.run_workload(
            backend, workers=1
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_same_seed_same_results_across_worker_counts(self, backend):
        assert self.run_workload(backend, workers=1) == self.run_workload(
            backend, workers=4
        )

    def test_sling_is_deterministic_across_worker_counts_too(self):
        assert self.run_workload("sling", workers=1) == self.run_workload(
            "sling", workers=4
        )
