"""Validation and wire round-trips for the typed query dataclasses."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError, WireFormatError
from repro.service import (
    QUERY_KINDS,
    AllPairsQuery,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
    query_from_wire,
)

ALL_QUERIES = [
    SinglePairQuery("GrQc", 3, 5),
    SingleSourceQuery("GrQc", 3),
    TopKQuery("GrQc", node=3, k=5),
    AllPairsQuery("GrQc"),
]


class TestValidation:
    def test_kinds_registry_covers_every_query(self):
        assert set(QUERY_KINDS) == {
            "single_pair", "single_source", "top_k", "all_pairs",
        }

    @pytest.mark.parametrize("dataset", ["", "   ", None, 7])
    def test_rejects_bad_dataset(self, dataset):
        with pytest.raises(ParameterError):
            SingleSourceQuery(dataset, 0)

    @pytest.mark.parametrize("node", [-1, 1.5, "3", None, True])
    def test_rejects_bad_nodes(self, node):
        with pytest.raises(ParameterError):
            SingleSourceQuery("GrQc", node)
        with pytest.raises(ParameterError):
            SinglePairQuery("GrQc", node, 0)
        with pytest.raises(ParameterError):
            SinglePairQuery("GrQc", 0, node)

    @pytest.mark.parametrize("k", [0, -3, 2.5, "5", None, True])
    def test_rejects_bad_k(self, k):
        with pytest.raises(ParameterError):
            TopKQuery("GrQc", node=0, k=k)

    def test_queries_are_frozen(self):
        query = TopKQuery("GrQc", node=3, k=5)
        with pytest.raises(AttributeError):
            query.k = 10

    def test_queries_are_hashable_values(self):
        assert TopKQuery("GrQc", node=3, k=5) == TopKQuery("GrQc", node=3, k=5)
        assert len({SingleSourceQuery("GrQc", 1), SingleSourceQuery("GrQc", 1)}) == 1


class TestWireRoundTrip:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.kind)
    def test_round_trip_every_kind(self, query):
        assert query_from_wire(query.to_wire()) == query

    def test_to_wire_carries_kind_and_fields(self):
        payload = TopKQuery("GrQc", node=3, k=5).to_wire()
        assert payload == {"kind": "top_k", "dataset": "GrQc", "node": 3, "k": 5}

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            "top_k",
            {},
            {"kind": "nope", "dataset": "GrQc"},
            {"dataset": "GrQc", "node": 3},  # no kind
            {"kind": "top_k", "dataset": "GrQc", "node": 3},  # missing k
            {"kind": "top_k", "dataset": "GrQc", "node": 3, "k": 5, "x": 1},
            {"kind": "all_pairs"},  # missing dataset
        ],
    )
    def test_malformed_payloads_raise_wire_errors(self, payload):
        with pytest.raises(WireFormatError):
            query_from_wire(payload)

    def test_field_value_violations_raise_parameter_errors(self):
        with pytest.raises(ParameterError):
            query_from_wire({"kind": "top_k", "dataset": "GrQc", "node": 3, "k": 0})
        with pytest.raises(ParameterError):
            query_from_wire(
                {"kind": "single_pair", "dataset": "GrQc", "node_u": -1, "node_v": 0}
            )
