"""The parallel-batch benchmark must produce a sane, JSON-able payload.

Speedups are hardware-dependent (on a single-core host all of the gain is
batch-level deduplication; worker parallelism only adds on multi-core), so
the assertions here are structural plus the one machine-independent
guarantee: every worker count returns exactly the sequential values.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture(scope="module")
def bench_module():
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        import bench_parallel_batch
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
    return bench_parallel_batch


@pytest.fixture(scope="module")
def payload(bench_module):
    return bench_module.run_benchmark(
        dataset="GrQc", scale=0.05, epsilon=0.1, num_queries=400,
        hot_sources=8, k=5, worker_counts=(1, 2), repeats=2, seed=0,
    )


class TestParallelBatchBenchmark:
    def test_payload_is_json_serialisable(self, payload):
        decoded = json.loads(json.dumps(payload))
        assert decoded["benchmark"] == "parallel_batch"

    def test_cells_cover_requested_worker_counts(self, payload):
        assert set(payload["cells"]) == {"workers_1", "workers_2"}
        for cell in payload["cells"].values():
            assert cell["seconds"] > 0.0
            assert cell["queries_per_second"] > 0.0
            assert cell["speedup_vs_sequential"] > 0.0

    def test_values_identical_across_worker_counts(self, payload):
        """The executor's deterministic-output contract, measured end to end."""
        assert payload["identical_values"] is True

    def test_workload_is_skewed_and_warm(self, payload):
        assert payload["distinct_sources"] <= 8
        assert payload["duplicate_fraction"] > 0.9

    def test_speedups_mirror_cells(self, payload):
        assert payload["speedups"] == {
            name: cell["speedup_vs_sequential"]
            for name, cell in payload["cells"].items()
        }
