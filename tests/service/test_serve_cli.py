"""End-to-end tests for the long-lived ``repro serve`` JSONL loop."""

from __future__ import annotations

import io
import json

from repro.cli import main

#: Fast settings shared by every serve invocation.
FAST = ["--scale", "0.05", "--epsilon", "0.1", "--mc-walks", "30"]


def run_serve(capsys, lines, *extra):
    """Run ``repro serve`` over a stdin payload; return (exit, envelopes, err).

    ``envelopes`` holds one entry per request, exactly as in protocol v1:
    protocol frames (the opening ``hello`` handshake, ``partial``/``done``
    streaming frames) carry a ``frame`` discriminator and are filtered out
    here; tests that need them use :func:`run_serve_frames`.
    """
    exit_code, frames, err = run_serve_frames(capsys, lines, *extra)
    return exit_code, [f for f in frames if "frame" not in f], err


def run_serve_frames(capsys, lines, *extra):
    """Like :func:`run_serve` but returning every output frame unfiltered."""
    import sys

    stdin = sys.stdin
    sys.stdin = io.StringIO("\n".join(lines) + "\n")
    try:
        exit_code = main(["serve", *FAST, *extra])
    finally:
        sys.stdin = stdin
    captured = capsys.readouterr()
    frames = [json.loads(line) for line in captured.out.splitlines() if line]
    return exit_code, frames, captured.err


REQUESTS = [
    '{"kind":"top_k","dataset":"GrQc","node":3,"k":5}',
    '{"kind":"single_pair","dataset":"GrQc","node_u":1,"node_v":2}',
    '{"kind":"single_source","dataset":"GrQc","node":0}',
]


class TestServeLoop:
    def test_happy_path_in_arrival_order(self, capsys):
        exit_code, envelopes, err = run_serve(capsys, REQUESTS)
        assert exit_code == 0
        assert [envelope["kind"] for envelope in envelopes] == [
            "top_k",
            "single_pair",
            "single_source",
        ]
        assert all(envelope["ok"] for envelope in envelopes)
        assert "3/3 ok" in err and "workers: 1" in err

    def test_client_errors_become_envelopes_not_exit_codes(self, capsys):
        exit_code, envelopes, err = run_serve(
            capsys,
            [
                REQUESTS[0],
                "definitely not json",
                '{"kind":"top_k","dataset":"GrQc","node":999999,"k":3}',
                REQUESTS[1],
            ],
        )
        # A serving loop must not fail because a client sent a bad request.
        assert exit_code == 0
        assert [envelope["ok"] for envelope in envelopes] == [True, False, False, True]
        assert envelopes[1]["error"]["code"] == "bad_request"
        assert envelopes[2]["error"]["code"] == "node_out_of_range"
        assert "2/4 ok, 2 error(s)" in err

    def test_blank_lines_are_skipped(self, capsys):
        exit_code, envelopes, _ = run_serve(
            capsys, [REQUESTS[0], "", "   ", REQUESTS[1]]
        )
        assert exit_code == 0
        assert len(envelopes) == 2

    def test_sessions_interleave_and_stay_open(self, capsys):
        """Requests for several datasets interleave on one warm service."""
        lines = [
            '{"kind":"top_k","dataset":"GrQc","node":1,"k":3}',
            '{"kind":"top_k","dataset":"AS","node":1,"k":3}',
            '{"kind":"top_k","dataset":"GrQc","node":2,"k":3}',
            '{"kind":"single_pair","dataset":"AS","node_u":0,"node_v":1}',
        ]
        exit_code, envelopes, err = run_serve(capsys, lines)
        assert exit_code == 0
        assert [envelope["dataset"] for envelope in envelopes] == [
            "GrQc",
            "AS",
            "GrQc",
            "AS",
        ]
        # Both sessions were still open at shutdown (opened exactly once).
        assert "datasets: GrQc, AS" in err

    def test_workers_preserve_order_and_values(self, capsys):
        lines = [
            json.dumps({"kind": "top_k", "dataset": "GrQc", "node": n % 7, "k": 4})
            for n in range(24)
        ]
        exit_sequential, sequential, _ = run_serve(capsys, lines)
        exit_parallel, parallel, err = run_serve(capsys, lines, "--workers", "4")
        assert exit_sequential == exit_parallel == 0

        def strip(envelope):
            return {
                key: value
                for key, value in envelope.items()
                if key not in ("seconds", "cache_hit")
            }

        assert [strip(e) for e in parallel] == [strip(e) for e in sequential]
        assert "workers: 4" in err

    def test_broken_output_pipe_shuts_down_instead_of_hanging(self, capsys):
        """Regression: a dying writer (client closed stdout, as in
        ``repro serve | head -1``) must shut the loop down with a nonzero
        exit, not leave the reader blocked forever on a full queue."""
        import sys

        lines = [
            json.dumps({"kind": "top_k", "dataset": "GrQc", "node": n % 5, "k": 3})
            for n in range(40)  # far more than the workers*4 in-flight window
        ]

        class _BrokenOut:
            def write(self, text):
                raise BrokenPipeError("client went away")

            def flush(self):
                pass

        stdin, stdout = sys.stdin, sys.stdout
        sys.stdin = io.StringIO("\n".join(lines) + "\n")
        sys.stdout = _BrokenOut()
        try:
            exit_code = main(["serve", *FAST, "--workers", "2"])
        finally:
            sys.stdin, sys.stdout = stdin, stdout
        assert exit_code == 1
        err = capsys.readouterr().err
        assert "output stream failed" in err
        assert "BrokenPipeError" in err

    def test_stats_dump_on_shutdown(self, capsys):
        exit_code, _, err = run_serve(capsys, REQUESTS, "--stats")
        assert exit_code == 0
        stats = json.loads(err[err.index("{"):])
        assert "GrQc" in stats["datasets"]
        assert stats["totals"]["total_queries"] == 3
