"""Router restart semantics with and without a WAL behind the workers.

Satellite regression for PR 10's durability end state: after a worker
crash, a *non-durable* router must stamp every replayed-but-mutated
dataset ``recovered_without_mutations`` in merged stats (the replay
resurrected the base graph — clients deserve to know), while a *durable*
(``--wal-dir``) router must not — WAL recovery replayed the acked
mutations, so nothing was lost and post-crash answers match pre-crash
state.
"""

from __future__ import annotations

import os
import signal
import time

import pytest
import test_client

from repro.service import (
    Address,
    Router,
    ServiceError,
    SimRankClient,
    SingleSourceQuery,
    WorkerPool,
)

DATASET = "GrQc"


def serve_args(wal_dir=None) -> list[str]:
    args = [
        "--scale", str(test_client.SCALE),
        "--epsilon", str(test_client.EPSILON),
        "--seed", str(test_client.SEED),
        "--mc-walks", str(test_client.MC_WALKS),
        "--backend", "sling",
    ]
    if wal_dir is not None:
        args += ["--wal-dir", str(wal_dir)]
    return args


def start(wal_dir=None) -> tuple[WorkerPool, Router]:
    pool = WorkerPool(
        1, serve_args=serve_args(wal_dir), health_interval=0.3
    )
    pool.start()
    router = Router(
        pool,
        address=Address(family="tcp", host="127.0.0.1", port=0),
        request_timeout=60.0,
        durable=wal_dir is not None,
    )
    router.start()
    return pool, router


def kill_and_await_recovery(pool: WorkerPool, client: SimRankClient) -> dict:
    """SIGKILL worker 0, then poll until the replacement answers stats."""
    pid = pool.worker_pid(0)
    assert pid is not None
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        try:
            stats = client.stats()
        except ServiceError:
            time.sleep(0.2)
            continue
        if (
            pool.worker_pid(0) not in (None, pid)
            and DATASET in stats.get("datasets", {})
        ):
            return stats
        time.sleep(0.2)
    pytest.fail("worker did not recover within 60s")


def run_crash_scenario(wal_dir=None) -> tuple[dict, list, list]:
    """Open, mutate, probe, crash, recover; return (stats, pre, post)."""
    pool, router = start(wal_dir)
    try:
        client = SimRankClient(address=str(router.address))
        client.open_dataset(DATASET)
        ack = client.mutate(DATASET, add=[(1, 20)])
        assert ack["index_version"] == 1
        before = client.execute(SingleSourceQuery(DATASET, node=1))
        assert before.ok
        stats = kill_and_await_recovery(pool, client)
        after = client.execute(SingleSourceQuery(DATASET, node=1))
        assert after.ok
        client.close()
        return stats, list(before.value), list(after.value)
    finally:
        router.stop()


class TestRecoveredWithoutMutations:
    def test_non_durable_restart_stamps_the_flag(self):
        stats, before, after = run_crash_scenario(wal_dir=None)
        detail = stats["datasets"][DATASET]
        assert detail.get("recovered_without_mutations") is True
        # The loss is real: the replayed worker serves the base graph again.
        assert after != pytest.approx(before, abs=1e-9)

    def test_durable_restart_does_not_stamp_the_flag(self, tmp_path):
        stats, before, after = run_crash_scenario(wal_dir=tmp_path)
        detail = stats["datasets"][DATASET]
        assert "recovered_without_mutations" not in detail
        # WAL replay restored the mutation: post-crash answers match.
        assert after == pytest.approx(before, abs=1e-6)

    def test_fresh_mutation_clears_the_flag(self):
        pool, router = start(None)
        try:
            client = SimRankClient(address=str(router.address))
            client.open_dataset(DATASET)
            client.mutate(DATASET, add=[(1, 20)])
            stats = kill_and_await_recovery(pool, client)
            assert (
                stats["datasets"][DATASET].get("recovered_without_mutations")
                is True
            )
            # Mutating again supersedes the lost state: the stale-replay
            # warning must not outlive it.
            client.mutate(DATASET, add=[(2, 21)])
            stats = client.stats()
            detail = stats["datasets"][DATASET]
            assert "recovered_without_mutations" not in detail
            client.close()
        finally:
            router.stop()
