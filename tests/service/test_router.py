"""`Router` + `WorkerPool`: sharded serving parity and failover.

The router fronts real ``repro serve --unix`` worker processes, so these
tests exercise the full stack: spawn, hello, per-dataset sharding,
control-plane fan-out/merge, and — the point of the subsystem — a
SIGKILLed worker whose in-flight requests resolve to ``unavailable``
error envelopes (never a hang) and whose replacement, re-warmed with the
replayed open datasets, answers the very same client connection.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest
import test_client

from repro.engine import ENGINE_TOTAL_COUNTERS
from repro.service import (
    Address,
    HashRing,
    Router,
    SimRankClient,
    SinglePairQuery,
    WorkerPool,
)

#: Worker processes are configured exactly like the shared parity scenario.
SERVE_ARGS = [
    "--scale", str(test_client.SCALE),
    "--epsilon", str(test_client.EPSILON),
    "--seed", str(test_client.SEED),
    "--mc-walks", str(test_client.MC_WALKS),
    "--backend", "auto",
]


def start_router(
    workers: int = 2,
    *,
    pins: dict | None = None,
    health_interval: float = 0.5,
    request_timeout: float = 60.0,
) -> tuple[WorkerPool, Router]:
    pool = WorkerPool(
        workers, serve_args=SERVE_ARGS, health_interval=health_interval
    )
    pool.start()
    router = Router(
        pool,
        address=Address(family="tcp", host="127.0.0.1", port=0),
        pins=pins,
        request_timeout=request_timeout,
    )
    router.start()
    return pool, router


class TestHashRing:
    def test_lookup_is_deterministic_and_case_insensitive(self):
        ring = HashRing(4)
        assert ring.lookup("GrQc") == ring.lookup("grqc") == ring.lookup("GRQC")
        assert ring.assignments(["GrQc", "AS"]) == ring.assignments(["GrQc", "AS"])

    def test_every_worker_owns_something_eventually(self):
        ring = HashRing(3)
        owners = {ring.lookup(f"dataset-{i}") for i in range(64)}
        assert owners == {0, 1, 2}

    def test_pins_override_the_ring(self):
        pool_free_keys = ["GrQc", "AS"]
        ring = HashRing(2)
        natural = ring.assignments(pool_free_keys)
        pool, router = start_router(
            2, pins={name: 1 - owner for name, owner in natural.items()}
        )
        try:
            for name, owner in natural.items():
                assert router.shard_for(name) == 1 - owner
        finally:
            router.stop()


class TestRouterParity:
    def test_scenario_matches_in_process_through_two_workers(self):
        with test_client.make_client("in_process") as local:
            local_record = test_client.run_scenario(local)
        pool, router = start_router(2)
        try:
            remote = SimRankClient(address=str(router.address))
            remote_record = test_client.run_scenario(remote)
            remote.close()
            # The scenario's shutdown broadcast stopped router and workers.
            assert router.wait(timeout=60)
            for worker in pool._workers:
                assert worker.process.poll() is not None
        finally:
            router.stop()
        test_client.assert_records_identical(local_record, remote_record)

    def test_fan_out_merges_datasets_across_workers(self):
        # Pin the two datasets to different workers so list/stats really
        # merge across processes.
        pool, router = start_router(2, pins={"GrQc": 0, "AS": 1})
        try:
            client = SimRankClient(address=str(router.address))
            client.open_dataset("GrQc")
            client.open_dataset("AS")
            assert router.shard_for("GrQc") != router.shard_for("AS")
            assert client.list_datasets() == ["GrQc", "AS"]
            client.single_pair("GrQc", 1, 2)
            client.single_pair("AS", 1, 2)
            stats = client.stats()
            assert set(stats["datasets"]) == {"GrQc", "AS"}
            assert stats["totals"]["total_queries"] == 2
            percentiles = stats["totals"]["latency_percentiles"]
            assert percentiles["single_pair"]["count"] == 2
            # The fan-out merge must account for *every* engine counter —
            # the totals used to drop cache_evictions and batch_calls.
            for counter in ENGINE_TOTAL_COUNTERS:
                summed = sum(
                    engine_stats[counter]
                    for detail in stats["datasets"].values()
                    for engine_stats in detail["engines"].values()
                )
                assert stats["totals"][counter] == summed, counter
            assert client.describe()["datasets"] == ["GrQc", "AS"]
            client.close_dataset("AS")
            assert client.list_datasets() == ["GrQc"]
            client.close()
        finally:
            router.stop()


class TestFailover:
    def test_sigkilled_worker_yields_error_envelopes_then_recovers(self):
        pool, router = start_router(2, pins={"GrQc": 0, "AS": 1})
        try:
            client = SimRankClient(address=str(router.address))
            client.open_dataset("GrQc")
            client.open_dataset("AS")
            baseline = client.single_pair("GrQc", 1, 2)

            victim = pool._workers[0].process
            # Freeze the victim so a request is in flight when it dies.
            os.kill(victim.pid, signal.SIGSTOP)
            results = []
            worker = threading.Thread(
                target=lambda: results.append(
                    client.execute(SinglePairQuery("GrQc", 1, 2))
                )
            )
            worker.start()
            time.sleep(0.3)
            os.kill(victim.pid, signal.SIGKILL)
            worker.join(timeout=60)
            assert not worker.is_alive(), "in-flight request hung"
            (result,) = results
            assert result.ok is False
            assert result.error.code == "unavailable"

            # The other shard keeps answering the same client meanwhile.
            assert client.single_pair("AS", 1, 2) >= 0.0

            # The health loop restarts the worker and replays its open
            # datasets; the same connection then succeeds again.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and pool.restart_counts()[0] == 0:
                time.sleep(0.1)
            assert pool.restart_counts()[0] == 1
            deadline = time.monotonic() + 60
            recovered = None
            while time.monotonic() < deadline:
                retry = client.execute(SinglePairQuery("GrQc", 1, 2))
                if retry.ok:
                    recovered = retry
                    break
                assert retry.error.code == "unavailable"  # never a hang
                time.sleep(0.2)
            assert recovered is not None, "worker never recovered"
            assert recovered.value == baseline  # same config, same answer
            assert client.list_datasets() == ["GrQc", "AS"]  # state replayed
            client.close()
        finally:
            router.stop()

    def test_replay_continues_past_a_failed_dataset(self, monkeypatch):
        """One dataset failing to replay must not abandon the rest: the
        restarted worker still gets warmed with every later dataset."""
        import test_socket_server

        from repro.service.net import router as router_module
        from repro.service.net.channel import LineChannel

        service = test_socket_server.make_service()
        worker = test_socket_server.SocketServer(
            service, address=Address(family="tcp", host="127.0.0.1", port=0)
        )
        worker.start()

        class _StubPool:
            count = 1
            on_restart = None

            def worker_address(self, index):
                return worker.address

        router = Router(
            _StubPool(), address=Address(family="tcp", host="127.0.0.1", port=0)
        )
        sends = {"count": 0}

        class FlakyChannel(LineChannel):
            def send_line(self, line):
                sends["count"] += 1
                if sends["count"] == 1:
                    raise OSError("injected replay failure")
                super().send_line(line)

        monkeypatch.setattr(router_module, "LineChannel", FlakyChannel)
        try:
            router._record_open("AS")  # replay of this one fails ...
            router._record_open("GrQc")  # ... this one must still warm
            router._replay_open_datasets(0)
            assert sends["count"] >= 2, "replay stopped at the first failure"
            assert service.list_datasets() == ["GrQc"]
        finally:
            router.stop(stop_pool=False)
            worker.stop()

    def test_shutdown_stops_router_and_all_workers(self):
        pool, router = start_router(2)
        try:
            client = SimRankClient(address=str(router.address))
            assert client.ping()["pong"] is True
            assert client.shutdown() == {"stopping": True}
            assert router.wait(timeout=60)
            for worker in pool._workers:
                assert worker.process.poll() is not None
            for worker in pool._workers:
                assert not os.path.exists(worker.address.path)
        finally:
            router.stop()


@pytest.mark.parametrize("spec", ["GrQc=2", "nope", "=1"])
def test_cli_rejects_bad_pins(spec):
    from repro.cli import main

    if spec == "GrQc=2":
        # Syntactically fine but out of the worker range: the Router raises
        # and the CLI reports it — exercised at the library layer here to
        # avoid spawning workers.
        pool = WorkerPool(1, serve_args=SERVE_ARGS)
        with pytest.raises(ValueError):
            Router(
                pool,
                address=Address(family="tcp", host="127.0.0.1", port=0),
                pins={"GrQc": 2},
            )
    else:
        assert main(["router", "--workers", "1", "--pin", spec]) == 2
