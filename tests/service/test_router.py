"""`Router` + `WorkerPool`: sharded serving parity and failover.

The router fronts real ``repro serve --unix`` worker processes, so these
tests exercise the full stack: spawn, hello, per-dataset sharding,
control-plane fan-out/merge, and — the point of the subsystem — a
SIGKILLed worker whose in-flight requests resolve to ``unavailable``
error envelopes (never a hang) and whose replacement, re-warmed with the
replayed open datasets, answers the very same client connection.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest
import test_client

from repro.engine import ENGINE_TOTAL_COUNTERS
from repro.service import (
    Address,
    HashRing,
    Router,
    SimRankClient,
    SinglePairQuery,
    SingleSourceQuery,
    WorkerPool,
)

#: Worker processes are configured exactly like the shared parity scenario.
SERVE_ARGS = [
    "--scale", str(test_client.SCALE),
    "--epsilon", str(test_client.EPSILON),
    "--seed", str(test_client.SEED),
    "--mc-walks", str(test_client.MC_WALKS),
    "--backend", "auto",
]


def start_router(
    workers: int = 2,
    *,
    pins: dict | None = None,
    health_interval: float = 0.5,
    request_timeout: float = 60.0,
) -> tuple[WorkerPool, Router]:
    pool = WorkerPool(
        workers, serve_args=SERVE_ARGS, health_interval=health_interval
    )
    pool.start()
    router = Router(
        pool,
        address=Address(family="tcp", host="127.0.0.1", port=0),
        pins=pins,
        request_timeout=request_timeout,
    )
    router.start()
    return pool, router


class TestHashRing:
    def test_lookup_is_deterministic_and_case_insensitive(self):
        ring = HashRing(4)
        assert ring.lookup("GrQc") == ring.lookup("grqc") == ring.lookup("GRQC")
        assert ring.assignments(["GrQc", "AS"]) == ring.assignments(["GrQc", "AS"])

    def test_every_worker_owns_something_eventually(self):
        ring = HashRing(3)
        owners = {ring.lookup(f"dataset-{i}") for i in range(64)}
        assert owners == {0, 1, 2}

    def test_pins_override_the_ring(self):
        pool_free_keys = ["GrQc", "AS"]
        ring = HashRing(2)
        natural = ring.assignments(pool_free_keys)
        pool, router = start_router(
            2, pins={name: 1 - owner for name, owner in natural.items()}
        )
        try:
            for name, owner in natural.items():
                assert router.shard_for(name) == 1 - owner
        finally:
            router.stop()


class TestRouterParity:
    def test_scenario_matches_in_process_through_two_workers(self):
        with test_client.make_client("in_process") as local:
            local_record = test_client.run_scenario(local)
        pool, router = start_router(2)
        try:
            remote = SimRankClient(address=str(router.address))
            remote_record = test_client.run_scenario(remote)
            remote.close()
            # The scenario's shutdown broadcast stopped router and workers.
            assert router.wait(timeout=60)
            for worker in pool._workers:
                assert worker.process.poll() is not None
        finally:
            router.stop()
        test_client.assert_records_identical(local_record, remote_record)

    def test_fan_out_merges_datasets_across_workers(self):
        # Pin the two datasets to different workers so list/stats really
        # merge across processes.
        pool, router = start_router(2, pins={"GrQc": 0, "AS": 1})
        try:
            client = SimRankClient(address=str(router.address))
            client.open_dataset("GrQc")
            client.open_dataset("AS")
            assert router.shard_for("GrQc") != router.shard_for("AS")
            assert client.list_datasets() == ["GrQc", "AS"]
            client.single_pair("GrQc", 1, 2)
            client.single_pair("AS", 1, 2)
            stats = client.stats()
            assert set(stats["datasets"]) == {"GrQc", "AS"}
            assert stats["totals"]["total_queries"] == 2
            percentiles = stats["totals"]["latency_percentiles"]
            assert percentiles["single_pair"]["count"] == 2
            # The fan-out merge must account for *every* engine counter —
            # the totals used to drop cache_evictions and batch_calls.
            for counter in ENGINE_TOTAL_COUNTERS:
                summed = sum(
                    engine_stats[counter]
                    for detail in stats["datasets"].values()
                    for engine_stats in detail["engines"].values()
                )
                assert stats["totals"][counter] == summed, counter
            assert client.describe()["datasets"] == ["GrQc", "AS"]
            client.close_dataset("AS")
            assert client.list_datasets() == ["GrQc"]
            client.close()
        finally:
            router.stop()


class TestFailover:
    def test_sigkilled_worker_yields_error_envelopes_then_recovers(self):
        pool, router = start_router(2, pins={"GrQc": 0, "AS": 1})
        try:
            client = SimRankClient(address=str(router.address))
            client.open_dataset("GrQc")
            client.open_dataset("AS")
            baseline = client.single_pair("GrQc", 1, 2)

            victim = pool._workers[0].process
            # Freeze the victim so a request is in flight when it dies.
            os.kill(victim.pid, signal.SIGSTOP)
            results = []
            worker = threading.Thread(
                target=lambda: results.append(
                    client.execute(SinglePairQuery("GrQc", 1, 2))
                )
            )
            worker.start()
            time.sleep(0.3)
            os.kill(victim.pid, signal.SIGKILL)
            worker.join(timeout=60)
            assert not worker.is_alive(), "in-flight request hung"
            (result,) = results
            assert result.ok is False
            assert result.error.code == "unavailable"

            # The other shard keeps answering the same client meanwhile.
            assert client.single_pair("AS", 1, 2) >= 0.0

            # The health loop restarts the worker and replays its open
            # datasets; the same connection then succeeds again.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and pool.restart_counts()[0] == 0:
                time.sleep(0.1)
            assert pool.restart_counts()[0] == 1
            deadline = time.monotonic() + 60
            recovered = None
            while time.monotonic() < deadline:
                retry = client.execute(SinglePairQuery("GrQc", 1, 2))
                if retry.ok:
                    recovered = retry
                    break
                assert retry.error.code == "unavailable"  # never a hang
                time.sleep(0.2)
            assert recovered is not None, "worker never recovered"
            assert recovered.value == baseline  # same config, same answer
            assert client.list_datasets() == ["GrQc", "AS"]  # state replayed
            client.close()
        finally:
            router.stop()

    def test_replay_continues_past_a_failed_dataset(self, monkeypatch):
        """One dataset failing to replay must not abandon the rest: the
        restarted worker still gets warmed with every later dataset."""
        import test_socket_server

        from repro.service.net import router as router_module
        from repro.service.net.channel import LineChannel

        service = test_socket_server.make_service()
        worker = test_socket_server.SocketServer(
            service, address=Address(family="tcp", host="127.0.0.1", port=0)
        )
        worker.start()

        class _StubPool:
            count = 1
            on_restart = None

            def worker_address(self, index):
                return worker.address

        router = Router(
            _StubPool(), address=Address(family="tcp", host="127.0.0.1", port=0)
        )
        sends = {"count": 0}

        class FlakyChannel(LineChannel):
            def send_line(self, line):
                sends["count"] += 1
                if sends["count"] == 1:
                    raise OSError("injected replay failure")
                super().send_line(line)

        monkeypatch.setattr(router_module, "LineChannel", FlakyChannel)
        try:
            router._record_open("AS")  # replay of this one fails ...
            router._record_open("GrQc")  # ... this one must still warm
            router._replay_open_datasets(0)
            assert sends["count"] >= 2, "replay stopped at the first failure"
            assert service.list_datasets() == ["GrQc"]
        finally:
            router.stop(stop_pool=False)
            worker.stop()

    def test_shutdown_stops_router_and_all_workers(self):
        pool, router = start_router(2)
        try:
            client = SimRankClient(address=str(router.address))
            assert client.ping()["pong"] is True
            assert client.shutdown() == {"stopping": True}
            assert router.wait(timeout=60)
            for worker in pool._workers:
                assert worker.process.poll() is not None
            for worker in pool._workers:
                assert not os.path.exists(worker.address.path)
        finally:
            router.stop()


@pytest.mark.parametrize("spec", ["GrQc=2", "nope", "=1"])
def test_cli_rejects_bad_pins(spec):
    from repro.cli import main

    if spec == "GrQc=2":
        # Syntactically fine but out of the worker range: the Router raises
        # and the CLI reports it — exercised at the library layer here to
        # avoid spawning workers.
        pool = WorkerPool(1, serve_args=SERVE_ARGS)
        with pytest.raises(ValueError):
            Router(
                pool,
                address=Address(family="tcp", host="127.0.0.1", port=0),
                pins={"GrQc": 2},
            )
    else:
        assert main(["router", "--workers", "1", "--pin", spec]) == 2


class TestMutationRouting:
    """``mutate`` requests forward to the owning shard, and the
    ``index_version`` echo stays truthful under a mutation storm.

    The invariant under concurrency: a response's stamp may trail the
    served value's true version (a mutation raced the query) but must
    never lead it — a pre-mutation cached vector stamped with the
    post-mutation version would be indistinguishable from a fresh answer.
    """

    def test_mutation_storm_never_misstamps_cached_values(self):
        pool, router = start_router(2, pins={"GrQc": 0, "AS": 1})
        try:
            client = SimRankClient(address=str(router.address))
            client.open_dataset("GrQc")
            client.open_dataset("AS")
            sources = [1, 2, 3]

            # canon[(source, version)] — measured with no mutation in
            # flight, so the echo must be exact.
            canon = {}
            for source in sources:
                result = client.execute(SingleSourceQuery("GrQc", source))
                assert result.ok and result.index_version is None
                canon[(source, 0)] = tuple(result.value)

            records: list[list] = [[], []]
            errors: list[object] = []
            stop = threading.Event()

            def hammer(slot: int) -> None:
                try:
                    mine = SimRankClient(address=str(router.address))
                    while not stop.is_set():
                        for source in sources:
                            result = mine.execute(
                                SingleSourceQuery("GrQc", source)
                            )
                            if not result.ok:
                                errors.append(result.error)
                                continue
                            records[slot].append(
                                (
                                    source,
                                    result.index_version or 0,
                                    tuple(result.value),
                                )
                            )
                    mine.close()
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(slot,))
                for slot in range(2)
            ]
            for thread in threads:
                thread.start()

            num_mutations = 3
            try:
                for step in range(1, num_mutations + 1):
                    ack = client.mutate("GrQc", add=[(step, step + 10)])
                    assert ack["index_version"] == step
                    # Serialized checkpoint: no mutation in flight, so the
                    # echo must be exactly the acked version.
                    for source in sources:
                        result = client.execute(
                            SingleSourceQuery("GrQc", source)
                        )
                        assert result.ok
                        assert result.index_version == step
                        canon[(source, step)] = tuple(result.value)
                    time.sleep(0.2)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=60)
                    assert not thread.is_alive()

            assert not errors, errors

            for slot in range(2):
                versions = [version for _, version, _ in records[slot]]
                # Per-connection echoes never go backwards or ahead.
                assert versions == sorted(versions)
                assert all(0 <= v <= num_mutations for v in versions)
                for source, version, value in records[slot]:
                    current_or_newer = {
                        canon[(source, v)]
                        for v in range(version, num_mutations + 1)
                    }
                    older = {
                        canon[(source, v)] for v in range(version)
                    } - current_or_newer
                    # A value matching only pre-stamp generations is a
                    # stale cached vector passed off under a new version.
                    assert value not in older, (source, version)

            # The storm actually changed what the index serves.
            assert any(
                canon[(source, 0)] != canon[(source, num_mutations)]
                for source in sources
            )

            # The other shard's dataset was never mutated: no stamp, and
            # the router's merged stats report the mutated version only
            # for the owning shard's dataset.
            untouched = client.execute(SinglePairQuery("AS", 1, 2))
            assert untouched.ok and untouched.index_version is None
            stats = client.stats()
            assert stats["datasets"]["GrQc"]["index_version"] == num_mutations
            assert stats["datasets"]["AS"]["index_version"] == 0
            assert client.describe()["datasets"] == ["GrQc", "AS"]
            client.close()
        finally:
            router.stop()
