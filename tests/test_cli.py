"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

#: Common flags keeping every CLI invocation tiny and fast.
FAST = ["--scale", "0.05", "--epsilon", "0.1", "--mc-walks", "30"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--datasets", "NotADataset"])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "--methods", "Magic"])

    def test_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.datasets == list(("GrQc", "AS", "Wiki-Vote", "HepTh"))
        assert args.epsilon == 0.05

    def test_query_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--dataset", "GrQc"])


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3", *FAST]) == 0
        output = capsys.readouterr().out
        assert "GrQc" in output and "Indochina" in output

    def test_figure1(self, capsys):
        exit_code = main(
            ["figure1", *FAST, "--datasets", "GrQc", "--methods", "SLING", "--queries", "5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output and "SLING" in output

    def test_figure2(self, capsys):
        exit_code = main(
            ["figure2", *FAST, "--datasets", "GrQc", "--methods", "SLING", "--queries", "2"]
        )
        assert exit_code == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_figure3_and_4(self, capsys):
        assert main(["figure3", *FAST, "--datasets", "GrQc", "--methods", "SLING"]) == 0
        assert "Figure 3" in capsys.readouterr().out
        assert main(["figure4", *FAST, "--datasets", "GrQc", "--methods", "SLING"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_figure5_6_7(self, capsys):
        assert main(["figure5", *FAST, "--datasets", "GrQc", "--methods", "SLING"]) == 0
        assert "Figure 5" in capsys.readouterr().out
        assert main(["figure6", *FAST, "--datasets", "GrQc", "--methods", "SLING"]) == 0
        assert "Figure 6" in capsys.readouterr().out
        assert (
            main(["figure7", *FAST, "--datasets", "GrQc", "--methods", "SLING", "--k", "5"])
            == 0
        )
        assert "Figure 7" in capsys.readouterr().out

    def test_query_single_pair_and_top_k(self, capsys):
        exit_code = main(
            ["query", *FAST, "--dataset", "GrQc", "--source", "3", "--target", "5", "--top", "4"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "s(3, 5)" in output
        assert "top-4" in output

    def test_query_reports_engine_backend_and_statistics(self, capsys):
        exit_code = main(["query", *FAST, "--dataset", "GrQc", "--source", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "backend: sling" in output
        assert "engine:" in output

    def test_query_json_output(self, capsys):
        exit_code = main(
            [
                "query", *FAST, "--dataset", "GrQc",
                "--source", "3", "--target", "5", "--top", "4", "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dataset"] == "GrQc"
        assert payload["plan"]["backend"] == "sling"
        assert payload["single_pair"]["source"] == 3
        assert 0.0 <= payload["single_pair"]["score"] <= 1.0
        assert len(payload["top_k"]) == 4
        assert payload["top_k"][0]["rank"] == 1
        assert payload["statistics"]["total_queries"] == 2

    def test_query_with_explicit_backend(self, capsys):
        exit_code = main(
            [
                "query", *FAST, "--dataset", "GrQc",
                "--source", "3", "--top", "2", "--backend", "power", "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["backend"] == "power"
        assert payload["statistics"]["backend"] == "power"

    def test_query_memory_budget_routes_to_disk_backend(self, capsys):
        exit_code = main(
            [
                "query", *FAST, "--dataset", "GrQc",
                "--source", "3", "--top", "2",
                "--memory-budget-mb", "0.01", "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["backend"] == "sling-disk"

    def test_query_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--source", "1", "--backend", "FooBar"]
            )

    def test_query_supports_mc_sqrtc_method_in_figures(self, capsys):
        exit_code = main(
            ["figure1", *FAST, "--datasets", "GrQc", "--methods", "MC-sqrtc", "--queries", "5"]
        )
        assert exit_code == 0
        assert "MC-sqrtc" in capsys.readouterr().out


class TestWorkload:
    ARGS = ["workload", "--queries", "60", "--seed", "9", "--datasets", "GrQc"]

    def test_emits_wire_ready_jsonl_and_stderr_summary(self, capsys):
        assert main(self.ARGS) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert len(lines) == 60
        for index, line in enumerate(lines):
            payload = json.loads(line)
            assert payload["id"] == index
            assert payload["dataset"] == "GrQc"
            assert payload["kind"] in ("single_pair", "single_source", "top_k")
        # The stream goes to stdout; the shape summary must not pollute it.
        assert captured.err.startswith("workload: ")
        summary = json.loads(captured.err.removeprefix("workload: "))
        assert summary["num_queries"] == 60

    def test_same_flags_are_byte_identical(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        assert capsys.readouterr().out == first
        assert main(["workload", "--queries", "60", "--seed", "10"]) == 0
        assert capsys.readouterr().out != first

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "stream.jsonl"
        assert main([*self.ARGS, "--output", str(target)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""  # everything went to the file
        assert len(target.read_text().splitlines()) == 60

    def test_invalid_pattern_knobs_exit_2(self, capsys):
        code = main(
            ["workload", "--top-k-fraction", "0.9", "--source-fraction", "0.5"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_workload_needs_no_accuracy_options(self):
        # The parser must not require epsilon/mc-walks for workload — the
        # command never computes a score (regression for the dispatch
        # ordering in main()).
        args = build_parser().parse_args(["workload"])
        assert not hasattr(args, "epsilon")

    def test_deadline_ms_stamps_every_emitted_envelope(self, capsys):
        assert main([*self.ARGS, "--deadline-ms", "250"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        for line in lines:
            assert json.loads(line)["deadline_ms"] == 250.0

    def test_no_deadline_omits_the_key(self, capsys):
        assert main(self.ARGS) == 0
        for line in capsys.readouterr().out.splitlines():
            assert "deadline_ms" not in json.loads(line)

    def test_chaos_profile_shapes_the_stream(self, capsys):
        assert main([*self.ARGS, "--chaos-profile", "mutation-storm"]) == 0
        kinds = {
            json.loads(line)["kind"]
            for line in capsys.readouterr().out.splitlines()
        }
        assert "mutate" in kinds

    def test_explicit_deadline_overrides_the_profile(self, capsys):
        # deadline-storm sets deadline_ms=250; an explicit flag must win.
        assert main(
            [*self.ARGS, "--chaos-profile", "deadline-storm",
             "--deadline-ms", "100"]
        ) == 0
        for line in capsys.readouterr().out.splitlines():
            assert json.loads(line)["deadline_ms"] == 100.0

    def test_unknown_chaos_profile_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([*self.ARGS, "--chaos-profile", "bogus"])
        assert excinfo.value.code == 2

    def test_non_positive_deadline_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([*self.ARGS, "--deadline-ms", "0"])
        assert excinfo.value.code == 2


class TestChaosCommand:
    def test_parser_accepts_the_drill_toggles(self):
        args = build_parser().parse_args(
            ["chaos", "--events", "5", "--seed", "3", "--no-kill",
             "--no-hostile", "--no-disk-full", "--no-slow-shard", "--no-wal"]
        )
        assert args.command == "chaos"
        assert args.events == 5
        assert args.no_kill and args.no_wal

    def test_invalid_profile_knobs_exit_2_before_any_drill(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--events", "0"])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err
