"""Unit tests for the ablation-study drivers."""

from __future__ import annotations

import pytest

from repro.evaluation import GroundTruthCache, ablations

#: One shared cache keeps the (tiny) ground-truth computations to a minimum.
CACHE = GroundTruthCache()
SCALE = 0.06


class TestCorrectionSamplerAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.correction_sampler_ablation(
            "GrQc", scale=SCALE, epsilon_d=0.02, cache=CACHE
        )

    def test_returns_both_estimators(self, rows):
        assert [row.estimator for row in rows] == [
            "Algorithm 1 (fixed)",
            "Algorithm 4 (adaptive)",
        ]

    def test_adaptive_uses_no_more_samples(self, rows):
        fixed, adaptive = rows
        assert adaptive.total_samples <= fixed.total_samples

    def test_both_respect_error_bound(self, rows):
        for row in rows:
            assert row.max_error_vs_exact <= 0.02 + 1e-9

    def test_timings_positive(self, rows):
        assert all(row.seconds > 0 for row in rows)


class TestOptimizationAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.optimization_ablation(
            "GrQc", scale=SCALE, epsilon=0.1, num_queries=20, cache=CACHE
        )

    def test_four_variants(self, rows):
        assert len(rows) == 4
        assert rows[0].variant == "baseline"

    def test_space_reduction_shrinks_index(self, rows):
        by_name = {row.variant: row for row in rows}
        assert (
            by_name["space reduction (5.2)"].index_megabytes
            <= by_name["baseline"].index_megabytes
        )

    def test_every_variant_respects_epsilon(self, rows):
        assert all(row.max_error <= 0.1 for row in rows)

    def test_query_times_recorded(self, rows):
        assert all(row.average_query_milliseconds >= 0 for row in rows)


class TestMonteCarloVariantAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.monte_carlo_variant_ablation(
            "GrQc", scale=SCALE, num_walks=200, cache=CACHE
        )

    def test_two_variants(self, rows):
        assert len(rows) == 2
        assert "truncated" in rows[0].variant
        assert "sqrt(c)" in rows[1].variant

    def test_errors_bounded(self, rows):
        # 200 walks give a ~1/sqrt(200) standard error; both variants must
        # stay within a loose sanity bound on a tiny graph.
        assert all(row.max_error <= 0.25 for row in rows)

    def test_sizes_positive(self, rows):
        assert all(row.index_megabytes > 0 for row in rows)
