"""Unit tests for the plain-text experiment reports."""

from __future__ import annotations

from repro.evaluation import reporting
from repro.evaluation.experiments import (
    AccuracyRow,
    GroupedErrorRow,
    OutOfCoreRow,
    ParallelRow,
    PreprocessingRow,
    QueryCostRow,
    ScalingRow,
    SpaceRow,
    TopKRow,
)
from repro.evaluation.metrics import GroupedErrors


class TestRenderTable:
    def test_columns_are_aligned(self):
        table = reporting.render_table(
            ["name", "value"], [["a", 1], ["long-name", 22]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines if "|" in line)) == 1

    def test_header_present(self):
        table = reporting.render_table(["col"], [["x"]])
        assert table.splitlines()[0].strip() == "col"

    def test_empty_rows(self):
        table = reporting.render_table(["a", "b"], [])
        assert len(table.splitlines()) == 2


class TestFigureRenderers:
    def test_query_costs(self):
        rows = [QueryCostRow("GrQc", "SLING", 100, 0.123)]
        text = reporting.render_query_costs(rows, title="Figure 1")
        assert "Figure 1" in text
        assert "GrQc" in text and "SLING" in text and "0.123" in text

    def test_preprocessing(self):
        text = reporting.render_preprocessing([PreprocessingRow("AS", "MC", 1.5)])
        assert "Figure 3" in text and "1.500" in text

    def test_space(self):
        text = reporting.render_space([SpaceRow("AS", "SLING", 12.5)])
        assert "Figure 4" in text and "12.500" in text

    def test_accuracy(self):
        text = reporting.render_accuracy([AccuracyRow("AS", "SLING", 0, 0.0021)])
        assert "Figure 5" in text and "0.002100" in text

    def test_grouped_errors_handles_nan(self):
        groups = GroupedErrors(0.01, float("nan"), 0.001, 5, 0, 3)
        text = reporting.render_grouped_errors([GroupedErrorRow("AS", "MC", groups)])
        assert "Figure 6" in text and "n/a" in text

    def test_top_k(self):
        text = reporting.render_top_k([TopKRow("AS", "SLING", 400, 0.98)])
        assert "Figure 7" in text and "0.9800" in text

    def test_parallel(self):
        text = reporting.render_parallel([ParallelRow("Google", 4, 2.0)])
        assert "Figure 9" in text and "Google" in text

    def test_out_of_core(self):
        text = reporting.render_out_of_core([OutOfCoreRow("Google", 4096, 3, 1.0)])
        assert "Figure 10" in text and "4096" in text

    def test_scaling(self):
        text = reporting.render_scaling([ScalingRow(0.05, 0.2, 1.5, 33.0)])
        assert "Table 1" in text and "0.05" in text
