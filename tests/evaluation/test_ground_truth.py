"""Unit tests for the ground-truth cache."""

from __future__ import annotations

import numpy as np

from repro.evaluation import GroundTruthCache, ground_truth_matrix
from repro.graphs import generators


class TestGroundTruthMatrix:
    def test_uses_fifty_iterations_by_default(self, community_graph):
        default = ground_truth_matrix(community_graph)
        explicit = ground_truth_matrix(community_graph, num_iterations=50)
        assert np.array_equal(default, explicit)

    def test_matches_power_method_properties(self, community_graph):
        matrix = ground_truth_matrix(community_graph, num_iterations=20)
        assert np.allclose(matrix.diagonal(), 1.0)
        assert np.allclose(matrix, matrix.T)


class TestGroundTruthCache:
    def test_memory_cache_returns_same_object(self, community_graph):
        cache = GroundTruthCache()
        first = cache.get(community_graph, num_iterations=10)
        second = cache.get(community_graph, num_iterations=10)
        assert first is second

    def test_different_settings_are_cached_separately(self, community_graph):
        cache = GroundTruthCache()
        coarse = cache.get(community_graph, num_iterations=2)
        fine = cache.get(community_graph, num_iterations=30)
        assert not np.array_equal(coarse, fine)

    def test_disk_cache_roundtrip(self, tmp_path):
        graph = generators.two_level_community(2, 6, seed=31)
        cache = GroundTruthCache(tmp_path)
        matrix = cache.get(graph, num_iterations=15)
        assert list(tmp_path.glob("ground_truth_*.npy"))
        # A fresh cache instance must pick the matrix up from disk.
        reloaded = GroundTruthCache(tmp_path).get(graph, num_iterations=15)
        assert np.array_equal(matrix, reloaded)

    def test_clear_drops_memory_entries(self, community_graph):
        cache = GroundTruthCache()
        first = cache.get(community_graph, num_iterations=5)
        cache.clear()
        second = cache.get(community_graph, num_iterations=5)
        assert first is not second
        assert np.array_equal(first, second)
