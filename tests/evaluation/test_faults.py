"""Fault-injection harness: profile validation and the in-process drill.

The full storm (worker SIGKILL, hostile frames, slow shard) spawns real
worker processes and runs in CI's dedicated ``chaos-smoke`` job via
``repro chaos``; here the tier-1 suite covers what is cheap to pin — the
profile's parameter validation and the disk-full drill, which runs
entirely in-process and asserts the WAL's containment contract end to
end (typed retryable error, rollback, same-id retry, recovery).
"""

from __future__ import annotations

import pytest

from repro.evaluation.faults import ChaosProfile, run_disk_full
from repro.exceptions import ParameterError


class TestChaosProfile:
    def test_defaults_are_valid(self):
        profile = ChaosProfile()
        assert profile.wal is True
        assert profile.kill_worker is True

    @pytest.mark.parametrize(
        "overrides",
        [
            {"events": 0},
            {"workers": 0},
            {"deadline_ms": 0.0},
            {"slow_deadline_ms": -1.0},
        ],
    )
    def test_invalid_knobs_are_rejected(self, overrides):
        with pytest.raises(ParameterError):
            ChaosProfile(**overrides)


class TestDiskFullDrill:
    def test_disk_full_is_contained_and_recoverable(self):
        report = run_disk_full(ChaosProfile(scale=0.02, epsilon=0.1))
        assert report["ok"], report
        assert report["disk_full_code"] == "unavailable"
        assert report["disk_full_retryable"] is True
        assert report["reads_survive"] is True
        assert report["rollback_drift"] <= 1e-6
        assert report["retry_after_space_ok"] is True
        assert report["recovered_ids"] == ["df-1", "df-2"]
