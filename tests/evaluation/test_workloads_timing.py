"""Unit tests for query workload generation and the timing helpers."""

from __future__ import annotations

import pytest

from repro.evaluation import Timer, random_pairs, random_sources, time_callable
from repro.evaluation.workloads import PAPER_PAIR_QUERIES, PAPER_SOURCE_QUERIES
from repro.exceptions import ParameterError
from repro.graphs import DiGraph, generators


class TestWorkloads:
    def test_paper_workload_sizes(self):
        assert PAPER_PAIR_QUERIES == 1000
        assert PAPER_SOURCE_QUERIES == 500

    def test_random_pairs_count_and_range(self):
        graph = generators.cycle(20)
        pairs = random_pairs(graph, 50, seed=1)
        assert len(pairs) == 50
        assert all(0 <= u < 20 and 0 <= v < 20 for u, v in pairs)

    def test_random_pairs_distinct_by_default(self):
        graph = generators.cycle(5)
        pairs = random_pairs(graph, 200, seed=2)
        assert all(u != v for u, v in pairs)

    def test_random_pairs_allow_identical(self):
        graph = generators.cycle(2)
        pairs = random_pairs(graph, 100, seed=3, distinct=False)
        assert any(u == v for u, v in pairs)

    def test_random_pairs_deterministic(self):
        graph = generators.cycle(10)
        assert random_pairs(graph, 20, seed=7) == random_pairs(graph, 20, seed=7)

    def test_random_pairs_invalid(self):
        graph = generators.cycle(1)
        with pytest.raises(ParameterError):
            random_pairs(graph, 5, seed=0)
        with pytest.raises(ParameterError):
            random_pairs(generators.cycle(5), -1)

    def test_random_sources(self):
        graph = generators.cycle(10)
        sources = random_sources(graph, 30, seed=1)
        assert len(sources) == 30
        assert all(0 <= node < 10 for node in sources)

    def test_random_sources_deterministic(self):
        graph = generators.cycle(10)
        assert random_sources(graph, 10, seed=4) == random_sources(graph, 10, seed=4)

    def test_random_sources_invalid(self):
        with pytest.raises(ParameterError):
            random_sources(DiGraph(0, []), 5)


class TestTiming:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer.measure():
            sum(range(100))
        with timer.measure():
            sum(range(100))
        assert timer.num_measurements == 2
        assert timer.total_seconds >= 0.0
        assert timer.average_seconds == pytest.approx(timer.total_seconds / 2)

    def test_timer_empty_average(self):
        assert Timer().average_seconds == 0.0

    def test_time_callable_repeats(self):
        calls = []
        result = time_callable(lambda: calls.append(1), repeats=5)
        assert len(calls) == 5
        assert result.num_calls == 5
        assert len(result.per_call_results) == 5
        assert result.average_milliseconds >= 0.0

    def test_time_callable_invalid_repeats(self):
        with pytest.raises(ParameterError):
            time_callable(lambda: None, repeats=0)
