"""Traffic deadlines and chaos profiles: stamping, stability, validation.

``TrafficPattern.deadline_ms`` must stamp every emitted envelope without
perturbing the stream itself — a deadline-free pattern at the same seed
generates the identical event sequence, so pre-PR-10 recorded workloads
replay byte-for-byte.  The named chaos profiles resolve to pattern
overrides and reject unknown names with the valid ones listed.
"""

from __future__ import annotations

import pytest

from repro.evaluation.traffic import (
    CHAOS_TRAFFIC_PROFILES,
    TrafficPattern,
    chaos_pattern_overrides,
    events_to_jsonl,
    generate_traffic,
)
from repro.exceptions import ParameterError

DATASETS = {"toy": 30}


def events(**overrides):
    return generate_traffic(
        DATASETS, TrafficPattern(num_queries=40, seed=5, **overrides)
    )


class TestDeadlineStamping:
    def test_deadline_stamps_every_envelope(self):
        stamped = events(deadline_ms=250.0, mutation_fraction=0.2)
        assert stamped
        for event in stamped:
            assert event.deadline_ms == 250.0
            assert event.to_wire()["deadline_ms"] == 250.0

    def test_no_deadline_omits_the_key_entirely(self):
        for event in events():
            assert event.deadline_ms is None
            assert "deadline_ms" not in event.to_wire()

    def test_deadline_does_not_perturb_the_stream(self):
        # Same seed, with and without a deadline: identical events apart
        # from the stamp — the deadline consumes no randomness, so recorded
        # pre-deadline workloads stay reproducible.
        plain = events(mutation_fraction=0.2)
        stamped = events(deadline_ms=500.0, mutation_fraction=0.2)
        assert len(plain) == len(stamped)
        for before, after in zip(plain, stamped):
            assert before.index == after.index
            assert before.phase == after.phase
            assert before.query == after.query
        plain_again = events(mutation_fraction=0.2)
        assert events_to_jsonl(plain) == events_to_jsonl(plain_again)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_pattern_rejects_non_positive_deadlines(self, bad):
        with pytest.raises(ParameterError):
            TrafficPattern(deadline_ms=bad)


class TestChaosProfiles:
    def test_every_profile_resolves_to_valid_pattern_overrides(self):
        for name in CHAOS_TRAFFIC_PROFILES:
            overrides = chaos_pattern_overrides(name)
            pattern = TrafficPattern(num_queries=20, seed=1, **overrides)
            assert generate_traffic(DATASETS, pattern)

    def test_overrides_are_a_copy(self):
        first = chaos_pattern_overrides("mutation-storm")
        first["mutation_fraction"] = 0.99
        assert chaos_pattern_overrides("mutation-storm") != first

    def test_unknown_profile_names_the_valid_ones(self):
        with pytest.raises(ParameterError) as excinfo:
            chaos_pattern_overrides("nope")
        message = str(excinfo.value)
        assert "nope" in message
        for name in CHAOS_TRAFFIC_PROFILES:
            assert name in message

    def test_mutation_storm_emits_mutations_and_refreezes(self):
        overrides = chaos_pattern_overrides("mutation-storm")
        stream = events(**overrides)
        mutations = [e for e in stream if e.kind == "mutate"]
        assert mutations
        assert any(e.query.refreeze for e in mutations)

    def test_deadline_storm_stamps_tight_deadlines(self):
        overrides = chaos_pattern_overrides("deadline-storm")
        stream = events(**overrides)
        assert all(e.deadline_ms == overrides["deadline_ms"] for e in stream)
