"""Unit tests for the figure-reproduction experiment drivers.

These run on drastically scaled-down graphs (scale=0.05) so the whole module
stays fast; the benchmark harness runs the same drivers at larger scales.
"""

from __future__ import annotations

import pytest

from repro.evaluation import experiments
from repro.evaluation.experiments import MethodConfig
from repro.exceptions import ParameterError

#: Tiny configuration shared by all driver tests.
CONFIG = MethodConfig(epsilon=0.1, seed=0, mc_num_walks=50)
SCALE = 0.05
DATASETS = ("GrQc",)


def _load_graph():
    return experiments._service(SCALE, CONFIG).open_dataset("GrQc").graph


class TestBuildMethod:
    def test_known_methods(self):
        graph = _load_graph()
        for name in ("SLING", "Linearize", "MC"):
            method = experiments.build_method(name, graph, CONFIG)
            assert 0.0 <= method.single_pair(0, 1) <= 1.0

    def test_unknown_method_rejected(self):
        graph = _load_graph()
        with pytest.raises(ParameterError):
            experiments.build_method("FooBar", graph, CONFIG)


class TestQueryExperiments:
    def test_single_pair_experiment_rows(self):
        rows = experiments.single_pair_experiment(
            DATASETS, methods=("SLING", "Linearize"), num_queries=10,
            scale=SCALE, config=CONFIG,
        )
        assert len(rows) == 2
        assert {row.method for row in rows} == {"SLING", "Linearize"}
        assert all(row.num_queries == 10 for row in rows)
        assert all(row.average_milliseconds >= 0.0 for row in rows)

    def test_single_source_experiment_includes_both_sling_variants(self):
        rows = experiments.single_source_experiment(
            DATASETS,
            methods=("SLING", "SLING (Alg. 3)"),
            num_queries=3,
            scale=SCALE,
            config=CONFIG,
        )
        assert {row.method for row in rows} == {"SLING", "SLING (Alg. 3)"}

    def test_preprocessing_and_space_experiments(self):
        pre_rows = experiments.preprocessing_experiment(
            DATASETS, methods=("SLING", "MC"), scale=SCALE, config=CONFIG
        )
        space_rows = experiments.space_experiment(
            DATASETS, methods=("SLING", "MC"), scale=SCALE, config=CONFIG
        )
        assert all(row.seconds > 0 for row in pre_rows)
        assert all(row.megabytes > 0 for row in space_rows)


class TestAccuracyExperiments:
    def test_accuracy_experiment_respects_epsilon_for_sling(self):
        rows = experiments.accuracy_experiment(
            DATASETS, methods=("SLING",), num_runs=1, scale=SCALE, config=CONFIG
        )
        assert len(rows) == 1
        assert rows[0].maximum_error <= CONFIG.epsilon

    def test_grouped_error_experiment(self):
        rows = experiments.grouped_error_experiment(
            DATASETS, methods=("SLING",), scale=SCALE, config=CONFIG
        )
        assert len(rows) == 1
        assert rows[0].groups.s1_count >= 0

    def test_top_k_experiment(self):
        rows = experiments.top_k_experiment(
            DATASETS, methods=("SLING",), k_values=(10, 20), scale=SCALE, config=CONFIG
        )
        assert len(rows) == 2
        assert all(0.0 <= row.precision <= 1.0 for row in rows)
        assert {row.k for row in rows} == {10, 20}


class TestInfrastructureExperiments:
    def test_parallel_scaling_experiment(self):
        rows = experiments.parallel_scaling_experiment(
            DATASETS, worker_counts=(1, 2), scale=SCALE, config=CONFIG
        )
        assert [row.workers for row in rows] == [1, 2]
        assert all(row.seconds > 0 for row in rows)

    def test_out_of_core_experiment(self, tmp_path):
        rows = experiments.out_of_core_experiment(
            tmp_path, DATASETS, buffer_sizes=(4096,), scale=SCALE, config=CONFIG
        )
        assert len(rows) == 1
        assert rows[0].buffer_bytes == 4096

    def test_epsilon_scaling_experiment(self):
        rows = experiments.epsilon_scaling_experiment(
            "GrQc", epsilons=(0.2, 0.1), num_queries=10, scale=SCALE, config=CONFIG
        )
        assert len(rows) == 2
        # A smaller epsilon must yield a larger index.
        assert rows[1].index_megabytes > rows[0].index_megabytes
