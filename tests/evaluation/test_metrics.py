"""Unit tests for the accuracy metrics of Figures 5-7."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    grouped_errors,
    max_error,
    mean_error,
    top_k_pairs,
    top_k_precision,
)
from repro.evaluation.metrics import SIMRANK_GROUPS
from repro.exceptions import ParameterError


@pytest.fixture()
def truth():
    matrix = np.array(
        [
            [1.0, 0.50, 0.05, 0.001],
            [0.50, 1.0, 0.02, 0.002],
            [0.05, 0.02, 1.0, 0.200],
            [0.001, 0.002, 0.200, 1.0],
        ]
    )
    return matrix


class TestBasicErrors:
    def test_max_error_ignores_diagonal(self, truth):
        estimated = truth.copy()
        estimated[0, 0] = 0.0  # diagonal error must be ignored
        estimated[0, 1] += 0.03
        assert max_error(estimated, truth) == pytest.approx(0.03)

    def test_mean_error(self, truth):
        estimated = truth.copy()
        estimated[0, 1] += 0.12
        expected = 0.12 / 12  # twelve off-diagonal entries
        assert mean_error(estimated, truth) == pytest.approx(expected)

    def test_zero_error_for_identical_matrices(self, truth):
        assert max_error(truth, truth) == 0.0
        assert mean_error(truth, truth) == 0.0

    def test_shape_mismatch_rejected(self, truth):
        with pytest.raises(ParameterError):
            max_error(truth[:3, :3], truth)
        with pytest.raises(ParameterError):
            mean_error(np.ones((2, 3)), np.ones((2, 3)))

    def test_single_node_matrix(self):
        assert max_error(np.ones((1, 1)), np.ones((1, 1))) == 0.0


class TestGroupedErrors:
    def test_groups_partition_the_unit_interval(self):
        lows = sorted(low for low, _ in SIMRANK_GROUPS.values())
        assert lows[0] == 0.0

    def test_errors_assigned_to_correct_groups(self, truth):
        estimated = truth.copy()
        estimated[0, 1] += 0.010  # truth 0.5 -> group S1
        estimated[0, 2] += 0.004  # truth 0.05 -> group S2
        estimated[0, 3] += 0.002  # truth 0.001 -> group S3
        groups = grouped_errors(estimated, truth)
        assert groups.s1 == pytest.approx(0.010 / groups.s1_count)
        assert groups.s2 == pytest.approx(0.004 / groups.s2_count)
        assert groups.s3 == pytest.approx(0.002 / groups.s3_count)

    def test_counts_cover_all_off_diagonal_pairs(self, truth):
        groups = grouped_errors(truth, truth)
        assert groups.s1_count + groups.s2_count + groups.s3_count == 12

    def test_empty_group_is_nan(self):
        truth = np.array([[1.0, 0.5], [0.5, 1.0]])
        groups = grouped_errors(truth, truth)
        assert np.isnan(groups.s3)
        assert "S3" not in groups.as_dict()
        assert groups.as_dict()["S1"] == 0.0


class TestTopK:
    def test_top_k_pairs_returns_upper_triangle_pairs(self, truth):
        pairs = top_k_pairs(truth, 2)
        assert pairs == {(0, 1), (2, 3)}

    def test_top_k_pairs_excludes_diagonal(self, truth):
        pairs = top_k_pairs(truth, 6)
        assert all(u != v for u, v in pairs)

    def test_top_k_handles_k_larger_than_pair_count(self, truth):
        pairs = top_k_pairs(truth, 1000)
        assert len(pairs) == 6

    def test_top_k_invalid_k(self, truth):
        with pytest.raises(ParameterError):
            top_k_pairs(truth, 0)

    def test_perfect_precision_for_identical_matrices(self, truth):
        assert top_k_precision(truth, truth, 3) == 1.0

    def test_precision_detects_mistakes(self, truth):
        estimated = truth.copy()
        # Swap the importance of (0,1) and (0,3).
        estimated[0, 1], estimated[1, 0] = 0.001, 0.001
        estimated[0, 3], estimated[3, 0] = 0.50, 0.50
        assert top_k_precision(estimated, truth, 1) == 0.0
        assert top_k_precision(estimated, truth, 2) == 0.5

    def test_precision_uses_symmetrized_scores(self, truth):
        # Estimates may be slightly asymmetric; the larger orientation counts.
        estimated = truth.copy()
        estimated[1, 0] = 0.0
        assert top_k_precision(estimated, truth, 2) == 1.0

    def test_nearly_tied_scores_still_give_valid_fraction(self):
        rng = np.random.default_rng(0)
        truth = rng.random((10, 10))
        truth = (truth + truth.T) / 2
        np.fill_diagonal(truth, 1.0)
        estimated = truth + rng.normal(scale=1e-6, size=truth.shape)
        precision = top_k_precision(estimated, truth, 10)
        assert 0.0 <= precision <= 1.0
