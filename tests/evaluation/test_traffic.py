"""Unit tests for the realistic-traffic workload generator."""

from __future__ import annotations

import json

import pytest

from repro.evaluation.traffic import (
    TrafficPattern,
    generate_traffic,
    events_to_jsonl,
    replay_events,
    summarize_events,
    traffic_sources,
)
from repro.exceptions import ParameterError
from repro.graphs import generators
from repro.service import ServiceConfig, SimRankService
from repro.service.wire import decode_envelope

NODE_COUNTS = {"GrQc": 120, "HepTh": 80}


class TestTrafficPattern:
    def test_defaults_validate(self):
        pattern = TrafficPattern()
        assert pattern.single_pair_fraction == pytest.approx(0.20)

    def test_as_dict_round_trips(self):
        pattern = TrafficPattern(seed=5, pair_mode="cold", source_span=16)
        rebuilt = TrafficPattern(**pattern.as_dict())
        assert rebuilt == pattern

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_queries": -1},
            {"zipf_exponent": 0.0},
            {"hot_set_size": 0},
            {"drift_every": -1},
            {"burst_hot_bias": 1.5},
            {"tail_fraction": -0.1},
            {"top_k_fraction": 0.8, "single_source_fraction": 0.4},
            {"k": 0},
            {"source_region": 0.0},
            {"source_region": 1.2},
            {"source_span": 1},
            {"pair_mode": "lukewarm"},
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ParameterError):
            TrafficPattern(**kwargs)


class TestGenerateTraffic:
    def test_deterministic_for_same_seed(self):
        pattern = TrafficPattern(num_queries=300, seed=11)
        first = generate_traffic(NODE_COUNTS, pattern)
        second = generate_traffic(NODE_COUNTS, pattern)
        assert [e.to_wire() for e in first] == [e.to_wire() for e in second]

    def test_different_seeds_differ(self):
        base = TrafficPattern(num_queries=300, seed=0)
        other = TrafficPattern(num_queries=300, seed=1)
        assert [e.to_wire() for e in generate_traffic(NODE_COUNTS, base)] != [
            e.to_wire() for e in generate_traffic(NODE_COUNTS, other)
        ]

    def test_stream_shape(self):
        pattern = TrafficPattern(num_queries=400, seed=2)
        events = generate_traffic(NODE_COUNTS, pattern)
        assert len(events) == 400
        assert [e.index for e in events] == list(range(400))
        summary = summarize_events(events)
        assert summary["num_queries"] == 400
        assert set(summary["by_dataset"]) == set(NODE_COUNTS)
        assert set(summary["by_kind"]) <= {
            "single_pair", "single_source", "top_k"
        }
        assert summary["by_phase"]["burst"] > 0
        assert summary["by_phase"]["steady"] > 0

    def test_zipf_skew_concentrates_traffic(self):
        # The top handful of sources must absorb far more than a uniform
        # share of vector-query traffic.
        pattern = TrafficPattern(
            num_queries=2000, seed=3, drift_every=0, burst_every=0,
            tail_fraction=0.0, source_span=100,
        )
        events = generate_traffic({"GrQc": 400}, pattern)
        counts: dict[int, int] = {}
        total = 0
        for event in events:
            node = getattr(event.query, "node", None)
            if node is not None:
                counts[node] = counts.get(node, 0) + 1
                total += 1
        top_share = sum(sorted(counts.values(), reverse=True)[:10]) / total
        assert top_share > 0.4  # uniform over 100 sources would give 0.10

    def test_drift_shifts_the_hot_set(self):
        quiet = dict(burst_every=0, tail_fraction=0.0, source_span=50)
        drifting = TrafficPattern(
            num_queries=2000, seed=4, drift_every=100, drift_step=7, **quiet
        )
        events = generate_traffic({"GrQc": 200}, drifting)
        half = len(events) // 2

        def top_sources(slice_):
            counts: dict[int, int] = {}
            for event in slice_:
                node = getattr(event.query, "node", None)
                if node is not None:
                    counts[node] = counts.get(node, 0) + 1
            return {
                node for node, _ in
                sorted(counts.items(), key=lambda kv: -kv[1])[:5]
            }

        assert top_sources(events[:half]) != top_sources(events[half:])

    def test_kind_mix_tracks_fractions(self):
        pattern = TrafficPattern(
            num_queries=3000, seed=5, top_k_fraction=0.5,
            single_source_fraction=0.25,
        )
        summary = summarize_events(generate_traffic(NODE_COUNTS, pattern))
        by_kind = summary["by_kind"]
        assert by_kind["top_k"] / 3000 == pytest.approx(0.5, abs=0.05)
        assert by_kind["single_source"] / 3000 == pytest.approx(0.25, abs=0.05)
        assert by_kind["single_pair"] / 3000 == pytest.approx(0.25, abs=0.05)

    def test_cold_pairs_stay_outside_the_source_region(self):
        pattern = TrafficPattern(
            num_queries=600, seed=6, pair_mode="cold", source_span=20,
            top_k_fraction=0.3, single_source_fraction=0.1,
        )
        events = generate_traffic({"GrQc": 100}, pattern)
        sources = set(traffic_sources(events).get("GrQc", []))
        assert sources  # vector queries exist and stay inside the span
        assert max(sources) < 20
        pair_nodes = {
            node
            for event in events
            if event.kind == "single_pair"
            for node in (event.query.node_u, event.query.node_v)
        }
        assert pair_nodes
        assert min(pair_nodes) >= 20
        assert sources.isdisjoint(pair_nodes)

    def test_wire_round_trip(self):
        pattern = TrafficPattern(num_queries=50, seed=7)
        events = generate_traffic(NODE_COUNTS, pattern)
        for line in events_to_jsonl(events).splitlines():
            envelope = decode_envelope(json.loads(line))
            assert envelope.request.kind in (
                "single_pair", "single_source", "top_k"
            )

    def test_rejects_empty_and_tiny_inputs(self):
        with pytest.raises(ParameterError):
            generate_traffic({}, TrafficPattern())
        with pytest.raises(ParameterError):
            generate_traffic({"tiny": 3}, TrafficPattern())
        with pytest.raises(ParameterError):
            # cold mode needs two nodes outside the region
            generate_traffic(
                {"x": 8}, TrafficPattern(pair_mode="cold", source_region=1.0)
            )


class TestReplay:
    def test_replay_through_a_service(self):
        graph = generators.cycle(16)
        service = SimRankService(ServiceConfig(backend="power"))
        service.open_dataset("ring", graph=graph)
        pattern = TrafficPattern(num_queries=40, seed=8)
        events = generate_traffic({"ring": graph.num_nodes}, pattern)
        results = replay_events(service, events)
        assert len(results) == 40
        assert all(result.ok for result in results)
        assert [r.kind for r in results] == [e.kind for e in events]


class TestMutationEvents:
    NODE_COUNTS = {"GrQc": 120}

    def pattern(self, **kwargs):
        kwargs.setdefault("num_queries", 300)
        kwargs.setdefault("seed", 21)
        kwargs.setdefault("mutation_fraction", 0.1)
        return TrafficPattern(**kwargs)

    def test_zero_fraction_reproduces_the_static_stream(self):
        static = generate_traffic(self.NODE_COUNTS, TrafficPattern(seed=21))
        gated = generate_traffic(
            self.NODE_COUNTS, TrafficPattern(seed=21, mutation_fraction=0.0)
        )
        assert [e.to_wire() for e in static] == [e.to_wire() for e in gated]
        assert all(e.kind != "mutate" for e in static)

    def test_mutate_events_appear_and_are_deterministic(self):
        events = generate_traffic(self.NODE_COUNTS, self.pattern())
        mutations = [e for e in events if e.kind == "mutate"]
        assert mutations, "a 10% mutation fraction must produce events"
        again = generate_traffic(self.NODE_COUNTS, self.pattern())
        assert [e.to_wire() for e in events] == [e.to_wire() for e in again]
        summary = summarize_events(events)
        assert summary["by_kind"]["mutate"] == len(mutations)

    def test_removals_only_target_stream_added_edges(self):
        events = generate_traffic(
            self.NODE_COUNTS, self.pattern(mutation_batch=2)
        )
        added, removed = set(), []
        for event in events:
            if event.kind != "mutate":
                continue
            for edge in event.query.remove:
                removed.append(tuple(edge))
                assert tuple(edge) in added, "removal of a foreign edge"
                added.discard(tuple(edge))
            added.update(map(tuple, event.query.add))
        assert removed, "the storm should oscillate, not only grow"

    def test_refreeze_every_nth_mutation(self):
        events = generate_traffic(
            self.NODE_COUNTS, self.pattern(mutation_refreeze_every=2)
        )
        flags = [e.query.refreeze for e in events if e.kind == "mutate"]
        assert any(flags)
        assert flags == [
            (i + 1) % 2 == 0 for i in range(len(flags))
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mutation_fraction": -0.1},
            {"mutation_fraction": 1.5},
            {"mutation_batch": 0},
            {"mutation_refreeze_every": -1},
        ],
    )
    def test_invalid_mutation_knobs_raise(self, kwargs):
        with pytest.raises(ParameterError):
            TrafficPattern(**kwargs)

    def test_replay_applies_mutations_through_the_service(self):
        graph = generators.two_level_community(3, 10, seed=7)
        service = SimRankService(ServiceConfig(backend="sling"))
        service.open_dataset("toy", graph=graph)
        pattern = TrafficPattern(
            num_queries=60, seed=4, mutation_fraction=0.1,
            mutation_refreeze_every=3,
        )
        events = generate_traffic({"toy": graph.num_nodes}, pattern)
        assert any(e.kind == "mutate" for e in events)
        results = replay_events(service, events)
        assert all(result.ok for result in results), [
            r.error for r in results if not r.ok
        ]
        acks = [r for r in results if r.kind == "mutate"]
        versions = [r.value["index_version"] for r in acks]
        assert versions == sorted(versions)
        assert service.statistics()["datasets"]["toy"]["index_version"] == max(
            versions
        )
        # Queries served after the first mutation carry its stamp.
        post = [
            r for r in results[results.index(acks[0]) + 1:] if r.kind != "mutate"
        ]
        assert post and all(r.index_version >= 1 for r in post)
