"""Unit tests for index persistence, disk-backed queries, out-of-core builds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError, StorageError
from repro.graphs import generators
from repro.sling import (
    DiskBackedIndex,
    SlingIndex,
    SlingParameters,
    load_index,
    out_of_core_build,
    save_index,
)
from repro.sling.storage import RECORD_BYTES

EPS = 0.1


@pytest.fixture(scope="module")
def graph():
    return generators.two_level_community(2, 12, seed=19)


@pytest.fixture(scope="module")
def built_index(graph):
    return SlingIndex(graph, epsilon=EPS, seed=5).build()


class TestSaveLoad:
    def test_roundtrip_preserves_queries(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        loaded = load_index(directory, graph)
        for pair in [(0, 1), (3, 20), (7, 7)]:
            assert loaded.single_pair(*pair) == pytest.approx(
                built_index.single_pair(*pair), abs=1e-9
            )
        assert np.allclose(
            loaded.correction_factors, built_index.correction_factors
        )

    def test_roundtrip_preserves_parameters(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        loaded = load_index(directory, graph)
        assert loaded.parameters == built_index.parameters

    def test_saving_unbuilt_index_rejected(self, graph, tmp_path):
        with pytest.raises(StorageError):
            save_index(SlingIndex(graph, epsilon=EPS), tmp_path / "index")

    def test_loading_against_wrong_graph_rejected(self, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        other_graph = generators.cycle(10)
        with pytest.raises(StorageError):
            load_index(directory, other_graph)

    def test_loading_missing_directory_rejected(self, graph, tmp_path):
        with pytest.raises(StorageError):
            load_index(tmp_path / "does-not-exist", graph)

    def test_corrupt_metadata_rejected(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        (directory / "sling_meta.json").write_text("{not json")
        with pytest.raises(StorageError):
            load_index(directory, graph)

    def test_missing_data_file_rejected(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        (directory / "sling_values.npy").unlink()
        with pytest.raises((StorageError, FileNotFoundError)):
            load_index(directory, graph)

    def test_missing_corrections_rejected(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        (directory / "sling_corrections.npy").unlink()
        with pytest.raises((StorageError, FileNotFoundError)):
            load_index(directory, graph)

    def test_metadata_only_directory_rejected_for_disk_backed(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        for column in directory.glob("sling_*.npy"):
            column.unlink()
        with pytest.raises((StorageError, FileNotFoundError)):
            DiskBackedIndex(directory, graph)

    def test_legacy_v1_npz_directory_still_loads(self, graph, built_index, tmp_path):
        """A format-version-1 directory (one compressed npz) stays readable."""
        import json

        import numpy as np

        directory = tmp_path / "v1"
        directory.mkdir()
        store = built_index.packed_store
        np.savez_compressed(
            directory / "sling_data.npz",
            corrections=built_index.correction_factors,
            reduced=np.zeros(0, dtype=bool),
            offsets=store.offsets,
            levels=store.levels,
            targets=store.targets,
            values=store.values,
        )
        params = built_index.parameters
        meta = {
            "format_version": 1,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "c": params.c,
            "epsilon": params.epsilon,
            "delta": params.delta,
            "epsilon_d": params.epsilon_d,
            "theta": params.theta,
            "delta_d": params.delta_d,
            "reduce_space": False,
            "enhance_accuracy": False,
        }
        (directory / "sling_meta.json").write_text(json.dumps(meta))
        loaded = load_index(directory, graph)
        for pair in [(0, 1), (3, 20), (7, 7)]:
            assert loaded.single_pair(*pair) == built_index.single_pair(*pair)
        disk = DiskBackedIndex(directory, graph)
        assert disk.single_pair(0, 1) == built_index.single_pair(0, 1)

    def test_roundtrip_with_optimizations(self, graph, tmp_path, ground_truth_cache):
        index = SlingIndex(
            graph, epsilon=EPS, seed=6, reduce_space=True, enhance_accuracy=True
        ).build()
        directory = save_index(index, tmp_path / "optimized")
        loaded = load_index(directory, graph)
        truth = ground_truth_cache(graph)
        assert np.abs(loaded.all_pairs() - truth).max() <= EPS


class TestDiskBackedIndex:
    def test_single_pair_matches_in_memory(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        disk = DiskBackedIndex(directory, graph)
        for pair in [(0, 1), (5, 18), (10, 10)]:
            assert disk.single_pair(*pair) == pytest.approx(
                built_index.single_pair(*pair), abs=1e-9
            )

    def test_single_source_matches_in_memory(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        disk = DiskBackedIndex(directory, graph)
        assert np.allclose(disk.single_source(2), built_index.single_source(2))

    def test_io_accounting(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        disk = DiskBackedIndex(directory, graph)
        assert disk.num_set_reads == 0
        disk.single_pair(0, 1)
        assert disk.num_set_reads == 2  # exactly two hitting sets per pair query
        disk.single_source(0)
        assert disk.num_set_reads == 3

    def test_io_accounting_has_no_lost_updates_under_threads(
        self, graph, built_index, tmp_path
    ):
        """Regression: the read counter used to be an unlocked ``+= 1``.

        Hammering one disk-backed index from several threads must account
        every hitting-set read exactly once (two per pair query), and the
        concurrently-computed scores must match the sequential answers.
        """
        import threading

        directory = save_index(built_index, tmp_path / "index")
        disk = DiskBackedIndex(directory, graph)
        pairs = [(u, (u + 7) % graph.num_nodes) for u in range(graph.num_nodes)]
        expected = {pair: disk.single_pair(*pair) for pair in pairs}
        baseline_reads = disk.num_set_reads

        num_threads, rounds = 8, 25
        observed: list[dict] = [dict() for _ in range(num_threads)]
        barrier = threading.Barrier(num_threads)

        def hammer(slot: int) -> None:
            barrier.wait()
            for _ in range(rounds):
                for pair in pairs:
                    observed[slot][pair] = disk.single_pair(*pair)

        threads = [
            threading.Thread(target=hammer, args=(slot,))
            for slot in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert disk.num_set_reads == baseline_reads + 2 * num_threads * rounds * len(pairs)
        for slot in range(num_threads):
            assert observed[slot] == expected

    def test_graph_mismatch_rejected(self, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        with pytest.raises(StorageError):
            DiskBackedIndex(directory, generators.cycle(5))

    def test_parameters_exposed(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        disk = DiskBackedIndex(directory, graph)
        assert disk.parameters.epsilon == built_index.parameters.epsilon

    def test_cascade_matches_in_memory_bitwise(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        disk = DiskBackedIndex(directory, graph)
        for node in (0, 7, 19):
            assert np.array_equal(
                disk.single_source(node, method="cascade"),
                built_index.single_source(node, method="cascade"),
            )

    def test_unknown_single_source_method_rejected(
        self, graph, built_index, tmp_path
    ):
        directory = save_index(built_index, tmp_path / "index")
        disk = DiskBackedIndex(directory, graph)
        with pytest.raises(ParameterError):
            disk.single_source(0, method="bogus")

    def test_top_k_matches_in_memory(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        disk = DiskBackedIndex(directory, graph)
        for node in (0, 4, 21):
            assert disk.top_k(node, 6) == built_index.top_k(node, 6)
        with pytest.raises(ParameterError):
            disk.top_k(0, 0)

    def test_top_k_bounded_matches_in_memory(self, graph, built_index, tmp_path):
        directory = save_index(built_index, tmp_path / "index")
        disk = DiskBackedIndex(directory, graph)
        for node in (0, 4, 21):
            from_disk = disk.top_k_bounded(node, 6)
            from_memory = built_index.top_k_bounded(node, 6)
            # Same store metadata, same corrections → same truncation
            # decision and same ranking on both paths.
            assert from_disk.ranked == from_memory.ranked
            assert from_disk.stop_level == from_memory.stop_level
            assert from_disk.truncated == from_memory.truncated
            assert from_disk.tail_bound == pytest.approx(from_memory.tail_bound)
        assert (
            disk.top_k(2, 6, method="bounded") == disk.top_k_bounded(2, 6).ranked
        )


class TestOutOfCoreBuild:
    @pytest.fixture(scope="class")
    def params(self, graph):
        return SlingParameters.from_accuracy_target(
            num_nodes=graph.num_nodes, epsilon=EPS
        )

    def test_build_produces_queryable_index(
        self, graph, params, tmp_path, ground_truth_cache
    ):
        report = out_of_core_build(
            graph, params, tmp_path / "ooc", buffer_bytes=4096, seed=0
        )
        assert report.num_records > 0
        loaded = load_index(report.directory, graph)
        truth = ground_truth_cache(graph)
        assert np.abs(loaded.all_pairs() - truth).max() <= EPS

    def test_small_buffer_spills_multiple_runs(self, graph, params, tmp_path):
        report = out_of_core_build(
            graph, params, tmp_path / "small", buffer_bytes=RECORD_BYTES * 16, seed=0
        )
        assert report.num_spill_runs > 1

    def test_large_buffer_uses_single_run(self, graph, params, tmp_path):
        report = out_of_core_build(
            graph, params, tmp_path / "large", buffer_bytes=64 * 1024 * 1024, seed=0
        )
        assert report.num_spill_runs == 1

    def test_buffer_size_does_not_change_results(self, graph, params, tmp_path):
        small = out_of_core_build(
            graph, params, tmp_path / "a", buffer_bytes=RECORD_BYTES * 8, seed=0
        )
        large = out_of_core_build(
            graph, params, tmp_path / "b", buffer_bytes=1 << 22, seed=0
        )
        small_index = load_index(small.directory, graph)
        large_index = load_index(large.directory, graph)
        for node in range(graph.num_nodes):
            assert small_index.hitting_sets[node] == large_index.hitting_sets[node]

    def test_invalid_buffer_rejected(self, graph, params, tmp_path):
        with pytest.raises(ParameterError):
            out_of_core_build(graph, params, tmp_path / "bad", buffer_bytes=1)

    def test_run_files_are_cleaned_up(self, graph, params, tmp_path):
        work = tmp_path / "cleanup"
        out_of_core_build(graph, params, work, buffer_bytes=RECORD_BYTES * 8, seed=0)
        assert list((work / "runs").glob("*.bin")) == []
