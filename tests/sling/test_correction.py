"""Unit tests for correction-factor estimation (Equation 14, Algorithms 1/4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graphs import generators
from repro.sling import (
    SqrtCWalker,
    estimate_all_correction_factors,
    estimate_correction_factor,
    exact_correction_factors,
)
from repro.baselines import simrank_matrix


class TestStructuralShortCircuits:
    def test_zero_in_degree_gives_one(self, decay):
        graph = generators.path(3)  # node 0 has no in-neighbours
        walker = SqrtCWalker(graph, c=decay, seed=0)
        estimate = estimate_correction_factor(walker, 0, 0.01, 0.01)
        assert estimate.value == 1.0
        assert estimate.num_samples == 0

    def test_single_in_neighbor_gives_one_minus_c(self, decay):
        graph = generators.path(3)  # node 1 has exactly one in-neighbour
        walker = SqrtCWalker(graph, c=decay, seed=0)
        estimate = estimate_correction_factor(walker, 1, 0.01, 0.01)
        assert estimate.value == pytest.approx(1.0 - decay)
        assert estimate.num_samples == 0


class TestSampledEstimates:
    def test_matches_exact_on_outward_star(self, decay):
        # The centre of an outward star: I(center) is empty -> d = 1.
        # A node fed by two leaves of an outward star... use a custom graph:
        # two leaves (1, 2) point at node 3; leaves have common parent 0.
        from repro.graphs import DiGraph

        graph = DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        truth = simrank_matrix(graph, c=decay, num_iterations=40)
        exact = exact_correction_factors(graph, truth, decay)
        walker = SqrtCWalker(graph, c=decay, seed=1)
        estimate = estimate_correction_factor(walker, 3, epsilon_d=0.02, delta_d=0.01)
        assert estimate.value == pytest.approx(exact[3], abs=0.02)

    def test_all_nodes_within_epsilon_of_exact(self, community_graph, decay):
        truth = simrank_matrix(community_graph, c=decay, num_iterations=40)
        exact = exact_correction_factors(community_graph, truth, decay)
        walker = SqrtCWalker(community_graph, c=decay, seed=2)
        estimated = estimate_all_correction_factors(
            walker, epsilon_d=0.03, delta_d=0.001
        )
        assert np.all(np.abs(estimated - exact) <= 0.03 + 1e-9)

    def test_fixed_and_adaptive_agree(self, decay):
        graph = generators.complete(5)
        walker_a = SqrtCWalker(graph, c=decay, seed=3)
        walker_b = SqrtCWalker(graph, c=decay, seed=3)
        adaptive = estimate_correction_factor(
            walker_a, 0, 0.03, 0.01, adaptive=True
        ).value
        fixed = estimate_correction_factor(
            walker_b, 0, 0.03, 0.01, adaptive=False
        ).value
        assert adaptive == pytest.approx(fixed, abs=0.06)

    def test_values_always_in_unit_interval(self, scale_free_graph, decay):
        walker = SqrtCWalker(scale_free_graph, c=decay, seed=4)
        values = estimate_all_correction_factors(walker, 0.05, 0.01)
        assert np.all(values >= 0.0)
        assert np.all(values <= 1.0)

    def test_subset_of_nodes_leaves_others_nan(self, decay):
        graph = generators.cycle(6)
        walker = SqrtCWalker(graph, c=decay, seed=5)
        values = estimate_all_correction_factors(walker, 0.05, 0.01, nodes=[0, 1])
        assert not np.isnan(values[0]) and not np.isnan(values[1])
        assert np.isnan(values[2:]).all()

    def test_invalid_parameters(self, decay):
        graph = generators.cycle(4)
        walker = SqrtCWalker(graph, c=decay, seed=0)
        with pytest.raises(ParameterError):
            estimate_correction_factor(walker, 0, epsilon_d=0.0, delta_d=0.1)
        with pytest.raises(ParameterError):
            estimate_correction_factor(walker, 0, epsilon_d=0.1, delta_d=0.0)


class TestExactCorrectionFactors:
    def test_cycle_nodes_have_one_minus_c(self, directed_cycle, decay):
        truth = simrank_matrix(directed_cycle, c=decay, num_iterations=40)
        exact = exact_correction_factors(directed_cycle, truth, decay)
        # Every cycle node has exactly one in-neighbour: d = 1 - c.
        assert np.allclose(exact, 1.0 - decay)

    def test_zero_in_degree_nodes_have_one(self, dag_graph, decay):
        truth = simrank_matrix(dag_graph, c=decay, num_iterations=40)
        exact = exact_correction_factors(dag_graph, truth, decay)
        sources = np.flatnonzero(dag_graph.in_degrees() == 0)
        assert np.allclose(exact[sources], 1.0)

    def test_reconstructs_simrank_via_lemma4(self, decay):
        # Lemma 4/5: S == sum_l c^l (P^l)^T D P^l with D = diag(d_k).
        graph = generators.two_level_community(2, 6, seed=5)
        truth = simrank_matrix(graph, c=decay, num_iterations=60)
        exact = exact_correction_factors(graph, truth, decay)
        transition = graph.transition_matrix().toarray()
        reconstruction = np.zeros_like(truth)
        power = np.eye(graph.num_nodes)
        for level in range(60):
            reconstruction += (decay**level) * power.T @ np.diag(exact) @ power
            power = transition @ power
        assert np.allclose(reconstruction, truth, atol=1e-3)

    def test_wrong_matrix_shape_rejected(self, decay):
        graph = generators.cycle(4)
        with pytest.raises(ParameterError):
            exact_correction_factors(graph, np.eye(3), decay)

    def test_invalid_decay_rejected(self):
        graph = generators.cycle(4)
        with pytest.raises(ParameterError):
            exact_correction_factors(graph, np.eye(4), 1.5)
