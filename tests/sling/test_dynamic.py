"""Unit tests for the dynamic SLING index: incremental mutation + re-freeze."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphFormatError, IndexNotBuiltError, ParameterError
from repro.graphs import DiGraph, generators
from repro.sling import DynamicSlingIndex, SlingIndex

EPS = 0.05
SEED = 13


@pytest.fixture()
def community_dynamic():
    graph = generators.two_level_community(3, 10, seed=7)
    return DynamicSlingIndex(graph, epsilon=EPS, seed=SEED).build()


def rebuilt(graph, **kwargs):
    """From-scratch plain SLING index on ``graph`` with the suite's recipe."""
    kwargs.setdefault("epsilon", EPS)
    kwargs.setdefault("seed", SEED)
    return SlingIndex(graph, **kwargs).build()


class TestLifecycle:
    def test_query_before_build_raises(self):
        index = DynamicSlingIndex(generators.cycle(5), epsilon=EPS)
        assert not index.is_built
        with pytest.raises(IndexNotBuiltError):
            index.single_pair(0, 1)
        with pytest.raises(IndexNotBuiltError):
            index.mutate(added=[(0, 2)])
        with pytest.raises(IndexNotBuiltError):
            index.refreeze()

    def test_build_opens_generation_zero(self, community_dynamic):
        index = community_dynamic
        assert index.is_built
        assert index.version == 0
        assert not index.is_dirty
        assert index.staleness_bound() == 0.0
        stats = index.statistics()
        assert stats["index_version"] == 0
        assert stats["dirty"] is False
        assert stats["overlay_entries"] == 0
        assert stats["mutations"] == 0

    def test_build_is_idempotent(self, community_dynamic):
        assert community_dynamic.build() is community_dynamic
        assert community_dynamic.version == 0

    def test_matches_plain_index_before_any_mutation(self, community_dynamic):
        plain = rebuilt(community_dynamic.graph)
        for node in (0, 7, 29):
            assert np.array_equal(
                community_dynamic.single_source(node), plain.single_source(node)
            )


class TestFromIndex:
    def test_adopts_built_index_without_rebuilding(self):
        graph = generators.two_level_community(2, 8, seed=3)
        plain = rebuilt(graph)
        dynamic = DynamicSlingIndex.from_index(plain)
        assert dynamic.is_built
        assert dynamic.version == 0
        assert dynamic.packed_store is plain.packed_store
        assert np.array_equal(dynamic.single_source(0), plain.single_source(0))

    def test_rejects_reduce_space_and_enhance_accuracy(self):
        graph = generators.two_level_community(2, 8, seed=3)
        for flag in ("reduce_space", "enhance_accuracy"):
            plain = SlingIndex(graph, epsilon=EPS, seed=SEED, **{flag: True}).build()
            with pytest.raises(ParameterError):
                DynamicSlingIndex.from_index(plain)


class TestMutate:
    def test_add_edge_bumps_version_and_certifies_staleness(self, community_dynamic):
        index = community_dynamic
        graph = index.graph
        report = index.add_edges([(0, 17)])
        assert report.edges_added == 1
        assert report.edges_removed == 0
        assert report.version == 1
        assert report.epsilon_stale == pytest.approx(2 * EPS)
        assert index.version == 1
        assert index.is_dirty
        assert index.staleness_bound() == pytest.approx(2 * EPS)
        assert index.graph.num_edges == graph.num_edges + 1
        assert index.graph.has_edge(0, 17)

    def test_answers_stay_within_staleness_bound(self, community_dynamic):
        index = community_dynamic
        index.mutate(added=[(0, 17), (5, 23)], removed=[(1, 2)])
        fresh = rebuilt(index.graph)
        bound = index.staleness_bound()
        for node in range(index.graph.num_nodes):
            deviation = np.max(
                np.abs(index.single_source(node) - fresh.single_source(node))
            )
            assert deviation <= bound

    def test_unaffected_sources_answer_bitwise_identically(self):
        # Two disconnected 8-cycles: mutating inside one component cannot
        # implicate the other component's sources.
        edges = [(u, (u + 1) % 8) for u in range(8)]
        edges += [(8 + u, 8 + (u + 1) % 8) for u in range(8)]
        index = DynamicSlingIndex(
            DiGraph(16, edges), epsilon=EPS, seed=SEED
        ).build()
        before = {
            node: index.single_source(node)
            for node in range(index.graph.num_nodes)
        }
        report = index.add_edges([(0, 4)])
        affected = set(report.affected_sources)
        untouched = set(range(index.graph.num_nodes)) - affected
        assert untouched, "mutation should not implicate every source here"
        for node in untouched:
            assert np.array_equal(index.single_source(node), before[node])

    def test_noop_mutation_does_not_bump_version(self, community_dynamic):
        index = community_dynamic
        existing = next(iter(index.graph.edges()))
        report = index.mutate(added=[tuple(existing)], removed=[(0, 17)])
        assert report.edges_added == 0
        assert report.edges_removed == 0
        assert report.version == 0
        assert not index.is_dirty
        assert index.staleness_bound() == 0.0

    def test_remove_then_readd_round_trips_through_refreeze(self, community_dynamic):
        index = community_dynamic
        edge = tuple(next(iter(index.graph.edges())))
        index.remove_edges([edge])
        assert not index.graph.has_edge(*edge)
        index.add_edges([edge])
        assert index.graph.has_edge(*edge)
        assert index.version == 2
        assert index.refreeze()
        fresh = rebuilt(index.graph)
        for node in (edge[0], edge[1], 0):
            assert np.array_equal(index.single_source(node), fresh.single_source(node))

    def test_edge_in_both_added_and_removed_rejected(self, community_dynamic):
        with pytest.raises(GraphFormatError):
            community_dynamic.mutate(added=[(0, 17)], removed=[(0, 17)])

    def test_mutation_accepts_generators(self, community_dynamic):
        report = community_dynamic.mutate(added=((u, u + 15) for u in (0, 1)))
        assert report.edges_added == 2


class TestRefreeze:
    def test_refreeze_restores_bitwise_rebuild_parity(self, community_dynamic):
        index = community_dynamic
        index.mutate(added=[(0, 17), (3, 28)], removed=[(1, 2)])
        assert index.refreeze()
        assert not index.is_dirty
        assert index.staleness_bound() == 0.0
        assert index.version == 2  # one mutation batch + one re-freeze
        fresh = rebuilt(index.graph)
        assert np.array_equal(index.correction_factors, fresh.correction_factors)
        for node in range(index.graph.num_nodes):
            assert np.array_equal(index.single_source(node), fresh.single_source(node))
            levels, targets, values = index.packed_store.node_entries(node)
            f_levels, f_targets, f_values = fresh.packed_store.node_entries(node)
            assert np.array_equal(levels, f_levels)
            assert np.array_equal(targets, f_targets)
            assert np.array_equal(values, f_values)

    def test_refreeze_on_clean_index_is_noop(self, community_dynamic):
        version = community_dynamic.version
        # "True" means a clean generation is serving — trivially so here —
        # and the no-op must not burn a version number.
        assert community_dynamic.refreeze()
        assert community_dynamic.version == version

    def test_refreeze_async_compacts_in_background(self, community_dynamic):
        index = community_dynamic
        index.add_edges([(0, 17)])
        thread = index.refreeze_async()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert not index.is_dirty
        assert index.staleness_bound() == 0.0

    def test_queries_remain_servable_during_staleness_window(self, community_dynamic):
        index = community_dynamic
        index.add_edges([(0, 17)])
        value = index.single_pair(0, 17)
        assert 0.0 <= value <= 1.0
        ranking = index.top_k(0, 5)
        assert 0 < len(ranking) <= 5
        index.refreeze()
        ranking_after = index.top_k(0, 5)
        assert all(score >= 0.0 for _, score in ranking_after)


class TestQuerySurface:
    def test_single_source_methods_agree_within_epsilon(self, community_dynamic):
        index = community_dynamic
        index.add_edges([(0, 17)])
        for node in (0, 17, 29):
            push = index.single_source(node, method="local_push")
            cascade = index.single_source(node, method="cascade")
            assert np.abs(push - cascade).max() <= EPS

    def test_unknown_method_rejected(self, community_dynamic):
        with pytest.raises(ParameterError):
            community_dynamic.single_source(0, method="magic")

    def test_top_k_bounded_falls_back_while_dirty(self, community_dynamic):
        index = community_dynamic
        index.add_edges([(0, 17)])
        assert index.top_k(0, 5, method="bounded", budget=64) == index.top_k(
            0, 5, method="local_push"
        )

    def test_top_k_rejects_nonpositive_k(self, community_dynamic):
        with pytest.raises(ParameterError):
            community_dynamic.top_k(0, 0)

    def test_size_accessors_positive(self, community_dynamic):
        index = community_dynamic
        index.add_edges([(0, 17)])
        assert index.index_size_bytes() > 0
        assert index.resident_bytes() > 0
        assert index.average_set_size() > 0.0
