"""Unit tests for the Section-5.2 / 5.3 optimizations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graphs import generators
from repro.sling import (
    AccuracyEnhancer,
    SlingIndex,
    SpaceReduction,
    build_hitting_sets,
    exact_near_hops,
    neighborhood_weight,
)

EPS = 0.05
SQRT_C = 0.6**0.5


@pytest.fixture(scope="module")
def graph():
    return generators.two_level_community(3, 10, seed=13)


@pytest.fixture(scope="module")
def truth(graph, ground_truth_cache):
    return ground_truth_cache(graph)


class TestSpaceReduction:
    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            SpaceReduction(theta=0.0)
        with pytest.raises(ParameterError):
            SpaceReduction(theta=0.01, gamma=0.0)

    def test_weight_budget(self):
        reduction = SpaceReduction(theta=0.001, gamma=10.0)
        assert reduction.weight_budget == pytest.approx(10_000)

    def test_is_reducible_uses_neighborhood_weight(self, graph):
        reduction = SpaceReduction(theta=0.5, gamma=1.0)  # budget = 2
        for node in graph.nodes():
            expected = neighborhood_weight(graph, node) <= 2
            assert reduction.is_reducible(graph, node) == expected

    def test_apply_drops_levels_one_and_two(self, graph):
        hitting_sets = build_hitting_sets(graph, SQRT_C, theta=0.01)
        reduction = SpaceReduction(theta=0.01, gamma=1e9)  # everything reducible
        reduced = reduction.apply(graph, hitting_sets)
        assert reduced.all()
        for hitting_set in hitting_sets:
            assert not hitting_set.level_items(1)
            assert not hitting_set.level_items(2)

    def test_apply_reduces_total_size(self, graph):
        baseline = build_hitting_sets(graph, SQRT_C, theta=0.01)
        reduced_sets = build_hitting_sets(graph, SQRT_C, theta=0.01)
        SpaceReduction(theta=0.01, gamma=1e9).apply(graph, reduced_sets)
        assert sum(len(hs) for hs in reduced_sets) < sum(len(hs) for hs in baseline)

    def test_reconstruct_restores_exact_near_hops(self, graph):
        hitting_sets = build_hitting_sets(graph, SQRT_C, theta=0.01)
        reduction = SpaceReduction(theta=0.01, gamma=1e9)
        reduction.apply(graph, hitting_sets)
        node = 5
        rebuilt = reduction.reconstruct(graph, node, hitting_sets[node], SQRT_C)
        exact = exact_near_hops(graph, node, SQRT_C)
        for level in (1, 2):
            for target, value in exact.get(level, {}).items():
                assert rebuilt.get(level, target) == pytest.approx(value)

    def test_index_with_reduction_stays_within_epsilon(self, graph, truth):
        index = SlingIndex(graph, epsilon=EPS, seed=1, reduce_space=True).build()
        assert index.build_statistics.num_reduced_nodes > 0
        estimated = index.all_pairs()
        assert np.abs(estimated - truth).max() <= EPS

    def test_reduction_shrinks_index_size(self, graph):
        plain = SlingIndex(graph, epsilon=EPS, seed=1).build()
        reduced = SlingIndex(graph, epsilon=EPS, seed=1, reduce_space=True).build()
        assert reduced.index_size_bytes() < plain.index_size_bytes()

    def test_reduced_single_source_matches_truth(self, graph, truth):
        index = SlingIndex(graph, epsilon=EPS, seed=2, reduce_space=True).build()
        scores = index.single_source(3)
        assert np.abs(scores - truth[3]).max() <= EPS


class TestAccuracyEnhancer:
    def test_invalid_parameters(self, graph):
        with pytest.raises(ParameterError):
            AccuracyEnhancer(graph, epsilon=0.0, sqrt_c=SQRT_C)
        with pytest.raises(ParameterError):
            AccuracyEnhancer(graph, epsilon=0.1, sqrt_c=1.5)

    def test_mark_budget_is_inverse_sqrt_epsilon(self, graph):
        enhancer = AccuracyEnhancer(graph, epsilon=0.04, sqrt_c=SQRT_C)
        assert enhancer.mark_budget == 5

    def test_marks_respect_budget_and_degree_cutoff(self, graph):
        hitting_sets = build_hitting_sets(graph, SQRT_C, theta=0.01)
        enhancer = AccuracyEnhancer(graph, epsilon=EPS, sqrt_c=SQRT_C)
        enhancer.mark_all(hitting_sets)
        in_degrees = graph.in_degrees()
        for node in graph.nodes():
            marks = enhancer.marks_for(node)
            assert len(marks) <= enhancer.mark_budget
            for _, target, _ in marks:
                assert in_degrees[target] <= enhancer.mark_budget

    def test_enhanced_set_is_superset(self, graph):
        hitting_sets = build_hitting_sets(graph, SQRT_C, theta=0.01)
        enhancer = AccuracyEnhancer(graph, epsilon=EPS, sqrt_c=SQRT_C)
        enhancer.mark_all(hitting_sets)
        node = 4
        enhanced = enhancer.enhance(node, hitting_sets[node])
        assert len(enhanced) >= len(hitting_sets[node])
        for level, target, value in hitting_sets[node].items():
            assert enhanced.get(level, target) == pytest.approx(value)

    def test_generated_values_never_exceed_exact(self, graph):
        # Section 5.3 argues the generated approximations stay below the true
        # hitting probabilities; verify against the exact matrix values.
        theta = 0.02
        hitting_sets = build_hitting_sets(graph, SQRT_C, theta)
        enhancer = AccuracyEnhancer(graph, epsilon=EPS, sqrt_c=SQRT_C)
        enhancer.mark_all(hitting_sets)
        scaled_transition = graph.transition_matrix().toarray() * SQRT_C
        node = 7
        enhanced = enhancer.enhance(node, hitting_sets[node])
        # h^(l)(node, k) = (R^l e_node)[k] with R = sqrt(c) P  (Lemma 5).
        exact_level = np.eye(graph.num_nodes)[node]
        for level in range(enhanced.max_level() + 1):
            for target, value in enhanced.level_items(level).items():
                assert value <= exact_level[target] + 1e-9
            exact_level = scaled_transition @ exact_level

    def test_enhancement_does_not_hurt_accuracy(self, graph, truth):
        plain = SlingIndex(graph, epsilon=EPS, seed=3).build()
        enhanced = SlingIndex(
            graph, epsilon=EPS, seed=3, enhance_accuracy=True
        ).build()
        plain_error = np.abs(plain.all_pairs() - truth).max()
        enhanced_error = np.abs(enhanced.all_pairs() - truth).max()
        # The enhanced hitting probabilities are closer to the true values, so
        # the overall error should not get materially worse (the correction
        # factors are shared between the two indexes) and must stay within ε.
        assert enhanced_error <= EPS
        assert enhanced_error <= plain_error + 0.005

    def test_enhancement_with_space_reduction_combined(self, graph, truth):
        index = SlingIndex(
            graph, epsilon=EPS, seed=4, reduce_space=True, enhance_accuracy=True
        ).build()
        assert np.abs(index.all_pairs() - truth).max() <= EPS

    def test_no_marks_returns_same_object(self, graph):
        hitting_sets = build_hitting_sets(graph, SQRT_C, theta=0.01)
        enhancer = AccuracyEnhancer(graph, epsilon=EPS, sqrt_c=SQRT_C)
        # mark_all was never called, so every node is unmarked.
        assert enhancer.enhance(0, hitting_sets[0]) is hitting_sets[0]
