"""Unit tests for the parallel build path (Section 5.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graphs import generators
from repro.sling import SlingIndex, SlingParameters, parallel_build
from repro.sling.parallel import build_with_thread_count, node_chunks

EPS = 0.1


class TestNodeChunks:
    def test_chunks_cover_range_without_overlap(self):
        chunks = node_chunks(103, 7)
        covered = [node for chunk in chunks for node in chunk]
        assert covered == list(range(103))

    def test_no_more_chunks_than_requested(self):
        assert len(node_chunks(100, 4)) <= 4
        assert len(node_chunks(3, 10)) <= 3

    def test_single_chunk(self):
        chunks = node_chunks(10, 1)
        assert len(chunks) == 1
        assert list(chunks[0]) == list(range(10))

    def test_empty_range(self):
        assert node_chunks(0, 4) == []

    def test_invalid_arguments(self):
        with pytest.raises(ParameterError):
            node_chunks(-1, 2)
        with pytest.raises(ParameterError):
            node_chunks(10, 0)


class TestParallelBuild:
    @pytest.fixture(scope="class")
    def graph(self):
        return generators.two_level_community(2, 12, seed=17)

    @pytest.fixture(scope="class")
    def params(self, graph):
        return SlingParameters.from_accuracy_target(
            num_nodes=graph.num_nodes, epsilon=EPS
        )

    def test_parallel_matches_sequential_hitting_sets(self, graph, params):
        corrections, hitting_sets, _, _ = parallel_build(
            graph, params, workers=2, seed=0
        )
        sequential = SlingIndex(graph, parameters=params, seed=0).build()
        # The hitting-set construction is deterministic, so parallel and
        # sequential results must be identical.
        for parallel_set, sequential_set in zip(hitting_sets, sequential.hitting_sets):
            assert parallel_set == sequential_set
        assert not np.isnan(corrections).any()

    def test_parallel_corrections_within_epsilon_of_exact(
        self, graph, params, ground_truth_cache
    ):
        from repro.sling import exact_correction_factors

        corrections, _, _, _ = parallel_build(graph, params, workers=2, seed=1)
        exact = exact_correction_factors(graph, ground_truth_cache(graph), params.c)
        assert np.abs(corrections - exact).max() <= params.epsilon_d + 1e-9

    def test_index_built_with_workers_answers_queries(self, graph, ground_truth_cache):
        index = SlingIndex(graph, epsilon=EPS, seed=2).build(workers=2)
        truth = ground_truth_cache(graph)
        estimated = index.all_pairs()
        assert np.abs(estimated - truth).max() <= EPS
        assert index.build_statistics.workers == 2

    def test_invalid_worker_count(self, graph, params):
        with pytest.raises(ParameterError):
            parallel_build(graph, params, workers=0)

    def test_build_with_thread_count_returns_positive_time(self, graph, params):
        elapsed_single = build_with_thread_count(graph, params, 1, seed=0)
        elapsed_double = build_with_thread_count(graph, params, 2, seed=0)
        assert elapsed_single > 0.0
        assert elapsed_double > 0.0
