"""Unit tests for √c-walk sampling (Lemma 3 machinery)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import NodeNotFoundError, ParameterError
from repro.graphs import generators
from repro.sling import SqrtCWalker, walks_meet


class TestWalksMeet:
    def test_meeting_at_step_zero(self):
        assert walks_meet([1, 2], [1, 5])

    def test_meeting_at_later_step(self):
        assert walks_meet([1, 2, 3], [4, 5, 3])

    def test_no_meeting(self):
        assert not walks_meet([1, 2, 3], [4, 5, 6])

    def test_different_lengths_only_compare_shared_steps(self):
        assert not walks_meet([1, 2, 3, 7], [4, 5])
        assert walks_meet([1, 2], [4, 2, 9])

    def test_empty_walks_never_meet(self):
        assert not walks_meet([], [1, 2])


class TestWalkerConstruction:
    def test_invalid_decay_rejected(self):
        graph = generators.cycle(4)
        with pytest.raises(ParameterError):
            SqrtCWalker(graph, c=0.0)
        with pytest.raises(ParameterError):
            SqrtCWalker(graph, c=1.0)

    def test_invalid_max_length_rejected(self):
        graph = generators.cycle(4)
        with pytest.raises(ParameterError):
            SqrtCWalker(graph, max_length=0)

    def test_properties(self):
        graph = generators.cycle(4)
        walker = SqrtCWalker(graph, c=0.64, seed=0)
        assert walker.c == pytest.approx(0.64)
        assert walker.sqrt_c == pytest.approx(0.8)
        assert walker.graph is graph
        assert walker.expected_length == pytest.approx(0.8 / 0.2)


class TestWalkSampling:
    def test_walk_starts_at_start_node(self):
        graph = generators.cycle(5)
        walker = SqrtCWalker(graph, seed=1)
        for start in graph.nodes():
            assert walker.walk(start)[0] == start

    def test_walk_follows_in_edges(self):
        graph = generators.cycle(5)
        walker = SqrtCWalker(graph, seed=2)
        for _ in range(50):
            walk = walker.walk(0)
            for step, node in enumerate(walk[1:], start=1):
                previous = walk[step - 1]
                assert graph.has_edge(node, previous)

    def test_walk_stops_at_zero_indegree_node(self):
        graph = generators.path(4)  # 0 -> 1 -> 2 -> 3; node 0 has no in-edges
        walker = SqrtCWalker(graph, seed=3)
        for _ in range(50):
            walk = walker.walk(0)
            assert walk == [0]

    def test_walk_length_distribution_matches_geometric(self):
        # On a cycle every node has an in-neighbour, so length after step 0 is
        # geometric with success probability 1 - sqrt(c).
        graph = generators.cycle(8)
        walker = SqrtCWalker(graph, c=0.6, seed=4)
        lengths = [len(walker.walk(0)) - 1 for _ in range(4000)]
        expected = math.sqrt(0.6) / (1.0 - math.sqrt(0.6))
        assert np.mean(lengths) == pytest.approx(expected, rel=0.1)

    def test_unknown_start_raises(self):
        graph = generators.cycle(3)
        walker = SqrtCWalker(graph, seed=0)
        with pytest.raises(NodeNotFoundError):
            walker.walk(10)

    def test_seeded_walks_are_reproducible(self):
        graph = generators.preferential_attachment(30, 2, seed=1)
        first = SqrtCWalker(graph, seed=42)
        second = SqrtCWalker(graph, seed=42)
        assert [first.walk(5) for _ in range(10)] == [second.walk(5) for _ in range(10)]


class TestPairMeeting:
    def test_identical_starts_always_meet(self):
        graph = generators.cycle(5)
        walker = SqrtCWalker(graph, seed=0)
        assert all(walker.walk_pair_meets(2, 2) for _ in range(20))

    def test_pair_on_cycle_rarely_meets(self):
        # On a directed cycle distinct nodes keep a constant offset, so their
        # walks can never meet: SimRank is exactly 0.
        graph = generators.cycle(6)
        walker = SqrtCWalker(graph, seed=1)
        assert not any(walker.walk_pair_meets(0, 3) for _ in range(200))

    def test_meeting_step_none_when_no_meeting(self):
        graph = generators.cycle(6)
        walker = SqrtCWalker(graph, seed=2)
        assert walker.meeting_step(0, 3) is None

    def test_meeting_step_zero_for_identical(self):
        graph = generators.cycle(6)
        walker = SqrtCWalker(graph, seed=2)
        assert walker.meeting_step(4, 4) == 0

    def test_count_meeting_pairs_matches_scalar_semantics(self):
        graph = generators.star(6, inward=False)
        walker = SqrtCWalker(graph, c=0.6, seed=3)
        starts_a = np.full(3000, 1)
        starts_b = np.full(3000, 2)
        # Leaves of an outward star have SimRank exactly c = 0.6.
        frequency = walker.count_meeting_pairs(starts_a, starts_b) / 3000
        assert frequency == pytest.approx(0.6, abs=0.04)

    def test_count_meeting_pairs_shape_mismatch(self):
        graph = generators.cycle(4)
        walker = SqrtCWalker(graph, seed=0)
        with pytest.raises(ParameterError):
            walker.count_meeting_pairs(np.array([0, 1]), np.array([2]))

    def test_count_meeting_pairs_identical_nodes(self):
        graph = generators.cycle(4)
        walker = SqrtCWalker(graph, seed=0)
        assert walker.count_meeting_pairs(np.array([1, 2]), np.array([1, 2])) == 2


class TestSimRankEstimation:
    def test_estimate_simrank_on_outward_star(self, decay):
        graph = generators.star(5, inward=False)
        walker = SqrtCWalker(graph, c=decay, seed=5)
        estimate = walker.estimate_simrank(1, 2, 4000)
        assert estimate == pytest.approx(decay, abs=0.04)

    def test_estimate_simrank_identical_nodes(self):
        graph = generators.cycle(4)
        walker = SqrtCWalker(graph, seed=0)
        assert walker.estimate_simrank(2, 2, 10) == 1.0

    def test_estimate_simrank_zero_on_cycle(self):
        graph = generators.cycle(5)
        walker = SqrtCWalker(graph, seed=0)
        assert walker.estimate_simrank(0, 2, 500) == 0.0

    def test_estimate_simrank_invalid_samples(self):
        graph = generators.cycle(4)
        walker = SqrtCWalker(graph, seed=0)
        with pytest.raises(ParameterError):
            walker.estimate_simrank(0, 1, 0)

    def test_hitting_probabilities_level_zero_is_one(self):
        graph = generators.preferential_attachment(20, 2, seed=1)
        walker = SqrtCWalker(graph, seed=6)
        frequencies = walker.hitting_probabilities(3, 500)
        assert frequencies[(0, 3)] == pytest.approx(1.0)

    def test_hitting_probabilities_level_mass_bounded(self):
        graph = generators.preferential_attachment(20, 2, seed=1)
        walker = SqrtCWalker(graph, c=0.6, seed=7)
        frequencies = walker.hitting_probabilities(3, 3000)
        level_one_mass = sum(
            value for (level, _), value in frequencies.items() if level == 1
        )
        assert level_one_mass <= math.sqrt(0.6) + 0.03
