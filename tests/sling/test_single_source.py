"""Unit tests for single-source queries (Algorithm 6 and the naive variant)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graphs import generators
from repro.sling import SlingIndex
from repro.sling.single_source import single_source_local_push

EPS = 0.05


@pytest.fixture(scope="module")
def built_index():
    graph = generators.two_level_community(3, 10, seed=11)
    return SlingIndex(graph, epsilon=EPS, seed=3).build()


class TestLocalPush:
    def test_shape_and_range(self, built_index):
        scores = built_index.single_source(0)
        assert scores.shape == (30,)
        assert np.all(scores >= 0.0)
        assert np.all(scores <= 1.0)

    def test_self_score_close_to_one(self, built_index):
        for node in (0, 13, 29):
            assert built_index.single_source(node)[node] == pytest.approx(1.0, abs=EPS)

    def test_matches_ground_truth_within_epsilon(
        self, community_graph, ground_truth_cache
    ):
        truth = ground_truth_cache(community_graph)
        index = SlingIndex(community_graph, epsilon=EPS, seed=5).build()
        for node in (0, 7, 21):
            scores = index.single_source(node)
            assert np.abs(scores - truth[node]).max() <= EPS

    def test_agrees_with_pairwise_variant(self, built_index):
        # Both variants approximate the same quantity from the same index, so
        # they should agree to within the hitting-probability pruning error.
        for node in (0, 15):
            local_push = built_index.single_source(node, method="local_push")
            pairwise = built_index.single_source(node, method="pairwise")
            assert np.abs(local_push - pairwise).max() <= EPS

    def test_unknown_method_rejected(self, built_index):
        with pytest.raises(ParameterError):
            built_index.single_source(0, method="bogus")

    def test_cycle_gives_zero_off_diagonal(self):
        graph = generators.cycle(8)
        index = SlingIndex(graph, epsilon=EPS, seed=1).build()
        scores = index.single_source(0)
        assert scores[0] == pytest.approx(1.0, abs=EPS)
        assert np.all(scores[1:] <= EPS)

    def test_outward_star_all_leaves_similar(self, outward_star, decay):
        index = SlingIndex(outward_star, c=decay, epsilon=EPS, seed=2).build()
        scores = index.single_source(1)
        for leaf in range(2, 6):
            assert scores[leaf] == pytest.approx(decay, abs=EPS)
        assert scores[0] == pytest.approx(0.0, abs=EPS)

    def test_isolated_source_node(self):
        # Node with no in-neighbours: only its self-similarity is non-zero.
        graph = generators.path(5)
        index = SlingIndex(graph, epsilon=EPS, seed=4).build()
        scores = index.single_source(0)
        assert scores[0] == pytest.approx(1.0, abs=EPS)
        assert np.all(scores[1:] == 0.0)


class TestSharedKernel:
    def test_kernel_accepts_arbitrary_hitting_set(self, built_index):
        graph = built_index.graph
        query_set = built_index.query_hitting_set(4)
        scores = single_source_local_push(
            graph,
            query_set,
            built_index.correction_factors,
            built_index.parameters.sqrt_c,
            built_index.parameters.theta,
        )
        assert np.allclose(scores, built_index.single_source(4))

    def test_empty_hitting_set_gives_zero_vector(self, built_index):
        from repro.sling import HittingProbabilitySet

        scores = single_source_local_push(
            built_index.graph,
            HittingProbabilitySet(),
            built_index.correction_factors,
            built_index.parameters.sqrt_c,
            built_index.parameters.theta,
        )
        assert not scores.any()


class TestCascade:
    def test_within_epsilon_of_local_push(self, built_index):
        for node in (0, 7, 14, 29):
            reference = built_index.single_source(node)
            cascade = built_index.single_source(node, method="cascade")
            assert np.abs(cascade - reference).max() <= EPS
            assert np.all(cascade >= 0.0)
            assert np.all(cascade <= 1.0)

    def test_empty_hitting_set_gives_zero_vector(self, built_index):
        from repro.sling import HittingProbabilitySet, single_source_cascade

        scores = single_source_cascade(
            built_index.graph,
            HittingProbabilitySet(),
            built_index.correction_factors,
            built_index.parameters.sqrt_c,
            built_index.parameters.theta,
        )
        assert not scores.any()

    def test_returns_fresh_arrays(self, built_index):
        first = built_index.single_source(3, method="cascade")
        second = built_index.single_source(3, method="cascade")
        assert first is not second
        assert np.array_equal(first, second)


class TestBoundedTopK:
    def test_invalid_parameters_rejected(self, built_index):
        with pytest.raises(ParameterError):
            built_index.top_k_bounded(0, 0)
        with pytest.raises(ParameterError):
            built_index.top_k_bounded(0, 5, budget=-0.1)

    def test_zero_budget_matches_cascade_ranking(self, built_index):
        for node in (0, 11):
            result = built_index.top_k_bounded(node, 5, budget=0.0)
            assert result.ranked == built_index.top_k(node, 5, method="cascade")
            assert result.tail_bound == 0.0
            assert not result.truncated

    def test_method_bounded_routes_through_top_k(self, built_index):
        assert (
            built_index.top_k(4, 6, method="bounded")
            == built_index.top_k_bounded(4, 6).ranked
        )

    def test_scores_within_budget_of_exact(self, built_index):
        budget = built_index.parameters.epsilon / 4.0
        for node in (0, 9, 22):
            exact = built_index.single_source(node)
            result = built_index.top_k_bounded(node, 8, budget=budget)
            for ranked_node, score in result.ranked:
                # Truncated scores are lower bounds within tail + the
                # cascade's own (≤ ε) pruning difference from the reference.
                assert score <= exact[ranked_node] + EPS
                assert score >= exact[ranked_node] - result.tail_bound - EPS

    def test_truncated_reports_consistent_metadata(self, built_index):
        # A huge budget lets the cascade cut as early as allowed; whatever
        # decision is taken, the reported metadata must be self-consistent.
        result = built_index.top_k_bounded(2, 5, budget=10.0)
        assert len(result.ranked) == 5
        if result.truncated:
            assert result.tail_bound <= 10.0
            assert result.stop_level >= 2
        else:
            assert result.tail_bound == 0.0
