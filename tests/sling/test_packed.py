"""Bitwise parity and layout-invariant tests for the packed hitting-set store.

The packed query paths (sorted-key intersection, zero-copy frontier slices)
and the dict-based compatibility path (``query_hitting_set`` +
``view_from_hitting_set``) must agree *bitwise*: both funnel through the same
kernels over identically ordered arrays, so any difference means the packed
columns or the per-query overlays disagree with the dict contents.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graphs import generators
from repro.ranking import rank_top_k
from repro.sling import (
    DiskBackedIndex,
    HittingProbabilitySet,
    PackedHittingStore,
    QueryView,
    SlingIndex,
    intersect_views,
    load_index,
    pack_keys,
    save_index,
    single_source_local_push,
    view_from_hitting_set,
)
from repro.sling.hitting import push_frontier

EPS = 0.1

#: Every combination of the Section-5.2 / 5.3 optimization flags.
FLAG_COMBOS = [
    pytest.param(False, False, id="plain"),
    pytest.param(True, False, id="reduce_space"),
    pytest.param(False, True, id="enhance_accuracy"),
    pytest.param(True, True, id="both"),
]


@pytest.fixture(scope="module")
def graph():
    return generators.two_level_community(2, 12, seed=19)


@pytest.fixture(scope="module")
def index_cache(graph):
    cache: dict[tuple[bool, bool], SlingIndex] = {}

    def build(reduce_space: bool, enhance_accuracy: bool) -> SlingIndex:
        key = (reduce_space, enhance_accuracy)
        if key not in cache:
            cache[key] = SlingIndex(
                graph,
                epsilon=EPS,
                seed=5,
                reduce_space=reduce_space,
                enhance_accuracy=enhance_accuracy,
            ).build()
        return cache[key]

    return build


def reference_single_pair(index: SlingIndex, node_u: int, node_v: int) -> float:
    """Algorithm 3 through the dict-based compatibility path."""
    return intersect_views(
        view_from_hitting_set(index.query_hitting_set(node_u)),
        view_from_hitting_set(index.query_hitting_set(node_v)),
        index.correction_factors,
    )


def reference_single_source(index: SlingIndex, node: int) -> np.ndarray:
    """Algorithm 6 through the dict-based compatibility path."""
    return single_source_local_push(
        index.graph,
        index.query_hitting_set(node),
        index.correction_factors,
        index.parameters.sqrt_c,
        index.parameters.theta,
    )


def legacy_intersect(
    set_u: HittingProbabilitySet, set_v: HittingProbabilitySet, corrections
) -> float:
    """The pre-packed dict-of-dicts intersection loop (sanity oracle)."""
    score = 0.0
    for level, entries_u in set_u.levels.items():
        entries_v = set_v.levels.get(level)
        if not entries_v:
            continue
        if len(entries_v) < len(entries_u):
            entries_u, entries_v = entries_v, entries_u
        for target, value_u in entries_u.items():
            value_v = entries_v.get(target)
            if value_v is not None:
                score += value_u * corrections[target] * value_v
    return min(1.0, score)


# --------------------------------------------------------------------------- #
# Bitwise parity: packed vs dict path
# --------------------------------------------------------------------------- #
class TestQueryParity:
    @pytest.mark.parametrize("reduce_space,enhance_accuracy", FLAG_COMBOS)
    def test_single_pair_bitwise_identical(
        self, graph, index_cache, reduce_space, enhance_accuracy
    ):
        index = index_cache(reduce_space, enhance_accuracy)
        rng = np.random.default_rng(0)
        pairs = [(int(u), int(v)) for u, v in rng.integers(0, graph.num_nodes, (40, 2))]
        pairs += [(node, node) for node in range(0, graph.num_nodes, 5)]
        for node_u, node_v in pairs:
            assert index.single_pair(node_u, node_v) == reference_single_pair(
                index, node_u, node_v
            )

    @pytest.mark.parametrize("reduce_space,enhance_accuracy", FLAG_COMBOS)
    def test_single_source_bitwise_identical(
        self, graph, index_cache, reduce_space, enhance_accuracy
    ):
        index = index_cache(reduce_space, enhance_accuracy)
        for node in range(graph.num_nodes):
            assert np.array_equal(
                index.single_source(node), reference_single_source(index, node)
            )

    @pytest.mark.parametrize("reduce_space,enhance_accuracy", FLAG_COMBOS)
    def test_top_k_bitwise_identical(
        self, graph, index_cache, reduce_space, enhance_accuracy
    ):
        index = index_cache(reduce_space, enhance_accuracy)
        for node in (0, 7, 19):
            expected = rank_top_k(
                reference_single_source(index, node).copy(), node, 5
            )
            assert index.top_k(node, 5) == expected

    @pytest.mark.parametrize("reduce_space,enhance_accuracy", FLAG_COMBOS)
    def test_all_pairs_bitwise_identical(
        self, graph, index_cache, reduce_space, enhance_accuracy
    ):
        index = index_cache(reduce_space, enhance_accuracy)
        reference = np.stack(
            [reference_single_source(index, node) for node in graph.nodes()]
        )
        assert np.array_equal(index.all_pairs(), reference)

    @pytest.mark.parametrize("reduce_space,enhance_accuracy", FLAG_COMBOS)
    def test_pairwise_single_source_bitwise_identical(
        self, graph, index_cache, reduce_space, enhance_accuracy
    ):
        index = index_cache(reduce_space, enhance_accuracy)
        scores = index.single_source(3, method="pairwise")
        expected = np.array(
            [reference_single_pair(index, 3, other) for other in graph.nodes()]
        )
        assert np.array_equal(scores, expected)

    def test_matches_legacy_dict_loop_closely(self, graph, index_cache):
        # The legacy Python loop sums in dict-insertion order, so agreement
        # is up to floating-point reassociation, not bitwise.
        index = index_cache(False, False)
        for node_u, node_v in [(0, 1), (3, 20), (7, 7), (2, 15)]:
            legacy = legacy_intersect(
                index.query_hitting_set(node_u),
                index.query_hitting_set(node_v),
                index.correction_factors,
            )
            assert index.single_pair(node_u, node_v) == pytest.approx(
                legacy, abs=1e-12
            )

    def test_kernel_accepts_dict_and_view_identically(self, graph, index_cache):
        index = index_cache(False, False)
        params = index.parameters
        for node in (0, 11, 23):
            from_view = single_source_local_push(
                graph,
                index.packed_store.node_view(node),
                index.correction_factors,
                params.sqrt_c,
                params.theta,
            )
            from_dict = single_source_local_push(
                graph,
                index.packed_store.hitting_set(node),
                index.correction_factors,
                params.sqrt_c,
                params.theta,
            )
            assert np.array_equal(from_view, from_dict)


# --------------------------------------------------------------------------- #
# Layout invariants of the packed store
# --------------------------------------------------------------------------- #
class TestStoreInvariants:
    @pytest.mark.parametrize("reduce_space,enhance_accuracy", FLAG_COMBOS)
    def test_invariants_hold(self, index_cache, reduce_space, enhance_accuracy):
        store = index_cache(reduce_space, enhance_accuracy).packed_store
        store.check_invariants()

    def test_columns_sorted_and_offsets_monotone(self, index_cache):
        store = index_cache(False, False).packed_store
        offsets = np.asarray(store.offsets)
        assert offsets[0] == 0
        assert int(offsets[-1]) == store.num_entries
        assert np.all(np.diff(offsets) >= 0)
        for node in range(store.num_nodes):
            start, stop = store.slice_bounds(node)
            segment = store.keys[start:stop]
            if segment.shape[0] > 1:
                assert np.all(np.diff(segment) > 0)
            assert np.array_equal(
                segment,
                pack_keys(store.levels[start:stop], store.targets[start:stop]),
            )

    def test_store_matches_dict_sets_exactly(self, index_cache):
        index = index_cache(False, False)
        store = index.packed_store
        for node, hitting_set in enumerate(index.hitting_sets):
            assert store.hitting_set(node) == hitting_set
            assert store.entry_counts()[node] == len(hitting_set)
        assert store.num_entries == sum(len(hs) for hs in index.hitting_sets)

    def test_size_accounting_is_o1_and_matches_dicts(self, index_cache):
        index = index_cache(False, False)
        store = index.packed_store
        assert store.size_bytes() == 12 * store.num_entries
        assert index.index_size_bytes() == 8 * store.num_nodes + store.size_bytes()
        assert index.build_statistics.num_hitting_entries == store.num_entries
        assert index.average_set_size() == store.num_entries / store.num_nodes
        assert index.resident_bytes() > store.size_bytes()

    def test_from_records_equals_from_hitting_sets(self, index_cache):
        index = index_cache(False, False)
        store = index.packed_store
        sources = np.repeat(
            np.arange(store.num_nodes, dtype=np.int64), store.entry_counts()
        )
        rng = np.random.default_rng(3)
        shuffle = rng.permutation(store.num_entries)
        rebuilt = PackedHittingStore.from_records(
            store.num_nodes,
            sources[shuffle],
            np.asarray(store.levels)[shuffle],
            np.asarray(store.targets)[shuffle],
            np.asarray(store.values)[shuffle],
        )
        assert np.array_equal(rebuilt.offsets, store.offsets)
        assert np.array_equal(rebuilt.keys, store.keys)
        assert np.array_equal(rebuilt.values, store.values)


# --------------------------------------------------------------------------- #
# QueryView composition
# --------------------------------------------------------------------------- #
class TestQueryView:
    def test_override_replaces_and_inserts_in_key_order(self):
        base = view_from_hitting_set(
            HittingProbabilitySet({0: {4: 1.0}, 2: {1: 0.25, 6: 0.5}})
        )
        composed = base.override([(2, 6, 0.75), (1, 3, 0.125), (2, 9, 0.0625)])
        assert composed.num_entries == 5
        assert np.all(np.diff(composed.keys) > 0)
        rebuilt = composed.to_hitting_set()
        assert rebuilt.get(2, 6) == 0.75  # replaced
        assert rebuilt.get(1, 3) == 0.125  # inserted
        assert rebuilt.get(2, 9) == 0.0625  # inserted
        assert rebuilt.get(0, 4) == 1.0  # untouched
        # the receiver is copy-on-write: the base view is unchanged
        assert base.to_hitting_set().get(2, 6) == 0.5

    def test_override_on_empty_view(self):
        empty = view_from_hitting_set(HittingProbabilitySet())
        composed = empty.override([(0, 2, 1.0)])
        assert composed.num_entries == 1
        assert composed.contains(0, 2)

    def test_contains_and_iter_levels(self):
        view = view_from_hitting_set(
            HittingProbabilitySet({1: {5: 0.5, 2: 0.25}, 3: {0: 0.125}})
        )
        assert view.contains(1, 5)
        assert not view.contains(1, 4)
        assert not view.contains(2, 5)
        observed = [
            (level, targets.tolist(), values.tolist())
            for level, targets, values in view.iter_levels()
        ]
        assert observed == [(1, [2, 5], [0.25, 0.5]), (3, [0], [0.125])]

    def test_intersect_empty_views(self):
        empty = view_from_hitting_set(HittingProbabilitySet())
        other = view_from_hitting_set(HittingProbabilitySet({0: {0: 1.0}}))
        corrections = np.ones(4)
        assert intersect_views(empty, other, corrections) == 0.0
        assert intersect_views(other, empty, corrections) == 0.0
        assert intersect_views(empty, empty, corrections) == 0.0


# --------------------------------------------------------------------------- #
# Round-trip: save -> mmap load -> query must be exact
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    @pytest.mark.parametrize("reduce_space,enhance_accuracy", FLAG_COMBOS)
    def test_mmap_load_is_bitwise_exact(
        self, graph, index_cache, tmp_path, reduce_space, enhance_accuracy
    ):
        index = index_cache(reduce_space, enhance_accuracy)
        directory = save_index(index, tmp_path / "index")
        loaded = load_index(directory, graph)
        rng = np.random.default_rng(1)
        for u, v in rng.integers(0, graph.num_nodes, (25, 2)):
            assert loaded.single_pair(int(u), int(v)) == index.single_pair(
                int(u), int(v)
            )
        for node in (0, 9, 23):
            assert np.array_equal(
                loaded.single_source(node), index.single_source(node)
            )

    def test_loaded_columns_are_memory_mapped(self, graph, index_cache, tmp_path):
        index = index_cache(False, False)
        directory = save_index(index, tmp_path / "index")
        loaded = load_index(directory, graph)
        store = loaded.packed_store
        for column in (store.offsets, store.levels, store.targets, store.values,
                       store.keys):
            assert isinstance(column, np.memmap)
        store.check_invariants()

    def test_resave_over_live_mmap_does_not_corrupt(self, graph, index_cache, tmp_path):
        """Regression: re-saving an mmap-loaded index into its own directory.

        ``np.save`` used to truncate the very files the store was still
        mapped from; the temp-file + rename write path must leave both the
        live mapping and the on-disk index intact.
        """
        index = index_cache(False, False)
        directory = save_index(index, tmp_path / "index")
        loaded = load_index(directory, graph)
        before = loaded.single_pair(0, 1)
        save_index(loaded, directory)  # columns are mmapped from `directory`
        assert loaded.single_pair(0, 1) == before  # live mapping still valid
        reloaded = load_index(directory, graph)
        assert reloaded.single_pair(0, 1) == index.single_pair(0, 1)
        assert np.array_equal(
            reloaded.single_source(5), index.single_source(5)
        )

    @pytest.mark.parametrize("reduce_space,enhance_accuracy", FLAG_COMBOS)
    def test_disk_backed_queries_bitwise_exact(
        self, graph, index_cache, tmp_path, reduce_space, enhance_accuracy
    ):
        # DiskBackedIndex serves the *stored* sets (no per-query overlays),
        # so compare against the stored-set reference, not the optimized one.
        index = index_cache(reduce_space, enhance_accuracy)
        directory = save_index(index, tmp_path / "index")
        disk = DiskBackedIndex(directory, graph)
        store = index.packed_store
        for u, v in [(0, 1), (5, 18), (10, 10), (3, 22)]:
            expected = intersect_views(
                store.node_view(u), store.node_view(v), index.correction_factors
            )
            assert disk.single_pair(u, v) == expected
        params = index.parameters
        for node in (2, 17):
            expected = single_source_local_push(
                graph,
                store.node_view(node),
                index.correction_factors,
                params.sqrt_c,
                params.theta,
            )
            assert np.array_equal(disk.single_source(node), expected)


# --------------------------------------------------------------------------- #
# Scratch-buffer reuse
# --------------------------------------------------------------------------- #
class TestScratchBuffer:
    def test_push_frontier_scratch_matches_fresh_allocation(self, graph):
        nodes = np.array([0, 3, 13], dtype=np.int64)
        values = np.array([1.0, 0.5, 0.25])
        fresh = push_frontier(graph, nodes, values, 0.7)
        scratch = np.zeros(graph.num_nodes)
        reused = push_frontier(graph, nodes, values, 0.7, scratch=scratch)
        assert np.array_equal(fresh[0], reused[0])
        assert np.array_equal(fresh[1], reused[1])
        # the all-zeros invariant is restored for the next level
        assert not scratch.any()

    def test_push_frontier_rejects_misshapen_scratch(self, graph):
        nodes = np.array([0], dtype=np.int64)
        values = np.array([1.0])
        with pytest.raises(ParameterError):
            push_frontier(graph, nodes, values, 0.7, scratch=np.zeros(3))

    def test_reverse_push_scratch_matches_fresh_allocation(self, graph):
        from repro.sling import reverse_push

        scratch = np.zeros(graph.num_nodes)
        for target in (0, 7, 20):
            with_scratch = reverse_push(graph, target, 0.77, 0.01, scratch=scratch)
            without = reverse_push(graph, target, 0.77, 0.01)
            assert with_scratch == without
            assert not scratch.any()

    def test_single_source_scratch_matches_fresh_allocation(self, graph, index_cache):
        index = index_cache(False, False)
        params = index.parameters
        scratch = np.zeros(graph.num_nodes)
        for node in (1, 12):
            view = index.packed_store.node_view(node)
            reused = single_source_local_push(
                graph, view, index.correction_factors, params.sqrt_c, params.theta,
                scratch=scratch,
            )
            fresh = single_source_local_push(
                graph, view, index.correction_factors, params.sqrt_c, params.theta
            )
            assert np.array_equal(reused, fresh)
            assert not scratch.any()


# --------------------------------------------------------------------------- #
# QueryView type sanity
# --------------------------------------------------------------------------- #
def test_node_view_is_zero_copy(index_cache):
    store = index_cache(False, False).packed_store
    view = store.node_view(0)
    assert isinstance(view, QueryView)
    assert view.values.base is not None  # a slice, not a copy
    assert view.num_entries == int(store.entry_counts()[0])


# --------------------------------------------------------------------------- #
# Level segments and residual-mass metadata
# --------------------------------------------------------------------------- #
class TestLevelSegments:
    def test_matches_iter_levels(self, index_cache):
        store = index_cache(False, False).packed_store
        for node in (0, 5, 17):
            view = store.node_view(node)
            levels, starts, stops = view.level_segments()
            iterated = list(view.iter_levels())
            assert levels.shape == starts.shape == stops.shape
            assert len(iterated) == levels.shape[0]
            for idx, (level, targets, values) in enumerate(iterated):
                assert int(levels[idx]) == level
                assert np.array_equal(view.targets[starts[idx] : stops[idx]], targets)
                assert np.array_equal(view.values[starts[idx] : stops[idx]], values)

    def test_empty_view(self):
        view = view_from_hitting_set(HittingProbabilitySet())
        levels, starts, stops = view.level_segments()
        assert levels.size == starts.size == stops.size == 0


class TestLevelStats:
    def test_matches_hitting_set_aggregates(self, index_cache):
        index = index_cache(False, False)
        store = index.packed_store
        for node in (0, 5, 17, 23):
            levels, totals, maxima = store.node_level_stats(node)
            expected = index.hitting_sets[node].levels
            present = sorted(level for level, entries in expected.items() if entries)
            assert [int(level) for level in levels] == present
            for level, total, maximum in zip(levels, totals, maxima):
                values = list(expected[int(level)].values())
                assert total == pytest.approx(sum(values))
                assert maximum == pytest.approx(max(values))

    def test_cached(self, index_cache):
        store = index_cache(False, False).packed_store
        assert store.level_stats() is store.level_stats()

    def test_empty_store(self):
        store = PackedHittingStore.from_columns(
            np.zeros(4, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.float64),
        )
        levels, totals, maxima = store.node_level_stats(1)
        assert levels.size == totals.size == maxima.size == 0
