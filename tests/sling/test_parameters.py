"""Unit tests for Theorem-1 parameter derivation."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ParameterError
from repro.sling import SlingParameters, theorem1_error_bound


class TestTheorem1Bound:
    def test_bound_formula(self):
        c = 0.6
        sqrt_c = math.sqrt(c)
        bound = theorem1_error_bound(c, 0.005, 0.000725)
        expected = 0.005 / 0.4 + 2 * sqrt_c * 0.000725 / ((1 - sqrt_c) * 0.4)
        assert bound == pytest.approx(expected)

    def test_paper_setting_satisfies_bound(self):
        # Section 7.1: eps_d = 0.005, theta = 0.000725 ensure eps < 0.025.
        assert theorem1_error_bound(0.6, 0.005, 0.000725) < 0.025


class TestFromAccuracyTarget:
    def test_derived_parameters_satisfy_theorem1(self):
        params = SlingParameters.from_accuracy_target(num_nodes=1000, epsilon=0.025)
        assert params.guaranteed_error <= params.epsilon + 1e-12

    @pytest.mark.parametrize("epsilon", [0.01, 0.025, 0.05, 0.1, 0.3])
    def test_various_epsilons(self, epsilon):
        params = SlingParameters.from_accuracy_target(num_nodes=500, epsilon=epsilon)
        assert params.guaranteed_error <= epsilon + 1e-12
        assert 0 < params.epsilon_d < epsilon
        assert params.theta > 0

    def test_error_split_moves_budget(self):
        lenient = SlingParameters.from_accuracy_target(
            num_nodes=100, epsilon=0.05, error_split=0.8
        )
        strict = SlingParameters.from_accuracy_target(
            num_nodes=100, epsilon=0.05, error_split=0.2
        )
        assert lenient.epsilon_d > strict.epsilon_d
        assert lenient.theta < strict.theta

    def test_default_delta_is_one_over_n(self):
        params = SlingParameters.from_accuracy_target(num_nodes=200, epsilon=0.05)
        assert params.delta == pytest.approx(1.0 / 200)
        assert params.delta_d == pytest.approx(1.0 / (200 * 200))

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            SlingParameters.from_accuracy_target(num_nodes=0, epsilon=0.05)
        with pytest.raises(ParameterError):
            SlingParameters.from_accuracy_target(
                num_nodes=10, epsilon=0.05, error_split=1.0
            )

    def test_sqrt_c_property(self):
        params = SlingParameters.from_accuracy_target(num_nodes=10, c=0.81, epsilon=0.1)
        assert params.sqrt_c == pytest.approx(0.9)


class TestExplicitConstruction:
    def test_paper_defaults(self):
        params = SlingParameters.paper_defaults(num_nodes=10_000)
        assert params.c == 0.6
        assert params.epsilon == 0.025
        assert params.epsilon_d == 0.005
        assert params.theta == 0.000725
        assert params.delta_d == pytest.approx(1e-8)

    def test_violating_theorem1_is_rejected(self):
        with pytest.raises(ParameterError):
            SlingParameters(
                c=0.6, epsilon=0.01, delta=0.1, epsilon_d=0.01, theta=0.01, delta_d=0.01
            )

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ParameterError):
            SlingParameters(
                c=1.2, epsilon=0.05, delta=0.1, epsilon_d=0.01, theta=0.001, delta_d=0.01
            )
        with pytest.raises(ParameterError):
            SlingParameters(
                c=0.6, epsilon=0.05, delta=0.1, epsilon_d=0.01, theta=-0.001, delta_d=0.01
            )
        with pytest.raises(ParameterError):
            SlingParameters(
                c=0.6, epsilon=0.05, delta=0.1, epsilon_d=0.01, theta=0.001, delta_d=0.5
            )

    def test_scaled_rederives_for_new_epsilon(self):
        params = SlingParameters.from_accuracy_target(num_nodes=100, epsilon=0.05)
        relaxed = params.scaled(epsilon=0.1)
        assert relaxed.epsilon == 0.1
        assert relaxed.epsilon_d == pytest.approx(2 * params.epsilon_d)
        assert relaxed.theta == pytest.approx(2 * params.theta)
        assert relaxed.guaranteed_error <= 0.1 + 1e-12

    def test_frozen_dataclass(self):
        params = SlingParameters.paper_defaults(num_nodes=100)
        with pytest.raises(AttributeError):
            params.epsilon = 0.5  # type: ignore[misc]
