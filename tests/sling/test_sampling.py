"""Unit tests for the Bernoulli-mean estimators (Algorithms 1 and 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.sling import (
    estimate_bernoulli_mean_adaptive,
    estimate_bernoulli_mean_fixed,
)
from repro.sling.sampling import (
    estimate_bernoulli_mean_adaptive_batch,
    estimate_bernoulli_mean_fixed_batch,
    fixed_sample_count,
)


def make_sampler(probability: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    return lambda: bool(rng.random() < probability)


def make_batch_sampler(probability: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    return lambda count: int((rng.random(count) < probability).sum())


class TestFixedSampleCount:
    def test_count_grows_with_accuracy(self):
        assert fixed_sample_count(0.01, 0.1) > fixed_sample_count(0.1, 0.1)

    def test_count_grows_with_confidence(self):
        assert fixed_sample_count(0.05, 0.001) > fixed_sample_count(0.05, 0.1)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            fixed_sample_count(0.0, 0.1)
        with pytest.raises(ParameterError):
            fixed_sample_count(0.1, 1.5)
        with pytest.raises(ParameterError):
            fixed_sample_count(0.1, 0.1, scale=0.0)


class TestFixedEstimator:
    @pytest.mark.parametrize("probability", [0.0, 0.05, 0.3, 0.9])
    def test_estimate_is_within_epsilon(self, probability):
        estimate = estimate_bernoulli_mean_fixed(
            make_sampler(probability, seed=1), epsilon=0.05, delta=0.01
        )
        assert abs(estimate.mean - probability) <= 0.05
        assert estimate.num_samples == fixed_sample_count(0.05, 0.01)
        assert not estimate.adaptive_phase_used

    def test_batch_variant_equivalent_budget(self):
        scalar = estimate_bernoulli_mean_fixed(
            make_sampler(0.2, seed=2), epsilon=0.1, delta=0.05
        )
        batch = estimate_bernoulli_mean_fixed_batch(
            make_batch_sampler(0.2, seed=2), epsilon=0.1, delta=0.05
        )
        assert scalar.num_samples == batch.num_samples
        assert abs(batch.mean - 0.2) <= 0.1


class TestAdaptiveEstimator:
    @pytest.mark.parametrize("probability", [0.0, 0.02, 0.2, 0.7])
    def test_estimate_is_within_epsilon(self, probability):
        estimate = estimate_bernoulli_mean_adaptive(
            make_sampler(probability, seed=3), epsilon=0.05, delta=0.01
        )
        assert abs(estimate.mean - probability) <= 0.05

    @pytest.mark.parametrize("probability", [0.0, 0.02, 0.2, 0.7])
    def test_batch_estimate_is_within_epsilon(self, probability):
        estimate = estimate_bernoulli_mean_adaptive_batch(
            make_batch_sampler(probability, seed=4), epsilon=0.05, delta=0.01
        )
        assert abs(estimate.mean - probability) <= 0.05

    def test_small_mean_skips_second_phase(self):
        estimate = estimate_bernoulli_mean_adaptive(
            make_sampler(0.001, seed=5), epsilon=0.05, delta=0.01
        )
        assert not estimate.adaptive_phase_used

    def test_large_mean_triggers_second_phase(self):
        estimate = estimate_bernoulli_mean_adaptive(
            make_sampler(0.5, seed=6), epsilon=0.05, delta=0.01
        )
        assert estimate.adaptive_phase_used

    def test_adaptive_uses_fewer_samples_for_rare_events(self):
        # The whole point of Algorithm 4: when µ is small the sample budget is
        # roughly max{µ, ε} / ε times smaller than Algorithm 1's.
        adaptive = estimate_bernoulli_mean_adaptive(
            make_sampler(0.01, seed=7), epsilon=0.01, delta=0.05
        )
        fixed_budget = fixed_sample_count(0.01, 0.05)
        assert adaptive.num_samples < fixed_budget / 5

    def test_adaptive_never_exceeds_reasonable_budget_for_large_mean(self):
        estimate = estimate_bernoulli_mean_adaptive(
            make_sampler(0.9, seed=8), epsilon=0.05, delta=0.05
        )
        # Budget should stay within a small constant factor of the fixed one.
        assert estimate.num_samples <= 4 * fixed_sample_count(0.05, 0.05, scale=1.0)

    def test_invalid_parameters(self):
        sampler = make_sampler(0.5)
        with pytest.raises(ParameterError):
            estimate_bernoulli_mean_adaptive(sampler, epsilon=0.0, delta=0.1)
        with pytest.raises(ParameterError):
            estimate_bernoulli_mean_adaptive(sampler, epsilon=0.1, delta=0.0)
        with pytest.raises(ParameterError):
            estimate_bernoulli_mean_adaptive_batch(
                make_batch_sampler(0.5), epsilon=1.2, delta=0.1
            )

    def test_deterministic_sampler_exact(self):
        always_true = estimate_bernoulli_mean_adaptive(lambda: True, 0.1, 0.1)
        assert always_true.mean == pytest.approx(1.0)
        never_true = estimate_bernoulli_mean_adaptive(lambda: False, 0.1, 0.1)
        assert never_true.mean == 0.0
