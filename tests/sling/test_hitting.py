"""Unit tests for hitting probabilities: Algorithm 2, Algorithm 5, containers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graphs import DiGraph, generators
from repro.sling import (
    HittingProbabilitySet,
    build_hitting_sets,
    exact_near_hops,
    neighborhood_weight,
    push_frontier,
    reverse_push,
)
from repro.sling.hitting import expected_set_size_bound, theoretical_error_bound

SQRT_C = math.sqrt(0.6)


def exact_hitting_probabilities(graph: DiGraph, sqrt_c: float, max_level: int) -> list[np.ndarray]:
    """Exact h^(l)(i, k) as matrices: entry [i, k] at index l (test oracle)."""
    n = graph.num_nodes
    scaled = sqrt_c * graph.transition_matrix().toarray()  # R = sqrt(c) P
    levels = [np.eye(n)]
    for _ in range(max_level):
        # h^(l+1)(i, k) = sum_x in I(i) sqrt(c)/|I(i)| h^(l)(x, k)
        # In matrix form: H_{l+1}[i, k] = sum_x R[x, i] H_l[x, k] = (R^T H_l)[i, k]
        levels.append(scaled.T @ levels[-1])
    return levels


class TestHittingProbabilitySet:
    def test_add_accumulates(self):
        hitting_set = HittingProbabilitySet()
        hitting_set.add(1, 4, 0.2)
        hitting_set.add(1, 4, 0.3)
        assert hitting_set.get(1, 4) == pytest.approx(0.5)

    def test_set_overwrites(self):
        hitting_set = HittingProbabilitySet()
        hitting_set.add(0, 1, 0.4)
        hitting_set.set(0, 1, 0.1)
        assert hitting_set.get(0, 1) == pytest.approx(0.1)

    def test_get_default(self):
        hitting_set = HittingProbabilitySet()
        assert hitting_set.get(3, 7) == 0.0
        assert hitting_set.get(3, 7, default=-1.0) == -1.0

    def test_len_and_items(self):
        hitting_set = HittingProbabilitySet({0: {0: 1.0}, 2: {3: 0.1, 4: 0.2}})
        assert len(hitting_set) == 3
        assert set(hitting_set.items()) == {(0, 0, 1.0), (2, 3, 0.1), (2, 4, 0.2)}

    def test_level_items_and_max_level(self):
        hitting_set = HittingProbabilitySet({0: {0: 1.0}, 5: {1: 0.2}})
        assert hitting_set.level_items(5) == {1: 0.2}
        assert hitting_set.level_items(9) == {}
        assert hitting_set.max_level() == 5
        assert HittingProbabilitySet().max_level() == -1

    def test_drop_levels(self):
        hitting_set = HittingProbabilitySet({0: {0: 1.0}, 1: {1: 0.3}, 2: {2: 0.1}})
        hitting_set.drop_levels([1, 2])
        assert len(hitting_set) == 1
        assert hitting_set.get(0, 0) == 1.0

    def test_equality_and_copy(self):
        original = HittingProbabilitySet({0: {0: 1.0}, 1: {2: 0.5}})
        duplicate = original.copy()
        assert original == duplicate
        duplicate.set(1, 2, 0.9)
        assert original != duplicate
        assert original.get(1, 2) == 0.5

    def test_merged_with_prefers_other(self):
        base = HittingProbabilitySet({1: {0: 0.1}})
        overlay = HittingProbabilitySet({1: {0: 0.7}, 2: {5: 0.2}})
        merged = base.merged_with(overlay)
        assert merged.get(1, 0) == 0.7
        assert merged.get(2, 5) == 0.2
        assert base.get(1, 0) == 0.1  # unchanged

    def test_total_mass(self):
        hitting_set = HittingProbabilitySet({1: {0: 0.2, 3: 0.3}})
        assert hitting_set.total_mass(1) == pytest.approx(0.5)
        assert hitting_set.total_mass(9) == 0.0

    def test_size_accounting(self):
        hitting_set = HittingProbabilitySet({0: {0: 1.0}, 1: {2: 0.5}})
        assert hitting_set.size_bytes() == 24
        assert hitting_set.deep_size_bytes() > hitting_set.size_bytes()

    def test_empty_levels_are_dropped_at_construction(self):
        hitting_set = HittingProbabilitySet({0: {}, 1: {2: 0.5}})
        assert 0 not in hitting_set.levels
        assert len(hitting_set) == 1


class TestReversePush:
    def test_level_zero_is_target_itself(self):
        graph = generators.cycle(5)
        result = reverse_push(graph, 2, SQRT_C, theta=0.001)
        assert result[0] == {2: 1.0}

    def test_invalid_parameters(self):
        graph = generators.cycle(5)
        with pytest.raises(ParameterError):
            reverse_push(graph, 0, SQRT_C, theta=0.0)
        with pytest.raises(ParameterError):
            reverse_push(graph, 0, 1.5, theta=0.01)

    def test_all_entries_exceed_theta(self):
        graph = generators.preferential_attachment(40, 3, seed=1)
        theta = 0.01
        result = reverse_push(graph, 0, SQRT_C, theta)
        for entries in result.values():
            assert all(value > theta for value in entries.values())

    def test_values_underestimate_exact_probabilities(self):
        graph = generators.two_level_community(2, 8, seed=2)
        theta = 0.005
        max_level = 12
        exact = exact_hitting_probabilities(graph, SQRT_C, max_level)
        for target in [0, 5, 11]:
            result = reverse_push(graph, target, SQRT_C, theta, max_levels=max_level)
            for level, entries in result.items():
                for source, value in entries.items():
                    true_value = exact[level][source, target]
                    assert value <= true_value + 1e-12
                    assert true_value - value <= theoretical_error_bound(
                        SQRT_C, theta, level
                    ) + 1e-12

    def test_error_bounded_by_lemma7_for_missing_entries(self):
        graph = generators.two_level_community(2, 8, seed=2)
        theta = 0.02
        max_level = 10
        exact = exact_hitting_probabilities(graph, SQRT_C, max_level)
        target = 3
        result = reverse_push(graph, target, SQRT_C, theta, max_levels=max_level)
        for level in range(max_level):
            bound = theoretical_error_bound(SQRT_C, theta, level)
            for source in graph.nodes():
                approx = result.get(level, {}).get(source, 0.0)
                assert exact[level][source, target] - approx <= bound + 1e-12

    def test_level_mass_bounded_by_sqrt_c_power(self):
        graph = generators.preferential_attachment(50, 3, seed=3)
        result = reverse_push(graph, 0, SQRT_C, theta=0.001)
        for level, entries in result.items():
            assert sum(entries.values()) <= SQRT_C**level + 1e-9

    def test_max_levels_caps_depth(self):
        graph = generators.complete(6)
        result = reverse_push(graph, 0, SQRT_C, theta=1e-6, max_levels=3)
        assert max(result) <= 2

    def test_terminates_on_zero_out_degree_target(self):
        graph = generators.path(4)  # node 3 has no out-neighbours
        result = reverse_push(graph, 3, SQRT_C, theta=0.001)
        assert result == {0: {3: 1.0}}

    def test_push_frontier_conserves_scaled_mass(self):
        graph = generators.complete(5)
        nodes = np.array([0, 1], dtype=np.int64)
        values = np.array([0.5, 0.25])
        next_nodes, next_values = push_frontier(graph, nodes, values, SQRT_C)
        # Every out-edge lands on a node with in-degree 4; each source has 4
        # out-edges, so the total pushed mass is sqrt(c) * sum(values).
        assert next_values.sum() == pytest.approx(SQRT_C * values.sum())
        assert set(next_nodes.tolist()) <= set(range(5))

    def test_push_frontier_empty_result_for_sink(self):
        graph = generators.path(3)
        next_nodes, next_values = push_frontier(
            graph, np.array([2], dtype=np.int64), np.array([1.0]), SQRT_C
        )
        assert next_nodes.size == 0
        assert next_values.size == 0


class TestBuildHittingSets:
    def test_every_node_has_level_zero_self_entry(self):
        graph = generators.preferential_attachment(30, 2, seed=4)
        hitting_sets = build_hitting_sets(graph, SQRT_C, theta=0.01)
        for node, hitting_set in enumerate(hitting_sets):
            assert hitting_set.get(0, node) == pytest.approx(1.0)

    def test_transposition_is_consistent_with_reverse_push(self):
        graph = generators.two_level_community(2, 6, seed=1)
        theta = 0.01
        hitting_sets = build_hitting_sets(graph, SQRT_C, theta)
        for target in graph.nodes():
            pushed = reverse_push(graph, target, SQRT_C, theta)
            for level, entries in pushed.items():
                for source, value in entries.items():
                    assert hitting_sets[source].get(level, target) == pytest.approx(
                        value
                    )

    def test_restricting_targets_limits_entries(self):
        graph = generators.cycle(6)
        hitting_sets = build_hitting_sets(graph, SQRT_C, theta=0.01, targets=[0])
        total_entries = sum(len(hs) for hs in hitting_sets)
        assert total_entries == len(reverse_push(graph, 0, SQRT_C, 0.01)[0]) + sum(
            len(entries)
            for level, entries in reverse_push(graph, 0, SQRT_C, 0.01).items()
            if level > 0
        )

    def test_set_sizes_respect_observation1_bound(self):
        graph = generators.preferential_attachment(60, 3, seed=5)
        theta = 0.01
        hitting_sets = build_hitting_sets(graph, SQRT_C, theta)
        bound = expected_set_size_bound(SQRT_C, theta)
        for hitting_set in hitting_sets:
            assert len(hitting_set) <= bound + 1


class TestExactNearHops:
    def test_step_one_values(self):
        graph = DiGraph(4, [(1, 0), (2, 0), (3, 1)])
        result = exact_near_hops(graph, 0, SQRT_C)
        assert result[0] == {0: 1.0}
        assert result[1][1] == pytest.approx(SQRT_C / 2)
        assert result[1][2] == pytest.approx(SQRT_C / 2)

    def test_step_two_values(self):
        graph = DiGraph(4, [(1, 0), (2, 0), (3, 1)])
        result = exact_near_hops(graph, 0, SQRT_C)
        # Walk 0 -> 1 -> 3 has probability sqrt(c)/2 * sqrt(c)/1.
        assert result[2][3] == pytest.approx(SQRT_C * SQRT_C / 2)

    def test_zero_in_degree_node_only_has_level_zero(self):
        graph = generators.path(3)
        result = exact_near_hops(graph, 0, SQRT_C)
        assert set(result) == {0}

    def test_matches_exact_matrix_computation(self):
        graph = generators.two_level_community(2, 7, seed=3)
        exact = exact_hitting_probabilities(graph, SQRT_C, 2)
        for node in [0, 4, 13]:
            result = exact_near_hops(graph, node, SQRT_C)
            for level in (1, 2):
                for other in graph.nodes():
                    expected = exact[level][node, other]
                    assert result.get(level, {}).get(other, 0.0) == pytest.approx(
                        expected, abs=1e-12
                    )

    def test_invalid_sqrt_c(self):
        graph = generators.cycle(4)
        with pytest.raises(ParameterError):
            exact_near_hops(graph, 0, 1.2)


class TestNeighborhoodWeight:
    def test_matches_definition(self):
        graph = DiGraph(5, [(1, 0), (2, 0), (3, 1), (4, 1), (0, 2)])
        # eta(0) = |I(0)| + |I(1)| + |I(2)| = 2 + 2 + 1
        assert neighborhood_weight(graph, 0) == 5

    def test_zero_for_source_nodes(self):
        graph = generators.path(4)
        assert neighborhood_weight(graph, 0) == 0

    def test_bound_helpers(self):
        assert expected_set_size_bound(SQRT_C, 0.01) == pytest.approx(
            1.0 / ((1 - SQRT_C) * 0.01)
        )
        with pytest.raises(ParameterError):
            expected_set_size_bound(SQRT_C, 0.0)
        assert theoretical_error_bound(SQRT_C, 0.01, 0) == 0.0
        assert theoretical_error_bound(SQRT_C, 0.01, 5) > 0.0


class TestConcatenatedRanges:
    def test_matches_two_repeat_reference(self):
        from repro.sling import concatenated_ranges

        rng = np.random.default_rng(0)
        starts = rng.integers(0, 1000, size=50).astype(np.int64)
        counts = rng.integers(0, 7, size=50).astype(np.int64)
        total = int(counts.sum())
        reference = np.repeat(starts, counts) + (
            np.arange(total, dtype=np.int64)
            - np.repeat(np.cumsum(counts) - counts, counts)
        )
        assert np.array_equal(concatenated_ranges(starts, counts), reference)

    def test_explicit_total(self):
        from repro.sling import concatenated_ranges

        starts = np.array([5, 0], dtype=np.int64)
        counts = np.array([2, 3], dtype=np.int64)
        assert concatenated_ranges(starts, counts, 5).tolist() == [5, 6, 0, 1, 2]

    def test_empty(self):
        from repro.sling import concatenated_ranges

        result = concatenated_ranges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert result.size == 0
        assert result.dtype == np.int64
