"""Unit tests for the SLING index: construction and Algorithm-3 queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import IndexNotBuiltError, NodeNotFoundError, ParameterError
from repro.graphs import DiGraph, generators
from repro.sling import SlingIndex, SlingParameters

EPS = 0.05


@pytest.fixture(scope="module")
def community_index():
    graph = generators.two_level_community(3, 10, seed=7)
    return SlingIndex(graph, epsilon=EPS, seed=1).build()


class TestLifecycle:
    def test_querying_before_build_raises(self):
        graph = generators.cycle(5)
        index = SlingIndex(graph, epsilon=EPS)
        assert not index.is_built
        with pytest.raises(IndexNotBuiltError):
            index.single_pair(0, 1)
        with pytest.raises(IndexNotBuiltError):
            index.single_source(0)
        with pytest.raises(IndexNotBuiltError):
            index.index_size_bytes()
        with pytest.raises(IndexNotBuiltError):
            _ = index.build_statistics

    def test_build_returns_self_and_sets_flags(self):
        graph = generators.cycle(5)
        index = SlingIndex(graph, epsilon=EPS, seed=0)
        assert index.build() is index
        assert index.is_built
        stats = index.build_statistics
        assert stats.total_seconds >= 0.0
        assert stats.num_hitting_entries > 0
        assert "build took" in stats.summary()

    def test_empty_graph_rejected(self):
        with pytest.raises(ParameterError):
            SlingIndex(DiGraph(0, []), epsilon=EPS)

    def test_invalid_worker_count(self):
        graph = generators.cycle(4)
        with pytest.raises(ParameterError):
            SlingIndex(graph, epsilon=EPS).build(workers=0)

    def test_explicit_parameters_override(self):
        graph = generators.cycle(4)
        params = SlingParameters.from_accuracy_target(num_nodes=4, epsilon=0.2)
        index = SlingIndex(graph, epsilon=0.01, parameters=params)
        assert index.parameters.epsilon == 0.2

    def test_unknown_node_raises_after_build(self, community_index):
        with pytest.raises(NodeNotFoundError):
            community_index.single_pair(0, 999)
        with pytest.raises(NodeNotFoundError):
            community_index.single_source(999)

    def test_repr(self, community_index):
        assert "built" in repr(community_index)


class TestSinglePairAccuracy:
    def test_self_similarity_close_to_one(self, community_index):
        for node in range(0, 30, 7):
            assert community_index.single_pair(node, node) == pytest.approx(
                1.0, abs=EPS
            )

    def test_cycle_pairs_are_zero(self):
        graph = generators.cycle(6)
        index = SlingIndex(graph, epsilon=EPS, seed=2).build()
        assert index.single_pair(0, 3) == pytest.approx(0.0, abs=EPS)

    def test_outward_star_leaves(self, outward_star, decay):
        index = SlingIndex(outward_star, c=decay, epsilon=EPS, seed=3).build()
        assert index.single_pair(1, 2) == pytest.approx(decay, abs=EPS)

    def test_complete_graph_matches_closed_form(self, complete_graph, decay, complete_offdiag):
        index = SlingIndex(complete_graph, c=decay, epsilon=EPS, seed=4).build()
        expected = complete_offdiag(4, decay)
        assert index.single_pair(0, 1) == pytest.approx(expected, abs=EPS)

    def test_within_epsilon_of_power_method(
        self, community_graph, ground_truth_cache, decay
    ):
        truth = ground_truth_cache(community_graph)
        index = SlingIndex(community_graph, c=decay, epsilon=EPS, seed=5).build()
        estimated = index.all_pairs()
        assert np.abs(estimated - truth).max() <= EPS

    def test_scores_symmetric_within_tolerance(self, community_index):
        for u, v in [(0, 5), (3, 17), (11, 29)]:
            assert community_index.single_pair(u, v) == pytest.approx(
                community_index.single_pair(v, u), abs=1e-9
            )

    def test_scores_within_unit_interval(self, community_index):
        rng = np.random.default_rng(0)
        for _ in range(50):
            u, v = rng.integers(0, 30, size=2)
            score = community_index.single_pair(int(u), int(v))
            assert 0.0 <= score <= 1.0

    def test_dag_source_nodes_have_zero_similarity(self, dag_graph):
        index = SlingIndex(dag_graph, epsilon=EPS, seed=6).build()
        sources = np.flatnonzero(dag_graph.in_degrees() == 0)
        if sources.size >= 2:
            assert index.single_pair(int(sources[0]), int(sources[1])) == 0.0


class TestDerivedQueries:
    def test_top_k_returns_sorted_scores(self, community_index):
        ranked = community_index.top_k(0, 5)
        assert len(ranked) == 5
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(node != 0 for node, _ in ranked)

    def test_top_k_invalid_k(self, community_index):
        with pytest.raises(ParameterError):
            community_index.top_k(0, 0)

    def test_top_k_k_larger_than_graph(self, community_index):
        ranked = community_index.top_k(0, 1000)
        assert len(ranked) == community_index.graph.num_nodes - 1

    def test_top_k_prefers_same_community(self, community_index):
        # Node 0 lives in community {0..9}; most of its top-5 neighbours
        # should come from the same community.
        ranked = community_index.top_k(0, 5)
        same_community = sum(1 for node, _ in ranked if node < 10)
        assert same_community >= 3

    def test_all_pairs_shape_and_diagonal(self, community_index):
        matrix = community_index.all_pairs()
        assert matrix.shape == (30, 30)
        assert np.all(matrix.diagonal() >= 1.0 - EPS)

    def test_single_node_graph(self):
        graph = DiGraph(1, [])
        index = SlingIndex(graph, epsilon=EPS, seed=0).build()
        assert index.single_pair(0, 0) == pytest.approx(1.0)
        assert index.top_k(0, 3) == []


class TestSizeAccounting:
    def test_index_size_grows_with_accuracy(self):
        graph = generators.preferential_attachment(80, 3, seed=1)
        loose = SlingIndex(graph, epsilon=0.2, seed=0).build()
        tight = SlingIndex(graph, epsilon=0.05, seed=0).build()
        assert tight.index_size_bytes() > loose.index_size_bytes()
        assert tight.average_set_size() > loose.average_set_size()

    def test_index_size_includes_corrections(self):
        graph = generators.cycle(10)
        index = SlingIndex(graph, epsilon=0.1, seed=0).build()
        assert index.index_size_bytes() >= 8 * 10

    def test_correction_factors_exposed(self, community_index):
        corrections = community_index.correction_factors
        assert corrections.shape == (30,)
        assert np.all((corrections >= 0.0) & (corrections <= 1.0))

    def test_hitting_sets_exposed(self, community_index):
        hitting_sets = community_index.hitting_sets
        assert len(hitting_sets) == 30
        assert all(hs.get(0, node) > 0 for node, hs in enumerate(hitting_sets))


class TestReproducibility:
    def test_same_seed_gives_identical_index(self):
        graph = generators.preferential_attachment(40, 2, seed=9)
        first = SlingIndex(graph, epsilon=EPS, seed=123).build()
        second = SlingIndex(graph, epsilon=EPS, seed=123).build()
        assert np.array_equal(first.correction_factors, second.correction_factors)
        assert first.single_pair(3, 17) == second.single_pair(3, 17)

    def test_different_seed_changes_corrections(self):
        graph = generators.preferential_attachment(40, 2, seed=9)
        first = SlingIndex(graph, epsilon=EPS, seed=1).build()
        second = SlingIndex(graph, epsilon=EPS, seed=2).build()
        assert not np.array_equal(first.correction_factors, second.correction_factors)
