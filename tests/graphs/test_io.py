"""Unit tests for edge-list reading and writing."""

from __future__ import annotations

import gzip

import pytest

from repro.exceptions import GraphFormatError
from repro.graphs import DiGraph, read_edge_list, write_edge_list
from repro.graphs.io import parse_edge_lines


class TestParseEdgeLines:
    def test_basic_parsing(self):
        lines = ["1\t2", "2\t3"]
        assert list(parse_edge_lines(lines)) == [("1", "2"), ("2", "3")]

    def test_comments_and_blank_lines_skipped(self):
        lines = ["# header", "", "  ", "1 2"]
        assert list(parse_edge_lines(lines)) == [("1", "2")]

    def test_extra_fields_ignored(self):
        assert list(parse_edge_lines(["1 2 0.5"])) == [("1", "2")]

    def test_malformed_line_raises(self):
        with pytest.raises(GraphFormatError):
            list(parse_edge_lines(["only-one-field"]))

    def test_custom_comment_prefix(self):
        lines = ["% comment", "1 2"]
        assert list(parse_edge_lines(lines, comment="%")) == [("1", "2")]

    def test_custom_delimiter(self):
        assert list(parse_edge_lines(["1,2"], delimiter=",")) == [("1", "2")]


class TestReadWrite:
    def test_roundtrip(self, tmp_path):
        graph = DiGraph.from_edge_list([("a", "b"), ("b", "c"), ("c", "a")])
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path, header="test graph")
        loaded = read_edge_list(path)
        assert loaded.num_nodes == 3
        assert loaded.num_edges == 3
        assert {(loaded.label_of(u), loaded.label_of(v)) for u, v in loaded.edges()} == {
            ("a", "b"),
            ("b", "c"),
            ("c", "a"),
        }

    def test_read_snap_style_file(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# Directed graph\n# FromNodeId\tToNodeId\n0\t1\n1\t2\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_read_symmetrize(self, tmp_path):
        path = tmp_path / "undirected.txt"
        path.write_text("0\t1\n")
        graph = read_edge_list(path, symmetrize=True)
        assert graph.num_edges == 2
        assert graph.is_symmetric()

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0\t1\n1\t2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_header_written_as_comment(self, tmp_path):
        graph = DiGraph(2, [(0, 1)])
        path = tmp_path / "out.txt"
        write_edge_list(graph, path, header="line one\nline two")
        content = path.read_text()
        assert content.startswith("# line one\n# line two\n")

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("justonefield\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)
