"""Tests for ``DiGraph.with_edges``: delta-merge of sorted adjacency arrays."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graphs import DiGraph, generators


def assert_graphs_bit_identical(left: DiGraph, right: DiGraph) -> None:
    assert left.num_nodes == right.num_nodes
    assert left.num_edges == right.num_edges
    assert np.array_equal(left.out_degrees(), right.out_degrees())
    assert np.array_equal(left.in_degrees(), right.in_degrees())
    for node in left.nodes():
        assert np.array_equal(left.out_neighbors(node), right.out_neighbors(node))
        assert np.array_equal(left.in_neighbors(node), right.in_neighbors(node))


class TestDeltaMerge:
    def test_matches_fresh_construction(self):
        graph = generators.two_level_community(3, 10, seed=7)
        added = [(0, 17), (5, 23), (29, 1)]
        removed = [edge for edge in list(graph.edges())[:3]]
        merged = graph.with_edges(added=added, removed=removed)
        reference_edges = (set(map(tuple, graph.edges())) | set(added)) - set(removed)
        reference = DiGraph(graph.num_nodes, sorted(reference_edges))
        assert_graphs_bit_identical(merged, reference)

    def test_random_deltas_match_fresh_construction(self):
        rng = np.random.default_rng(41)
        graph = generators.preferential_attachment(40, 3, seed=11)
        for _ in range(20):
            current = set(map(tuple, graph.edges()))
            added = []
            while len(added) < 4:
                u, v = rng.integers(0, graph.num_nodes, size=2)
                if u != v and (int(u), int(v)) not in current:
                    added.append((int(u), int(v)))
            pool = sorted(current)
            removed = [
                pool[int(i)]
                for i in rng.choice(len(pool), size=3, replace=False)
            ]
            merged = graph.with_edges(added=added, removed=removed)
            reference = DiGraph(
                graph.num_nodes, sorted((current | set(added)) - set(removed))
            )
            assert_graphs_bit_identical(merged, reference)
            graph = merged

    def test_empty_delta_returns_self(self):
        graph = generators.cycle(6)
        assert graph.with_edges() is graph
        assert graph.with_edges(added=[], removed=[]) is graph

    def test_add_existing_and_remove_absent_are_noops(self):
        graph = generators.cycle(6)
        merged = graph.with_edges(added=[(0, 1)], removed=[(0, 3)])
        assert_graphs_bit_identical(merged, graph)

    def test_duplicate_edges_within_delta_collapse(self):
        graph = generators.cycle(6)
        merged = graph.with_edges(added=[(0, 2), (0, 2), (0, 2)])
        reference = DiGraph(6, sorted(set(map(tuple, graph.edges())) | {(0, 2)}))
        assert_graphs_bit_identical(merged, reference)

    def test_original_graph_is_untouched(self):
        graph = generators.cycle(6)
        before = set(map(tuple, graph.edges()))
        graph.with_edges(added=[(0, 2)], removed=[(0, 1)])
        assert set(map(tuple, graph.edges())) == before


class TestValidation:
    def test_edge_in_both_added_and_removed_rejected(self):
        graph = generators.cycle(6)
        with pytest.raises(GraphFormatError):
            graph.with_edges(added=[(0, 2)], removed=[(0, 2)])

    def test_out_of_range_delta_edge_rejected(self):
        graph = generators.cycle(6)
        with pytest.raises(GraphFormatError):
            graph.with_edges(added=[(0, 6)])
        with pytest.raises(GraphFormatError):
            graph.with_edges(removed=[(-1, 0)])

    def test_malformed_delta_rejected(self):
        graph = generators.cycle(6)
        with pytest.raises(GraphFormatError):
            graph.with_edges(added=[(0, 1, 2)])

    def test_labels_are_shared(self):
        graph = DiGraph(3, [(0, 1), (1, 2)], labels=["a", "b", "c"])
        merged = graph.with_edges(added=[(2, 0)])
        assert merged.has_labels
        assert merged.label_of(2) == "c"
