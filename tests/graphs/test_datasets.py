"""Unit tests for the Table-3 dataset registry and its synthetic stand-ins."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.graphs import datasets


class TestRegistry:
    def test_twelve_datasets_in_paper_order(self):
        names = datasets.dataset_names()
        assert len(names) == 12
        assert names[0] == "GrQc"
        assert names[-1] == "Indochina"

    def test_small_and_large_subsets(self):
        assert set(datasets.SMALL_DATASETS) <= set(datasets.dataset_names())
        assert set(datasets.LARGE_DATASETS) <= set(datasets.dataset_names())
        assert len(datasets.SMALL_DATASETS) == 4
        assert len(datasets.LARGE_DATASETS) == 4

    def test_paper_statistics_recorded(self):
        spec = datasets.DATASETS["LiveJournal"]
        assert spec.paper_nodes == 4_847_571
        assert spec.paper_edges == 68_993_773
        assert spec.directed

    def test_undirected_datasets_marked(self):
        for name in ("GrQc", "AS", "HepTh", "Enron"):
            assert not datasets.DATASETS[name].directed
        for name in ("Wiki-Vote", "Slashdot", "Google"):
            assert datasets.DATASETS[name].directed


class TestLoading:
    def test_load_is_case_insensitive(self):
        graph = datasets.load_dataset("grqc", scale=0.1, seed=0)
        assert graph.num_nodes >= 16

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ParameterError):
            datasets.load_dataset("not-a-dataset")

    def test_scale_controls_size(self):
        small = datasets.load_dataset("AS", scale=0.1, seed=0)
        large = datasets.load_dataset("AS", scale=0.3, seed=0)
        assert large.num_nodes > small.num_nodes

    def test_invalid_scale_rejected(self):
        with pytest.raises(ParameterError):
            datasets.load_dataset("AS", scale=0.0)

    def test_undirected_standins_are_symmetric(self):
        graph = datasets.load_dataset("GrQc", scale=0.1, seed=0)
        assert graph.is_symmetric()

    def test_directed_standins_are_not_symmetric(self):
        graph = datasets.load_dataset("Wiki-Vote", scale=0.1, seed=0)
        assert not graph.is_symmetric()

    def test_loading_is_deterministic(self):
        first = datasets.load_dataset("Slashdot", scale=0.05, seed=3)
        second = datasets.load_dataset("Slashdot", scale=0.05, seed=3)
        assert set(first.edges()) == set(second.edges())

    def test_relative_ordering_of_sizes_matches_paper(self):
        # The stand-ins should preserve the relative size ordering of Table 3.
        sizes = [
            datasets.DATASETS[name].standin_nodes for name in datasets.dataset_names()
        ]
        assert sizes == sorted(sizes)


class TestTable3:
    def test_table3_without_standins(self):
        table = datasets.table3(include_standins=False)
        assert "GrQc" in table
        assert "Indochina" in table
        assert "5,242" in table  # paper node count of GrQc

    def test_table3_with_standins(self):
        table = datasets.table3(scale=0.05, include_standins=True)
        assert len(table.splitlines()) == 13  # header + 12 datasets
