"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graphs import generators


class TestDeterministicGraphs:
    def test_star_inward(self):
        graph = generators.star(4, inward=True)
        assert graph.num_nodes == 5
        assert graph.in_degree(0) == 4
        assert all(graph.in_degree(leaf) == 0 for leaf in range(1, 5))

    def test_star_outward(self):
        graph = generators.star(4, inward=False)
        assert graph.out_degree(0) == 4
        assert all(graph.in_degree(leaf) == 1 for leaf in range(1, 5))

    def test_cycle(self):
        graph = generators.cycle(5)
        assert graph.num_edges == 5
        assert all(graph.in_degree(v) == 1 for v in graph.nodes())
        assert graph.has_edge(4, 0)

    def test_path(self):
        graph = generators.path(4)
        assert graph.num_edges == 3
        assert graph.in_degree(0) == 0
        assert graph.out_degree(3) == 0

    def test_complete(self):
        graph = generators.complete(4)
        assert graph.num_edges == 12
        assert all(graph.in_degree(v) == 3 for v in graph.nodes())

    def test_complete_with_self_loops(self):
        graph = generators.complete(3, self_loops=True)
        assert graph.num_edges == 9

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ParameterError):
            generators.star(0)
        with pytest.raises(ParameterError):
            generators.cycle(0)
        with pytest.raises(ParameterError):
            generators.complete(-1)


class TestRandomModels:
    def test_erdos_renyi_edge_count(self):
        graph = generators.erdos_renyi(40, 120, seed=0)
        assert graph.num_nodes == 40
        assert graph.num_edges == 120

    def test_erdos_renyi_no_self_loops(self):
        graph = generators.erdos_renyi(20, 80, seed=1)
        assert all(u != v for u, v in graph.edges())

    def test_erdos_renyi_symmetrized(self):
        graph = generators.erdos_renyi(20, 40, seed=2, symmetrize=True)
        assert graph.is_symmetric()

    def test_erdos_renyi_too_many_edges_rejected(self):
        with pytest.raises(ParameterError):
            generators.erdos_renyi(3, 100, seed=0)

    def test_erdos_renyi_is_seeded(self):
        first = generators.erdos_renyi(30, 60, seed=9)
        second = generators.erdos_renyi(30, 60, seed=9)
        assert set(first.edges()) == set(second.edges())

    def test_preferential_attachment_size(self):
        graph = generators.preferential_attachment(50, 3, seed=0)
        assert graph.num_nodes == 50
        # Every node after the first attaches up to 3 edges.
        assert graph.num_edges <= 3 * 49
        assert graph.num_edges >= 49

    def test_preferential_attachment_skewed_in_degree(self):
        graph = generators.preferential_attachment(200, 2, seed=1)
        in_degrees = graph.in_degrees()
        # Heavy-tailed: the maximum should far exceed the mean.
        assert in_degrees.max() > 4 * in_degrees.mean()

    def test_preferential_attachment_symmetrize(self):
        graph = generators.preferential_attachment(30, 2, seed=3, symmetrize=True)
        assert graph.is_symmetric()

    def test_copying_model_bounds(self):
        graph = generators.copying_model(60, 4, seed=0)
        assert graph.num_nodes == 60
        assert all(u != v for u, v in graph.edges())

    def test_copying_model_invalid_probability(self):
        with pytest.raises(ParameterError):
            generators.copying_model(10, 2, copy_probability=1.5, seed=0)

    def test_small_world_symmetric(self):
        graph = generators.small_world(40, 4, seed=0)
        assert graph.is_symmetric()
        assert graph.num_nodes == 40

    def test_small_world_invalid_probability(self):
        with pytest.raises(ParameterError):
            generators.small_world(10, 2, rewire_probability=-0.1, seed=0)

    def test_two_level_community_size(self):
        graph = generators.two_level_community(3, 8, seed=0)
        assert graph.num_nodes == 24
        assert graph.is_symmetric()

    def test_random_dag_has_source_nodes(self):
        graph = generators.random_dag(25, 60, seed=0)
        assert (graph.in_degrees() == 0).any()

    def test_random_dag_is_acyclic(self):
        graph = generators.random_dag(25, 60, seed=1)
        # Every edge goes from a higher id to a lower id, so ids are a
        # reverse topological order.
        assert all(u > v for u, v in graph.edges())

    def test_generators_accept_generator_instance(self):
        rng = np.random.default_rng(5)
        graph = generators.erdos_renyi(20, 30, seed=rng)
        assert graph.num_edges == 30

    def test_different_seeds_differ(self):
        first = generators.preferential_attachment(40, 2, seed=1)
        second = generators.preferential_attachment(40, 2, seed=2)
        assert set(first.edges()) != set(second.edges())
