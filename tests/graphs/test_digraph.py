"""Unit tests for the compact DiGraph representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphFormatError, NodeNotFoundError
from repro.graphs import DiGraph, generators


class TestConstruction:
    def test_basic_counts(self):
        graph = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.num_nodes == 4
        assert graph.num_edges == 3
        assert len(graph) == 4

    def test_duplicate_edges_are_collapsed(self):
        graph = DiGraph(3, [(0, 1), (0, 1), (0, 1), (1, 2)])
        assert graph.num_edges == 2

    def test_self_loops_are_kept(self):
        graph = DiGraph(2, [(0, 0), (0, 1)])
        assert graph.has_edge(0, 0)
        assert graph.in_degree(0) == 1

    def test_empty_graph(self):
        graph = DiGraph(3, [])
        assert graph.num_edges == 0
        assert graph.in_degree(0) == 0
        assert list(graph.edges()) == []

    def test_zero_nodes(self):
        graph = DiGraph(0, [])
        assert graph.num_nodes == 0
        assert list(graph.nodes()) == []

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphFormatError):
            DiGraph(-1, [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphFormatError):
            DiGraph(3, [(0, 3)])
        with pytest.raises(GraphFormatError):
            DiGraph(3, [(-1, 0)])

    def test_repr_mentions_counts(self):
        graph = DiGraph(2, [(0, 1)])
        assert "num_nodes=2" in repr(graph)
        assert "num_edges=1" in repr(graph)


class TestNeighbors:
    def test_in_and_out_neighbors(self):
        graph = DiGraph(4, [(0, 2), (1, 2), (2, 3)])
        assert sorted(graph.in_neighbors(2).tolist()) == [0, 1]
        assert graph.out_neighbors(2).tolist() == [3]
        assert graph.in_neighbors(0).tolist() == []

    def test_degrees(self):
        graph = DiGraph(4, [(0, 2), (1, 2), (2, 3)])
        assert graph.in_degree(2) == 2
        assert graph.out_degree(2) == 1
        assert graph.in_degrees().tolist() == [0, 0, 2, 1]
        assert graph.out_degrees().tolist() == [1, 1, 1, 0]

    def test_degree_sums_equal_edge_count(self):
        graph = generators.preferential_attachment(50, 3, seed=1)
        assert int(graph.in_degrees().sum()) == graph.num_edges
        assert int(graph.out_degrees().sum()) == graph.num_edges

    def test_neighbor_views_are_read_only(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        view = graph.in_neighbors(1)
        with pytest.raises(ValueError):
            view[0] = 5

    def test_unknown_node_raises(self):
        graph = DiGraph(3, [(0, 1)])
        with pytest.raises(NodeNotFoundError):
            graph.in_neighbors(7)
        with pytest.raises(NodeNotFoundError):
            graph.out_degree(-1)

    def test_contains(self):
        graph = DiGraph(3, [(0, 1)])
        assert 2 in graph
        assert 3 not in graph
        assert "a" not in graph

    def test_has_edge(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_edges_iteration_matches_construction(self):
        edges = {(0, 1), (1, 2), (2, 0), (0, 2)}
        graph = DiGraph(3, edges)
        assert set(graph.edges()) == edges


class TestSampling:
    def test_sample_in_neighbors_respects_adjacency(self):
        graph = DiGraph(4, [(0, 2), (1, 2), (2, 3)])
        rng = np.random.default_rng(0)
        nodes = np.array([2] * 100 + [3] * 100)
        sampled = graph.sample_in_neighbors(nodes, rng)
        assert set(sampled[:100].tolist()) <= {0, 1}
        assert set(sampled[100:].tolist()) == {2}

    def test_sample_in_neighbors_zero_indegree_gives_sentinel(self):
        graph = DiGraph(3, [(0, 1)])
        rng = np.random.default_rng(0)
        sampled = graph.sample_in_neighbors(np.array([0, 2]), rng)
        assert sampled.tolist() == [-1, -1]

    def test_sample_in_neighbors_propagates_sentinel(self):
        graph = DiGraph(3, [(0, 1)])
        rng = np.random.default_rng(0)
        sampled = graph.sample_in_neighbors(np.array([-1, 1]), rng)
        assert sampled[0] == -1
        assert sampled[1] == 0

    def test_sample_in_neighbors_is_roughly_uniform(self):
        graph = DiGraph(4, [(0, 3), (1, 3), (2, 3)])
        rng = np.random.default_rng(1)
        sampled = graph.sample_in_neighbors(np.full(3000, 3), rng)
        counts = np.bincount(sampled, minlength=3)[:3]
        assert counts.min() > 800  # each of the three should get ~1000

    def test_sample_in_neighbors_rejects_bad_node(self):
        graph = DiGraph(3, [(0, 1)])
        with pytest.raises(NodeNotFoundError):
            graph.sample_in_neighbors(np.array([5]), np.random.default_rng(0))


class TestLabels:
    def test_from_edge_list_assigns_ids_in_first_seen_order(self):
        graph = DiGraph.from_edge_list([("a", "b"), ("b", "c")])
        assert graph.node_of("a") == 0
        assert graph.node_of("b") == 1
        assert graph.label_of(2) == "c"

    def test_from_edge_list_symmetrize(self):
        graph = DiGraph.from_edge_list([("a", "b")], symmetrize=True)
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_unknown_label_raises(self):
        graph = DiGraph.from_edge_list([("a", "b")])
        with pytest.raises(NodeNotFoundError):
            graph.node_of("zzz")

    def test_unlabeled_graph_uses_ids(self):
        graph = DiGraph(3, [(0, 1)])
        assert not graph.has_labels
        assert graph.label_of(1) == 1
        assert graph.node_of(2) == 2

    def test_duplicate_labels_rejected(self):
        with pytest.raises(GraphFormatError):
            DiGraph(2, [(0, 1)], labels=["x", "x"])

    def test_wrong_label_count_rejected(self):
        with pytest.raises(GraphFormatError):
            DiGraph(3, [(0, 1)], labels=["x", "y"])


class TestDerived:
    def test_reverse_swaps_directions(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        reverse = graph.reverse()
        assert reverse.has_edge(1, 0)
        assert reverse.has_edge(2, 1)
        assert reverse.num_edges == graph.num_edges

    def test_double_reverse_is_identity(self):
        graph = generators.preferential_attachment(30, 2, seed=5)
        double = graph.reverse().reverse()
        assert set(double.edges()) == set(graph.edges())

    def test_is_symmetric(self):
        assert generators.small_world(20, 4, seed=0).is_symmetric()
        assert not generators.path(4).is_symmetric()

    def test_statistics(self):
        graph = DiGraph(4, [(0, 2), (1, 2), (2, 3)])
        stats = graph.statistics()
        assert stats.num_nodes == 4
        assert stats.num_edges == 3
        assert stats.max_in_degree == 2
        assert stats.max_out_degree == 1
        assert not stats.is_symmetric
        assert "directed" in stats.as_table_row("tiny")

    def test_transition_matrix_columns_are_stochastic(self):
        graph = generators.preferential_attachment(25, 2, seed=2)
        transition = graph.transition_matrix()
        column_sums = np.asarray(transition.sum(axis=0)).ravel()
        in_degrees = graph.in_degrees()
        expected = (in_degrees > 0).astype(float)
        assert np.allclose(column_sums, expected)

    def test_transition_matrix_empty_graph(self):
        graph = DiGraph(3, [])
        transition = graph.transition_matrix()
        assert transition.shape == (3, 3)
        assert transition.nnz == 0

    def test_csr_views_consistent_with_neighbors(self):
        graph = generators.copying_model(30, 3, seed=4)
        in_indptr, in_indices = graph.in_csr()
        for node in graph.nodes():
            expected = sorted(graph.in_neighbors(node).tolist())
            actual = sorted(in_indices[in_indptr[node] : in_indptr[node + 1]].tolist())
            assert actual == expected

    def test_memory_bytes_positive(self):
        graph = generators.cycle(10)
        assert graph.memory_bytes() > 0


class TestNetworkxConversion:
    def test_roundtrip_directed(self):
        import networkx as nx

        nx_graph = nx.DiGraph([(1, 2), (2, 3), (3, 1)])
        graph = DiGraph.from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        back = graph.to_networkx()
        assert set(back.edges()) == set(nx_graph.edges())

    def test_undirected_networkx_is_symmetrized(self):
        import networkx as nx

        nx_graph = nx.Graph([(0, 1), (1, 2)])
        graph = DiGraph.from_networkx(nx_graph)
        assert graph.num_edges == 4
        assert graph.is_symmetric()


class TestPushEdgeWeights:
    def test_matches_per_edge_definition(self):
        graph = generators.two_level_community(2, 8, seed=1)
        sqrt_c = 0.775
        weights = graph.push_edge_weights(sqrt_c)
        out_indptr, out_indices = graph.out_csr()
        assert weights.shape == out_indices.shape
        in_degrees = graph.in_degrees()
        for edge, successor in enumerate(out_indices):
            assert weights[edge] == sqrt_c / in_degrees[successor]

    def test_cached_per_sqrt_c(self):
        graph = generators.cycle(6)
        first = graph.push_edge_weights(0.7)
        assert graph.push_edge_weights(0.7) is first
        assert graph.push_edge_weights(0.8) is not first

    def test_read_only(self):
        graph = generators.cycle(6)
        weights = graph.push_edge_weights(0.7)
        with pytest.raises(ValueError):
            weights[0] = 1.0
