"""Property-based tests of the end-to-end SLING guarantee on random graphs."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import simrank_matrix
from repro.graphs import DiGraph
from repro.sling import SlingIndex

C = 0.6
EPSILON = 0.15  # loose target keeps the per-example build cheap


def small_graphs(max_nodes: int = 8, max_edges: int = 24):
    return (
        st.integers(min_value=1, max_value=max_nodes)
        .flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=n - 1),
                        st.integers(min_value=0, max_value=n - 1),
                    ).filter(lambda edge: edge[0] != edge[1]),
                    max_size=max_edges,
                ),
            )
        )
        .map(lambda data: DiGraph(data[0], data[1]))
    )


@settings(max_examples=20, deadline=None)
@given(small_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_single_pair_scores_within_epsilon_of_truth(graph, seed):
    truth = simrank_matrix(graph, c=C, num_iterations=40)
    index = SlingIndex(graph, c=C, epsilon=EPSILON, seed=seed).build()
    for node_u in graph.nodes():
        for node_v in graph.nodes():
            estimate = index.single_pair(node_u, node_v)
            assert 0.0 <= estimate <= 1.0
            assert abs(estimate - truth[node_u, node_v]) <= EPSILON


@settings(max_examples=15, deadline=None)
@given(small_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_single_source_matches_truth_and_pairwise_variant(graph, seed):
    truth = simrank_matrix(graph, c=C, num_iterations=40)
    index = SlingIndex(graph, c=C, epsilon=EPSILON, seed=seed).build()
    for source in graph.nodes():
        local_push = index.single_source(source, method="local_push")
        pairwise = index.single_source(source, method="pairwise")
        assert np.abs(local_push - truth[source]).max() <= EPSILON
        assert np.abs(local_push - pairwise).max() <= EPSILON


@settings(max_examples=15, deadline=None)
@given(small_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_optimized_indexes_keep_the_guarantee(graph, seed):
    truth = simrank_matrix(graph, c=C, num_iterations=40)
    index = SlingIndex(
        graph,
        c=C,
        epsilon=EPSILON,
        seed=seed,
        reduce_space=True,
        enhance_accuracy=True,
    ).build()
    estimated = index.all_pairs()
    assert np.abs(estimated - truth).max() <= EPSILON


@settings(max_examples=15, deadline=None)
@given(small_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_correction_factors_and_hitting_sets_are_structurally_sound(graph, seed):
    index = SlingIndex(graph, c=C, epsilon=EPSILON, seed=seed).build()
    corrections = index.correction_factors
    assert np.all((corrections >= 0.0) & (corrections <= 1.0))
    for node, hitting_set in enumerate(index.hitting_sets):
        # Level 0 always contains the node itself with probability 1.
        assert hitting_set.get(0, node) == 1.0
        for level in hitting_set.levels:
            assert hitting_set.total_mass(level) <= (C**0.5) ** level + 1e-9
