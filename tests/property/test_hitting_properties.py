"""Property-based tests for the hitting-probability machinery (Algorithm 2)."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import DiGraph
from repro.sling import build_hitting_sets, exact_near_hops, reverse_push
from repro.sling.hitting import theoretical_error_bound

SQRT_C = math.sqrt(0.6)


def small_graphs(max_nodes: int = 8, max_edges: int = 24):
    return (
        st.integers(min_value=1, max_value=max_nodes)
        .flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=n - 1),
                        st.integers(min_value=0, max_value=n - 1),
                    ).filter(lambda edge: edge[0] != edge[1]),
                    max_size=max_edges,
                ),
            )
        )
        .map(lambda data: DiGraph(data[0], data[1]))
    )


def exact_hitting_matrices(graph: DiGraph, max_level: int) -> list[np.ndarray]:
    """Exact h^(l) matrices (entry [i, k]) for levels 0..max_level."""
    scaled = SQRT_C * graph.transition_matrix().toarray()
    levels = [np.eye(graph.num_nodes)]
    for _ in range(max_level):
        levels.append(scaled.T @ levels[-1])
    return levels


thetas = st.sampled_from([0.005, 0.02, 0.05, 0.15])


@settings(max_examples=30, deadline=None)
@given(small_graphs(), thetas)
def test_reverse_push_entries_above_theta_and_below_exact(graph, theta):
    max_level = 10
    exact = exact_hitting_matrices(graph, max_level)
    for target in range(graph.num_nodes):
        pushed = reverse_push(graph, target, SQRT_C, theta, max_levels=max_level)
        for level, entries in pushed.items():
            for source, value in entries.items():
                assert value > theta
                assert value <= exact[level][source, target] + 1e-12


@settings(max_examples=30, deadline=None)
@given(small_graphs(), thetas)
def test_reverse_push_error_within_lemma7_bound(graph, theta):
    max_level = 8
    exact = exact_hitting_matrices(graph, max_level)
    for target in range(graph.num_nodes):
        pushed = reverse_push(graph, target, SQRT_C, theta, max_levels=max_level)
        for level in range(max_level):
            bound = theoretical_error_bound(SQRT_C, theta, level)
            entries = pushed.get(level, {})
            for source in range(graph.num_nodes):
                approx = entries.get(source, 0.0)
                assert exact[level][source, target] - approx <= bound + 1e-12


@settings(max_examples=30, deadline=None)
@given(small_graphs(), thetas)
def test_hitting_set_level_mass_bounded(graph, theta):
    hitting_sets = build_hitting_sets(graph, SQRT_C, theta)
    for hitting_set in hitting_sets:
        for level in hitting_set.levels:
            assert hitting_set.total_mass(level) <= SQRT_C**level + 1e-9


@settings(max_examples=30, deadline=None)
@given(small_graphs())
def test_exact_near_hops_match_matrix_computation(graph):
    exact = exact_hitting_matrices(graph, 2)
    for node in range(graph.num_nodes):
        near = exact_near_hops(graph, node, SQRT_C)
        for level in (1, 2):
            entries = near.get(level, {})
            for target in range(graph.num_nodes):
                assert abs(entries.get(target, 0.0) - exact[level][node, target]) < 1e-12


@settings(max_examples=25, deadline=None)
@given(small_graphs(), thetas)
def test_smaller_theta_never_shrinks_hitting_sets(graph, theta):
    coarse = build_hitting_sets(graph, SQRT_C, theta)
    fine = build_hitting_sets(graph, SQRT_C, theta / 4)
    assert sum(len(hs) for hs in fine) >= sum(len(hs) for hs in coarse)
