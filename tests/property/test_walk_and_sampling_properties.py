"""Property-based tests for √c-walks and the Bernoulli-mean estimators."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import DiGraph
from repro.sling import SqrtCWalker
from repro.sling.sampling import (
    estimate_bernoulli_mean_adaptive,
    estimate_bernoulli_mean_adaptive_batch,
    fixed_sample_count,
)

C = 0.6


def small_graphs(max_nodes: int = 8, max_edges: int = 24):
    return (
        st.integers(min_value=1, max_value=max_nodes)
        .flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=n - 1),
                        st.integers(min_value=0, max_value=n - 1),
                    ).filter(lambda edge: edge[0] != edge[1]),
                    max_size=max_edges,
                ),
            )
        )
        .map(lambda data: DiGraph(data[0], data[1]))
    )


@settings(max_examples=40, deadline=None)
@given(small_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_walks_always_follow_in_edges(graph, seed):
    walker = SqrtCWalker(graph, c=C, seed=seed)
    for start in range(graph.num_nodes):
        walk = walker.walk(start)
        assert walk[0] == start
        for previous, current in zip(walk, walk[1:]):
            assert current in graph.in_neighbors(previous)


@settings(max_examples=40, deadline=None)
@given(small_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
def test_walk_pair_meeting_symmetric_in_expectation(graph, seed):
    walker = SqrtCWalker(graph, c=C, seed=seed)
    # Meeting of (u, u) pairs is certain, regardless of graph shape.
    for node in range(graph.num_nodes):
        assert walker.walk_pair_meets(node, node)


@settings(max_examples=20, deadline=None)
@given(small_graphs(max_nodes=6), st.integers(min_value=0, max_value=2**31 - 1))
def test_count_meeting_pairs_between_zero_and_batch_size(graph, seed):
    walker = SqrtCWalker(graph, c=C, seed=seed)
    rng = np.random.default_rng(seed)
    batch = 64
    starts_a = rng.integers(0, graph.num_nodes, size=batch)
    starts_b = rng.integers(0, graph.num_nodes, size=batch)
    count = walker.count_meeting_pairs(starts_a, starts_b)
    assert 0 <= count <= batch
    identical = int((starts_a == starts_b).sum())
    assert count >= identical  # identical starts always meet at step 0


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.sampled_from([0.05, 0.1, 0.2]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_adaptive_estimator_concentrates(probability, epsilon, seed):
    rng = np.random.default_rng(seed)
    estimate = estimate_bernoulli_mean_adaptive(
        lambda: bool(rng.random() < probability), epsilon=epsilon, delta=0.01
    )
    # delta = 1% failure probability; with 25 examples a systematic violation
    # would show up immediately, an isolated unlucky draw is tolerated by the
    # slack added below.
    assert abs(estimate.mean - probability) <= epsilon + 0.02


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.sampled_from([0.05, 0.1, 0.2]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_batch_and_scalar_adaptive_estimators_use_same_budgets(
    probability, epsilon, seed
):
    scalar_rng = np.random.default_rng(seed)
    batch_rng = np.random.default_rng(seed)
    scalar = estimate_bernoulli_mean_adaptive(
        lambda: bool(scalar_rng.random() < probability), epsilon=epsilon, delta=0.05
    )
    batch = estimate_bernoulli_mean_adaptive_batch(
        lambda count: int((batch_rng.random(count) < probability).sum()),
        epsilon=epsilon,
        delta=0.05,
    )
    # Identical RNG stream => identical first-phase success counts => identical
    # total budgets and means.
    assert scalar.num_samples == batch.num_samples
    assert scalar.mean == batch.mean


@settings(max_examples=30, deadline=None)
@given(st.sampled_from([0.01, 0.05, 0.1]), st.sampled_from([0.001, 0.01, 0.1]))
def test_fixed_sample_count_monotone(epsilon, delta):
    assert fixed_sample_count(epsilon, delta) >= fixed_sample_count(epsilon * 2, delta)
    assert fixed_sample_count(epsilon, delta) >= fixed_sample_count(epsilon, delta * 2)
