"""Property: WAL recovery reproduces the live service, for any history.

For an arbitrary short mutation history — adds and removes of random
edges (no-ops included), with occasional mid-stream re-freezes driving
checkpoint folds — a fresh service recovered from the WAL over the same
base graph must answer single-source queries within float tolerance of
the live service that executed the history.  The history ends with a
re-freeze so both sides compare frozen stores (bitwise rebuild parity
makes the comparison exact up to float noise rather than ``eps_stale``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BackendConfig
from repro.graphs import generators
from repro.service import (
    MutateRequest,
    ServiceConfig,
    SimRankService,
    SingleSourceQuery,
)

DATASET = "toy"
NUM_NODES = 30
PROBES = (0, 7, 14, 21, 29)


def make_service(wal_dir) -> SimRankService:
    config = ServiceConfig(
        scale=0.05,
        backend="sling",
        backend_config=BackendConfig(epsilon=0.15, seed=0),
        wal_dir=str(wal_dir),
    )
    service = SimRankService(config)
    service.open_dataset(
        DATASET, graph=generators.two_level_community(3, 10, seed=7)
    )
    return service


edges = st.tuples(
    st.integers(0, NUM_NODES - 1), st.integers(0, NUM_NODES - 1)
).filter(lambda e: e[0] != e[1])

operations = st.lists(
    st.fixed_dictionaries(
        {
            "add": st.lists(edges, max_size=2),
            "remove": st.lists(edges, max_size=2),
            # Re-freezes are rare but must occur: they are what folds the
            # log into a checkpoint mid-history.
            "refreeze": st.sampled_from([False, False, False, True]),
        }
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=8, deadline=None)
@given(ops=operations)
def test_recovered_service_matches_live(tmp_path_factory, ops):
    wal_dir = tmp_path_factory.mktemp("wal")
    service = make_service(wal_dir)
    for index, op in enumerate(ops):
        result = service.execute_control(
            MutateRequest(
                dataset=DATASET,
                add=op["add"],
                remove=op["remove"],
                refreeze=op["refreeze"],
                mutation_id=f"prop-{index}",
            )
        )
        assert result.ok, result.error
    final = service.execute_control(
        MutateRequest(dataset=DATASET, refreeze=True, mutation_id="prop-final")
    )
    assert final.ok, final.error

    live = {
        node: list(service.execute(SingleSourceQuery(DATASET, node=node)).value)
        for node in PROBES
    }

    recovered = make_service(wal_dir)
    session = recovered.open_dataset(DATASET)
    assert session.graph.num_edges == service.open_dataset(DATASET).graph.num_edges
    for node in PROBES:
        replayed = recovered.execute(SingleSourceQuery(DATASET, node=node))
        assert replayed.ok
        assert list(replayed.value) == pytest.approx(live[node], abs=1e-6), node
