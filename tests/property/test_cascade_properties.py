"""Property-based tests for the level-cascade kernel and bounded top-k.

Three invariants over random graphs:

* the cascade agrees with the per-level reference within ε for every
  optimization-flag combination (it prunes strictly less mass, so both stay
  inside the same Theorem-1 budget),
* the ``np.bincount`` rewrite of :func:`push_frontier` is **bitwise**
  identical to the original ``np.add.at`` scatter (bincount folds the
  weights in input order, exactly as add.at did),
* ``top_k(node, k)`` is a prefix of ``top_k(node, k + 5)`` — always for the
  exact path, and for the bounded path whenever both queries ran the same
  cascade (same truncation decision ⇒ same score vector ⇒ consistent
  ranking).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import DiGraph
from repro.sling import SlingIndex, push_frontier

SQRT_C = math.sqrt(0.6)
EPS = 0.05

FLAG_COMBOS = [
    pytest.param(False, False, id="plain"),
    pytest.param(True, False, id="reduce_space"),
    pytest.param(False, True, id="enhance_accuracy"),
    pytest.param(True, True, id="both"),
]


def small_graphs(max_nodes: int = 8, max_edges: int = 24):
    return (
        st.integers(min_value=2, max_value=max_nodes)
        .flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=n - 1),
                        st.integers(min_value=0, max_value=n - 1),
                    ).filter(lambda edge: edge[0] != edge[1]),
                    max_size=max_edges,
                ),
            )
        )
        .map(lambda data: DiGraph(data[0], data[1]))
    )


@pytest.mark.parametrize("reduce_space,enhance_accuracy", FLAG_COMBOS)
@settings(max_examples=15, deadline=None)
@given(graph=small_graphs())
def test_cascade_within_epsilon_of_reference(graph, reduce_space, enhance_accuracy):
    index = SlingIndex(
        graph,
        epsilon=EPS,
        seed=2,
        reduce_space=reduce_space,
        enhance_accuracy=enhance_accuracy,
    ).build()
    for node in graph.nodes():
        reference = index.single_source(node)
        cascade = index.single_source(node, method="cascade")
        assert np.abs(cascade - reference).max() <= EPS


def reference_push_frontier(graph, frontier_nodes, frontier_values, sqrt_c):
    """The pre-rewrite push step, inlined: ``np.add.at`` into a zeros buffer."""
    out_indptr, out_indices = graph.out_csr()
    in_degrees = graph.in_degrees()
    starts = out_indptr[frontier_nodes]
    counts = out_indptr[frontier_nodes + 1] - starts
    total_edges = int(counts.sum())
    if total_edges == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    edge_offsets = np.repeat(starts, counts) + (
        np.arange(total_edges, dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )
    successors = out_indices[edge_offsets]
    contributions = (
        sqrt_c * np.repeat(frontier_values, counts) / in_degrees[successors]
    )
    buffer = np.zeros(graph.num_nodes, dtype=np.float64)
    np.add.at(buffer, successors, contributions)
    next_nodes = np.flatnonzero(buffer)
    return next_nodes, buffer[next_nodes]


@settings(max_examples=60, deadline=None)
@given(data=st.data(), graph=small_graphs(max_nodes=10, max_edges=40))
def test_push_frontier_bitwise_matches_add_at(data, graph):
    n = graph.num_nodes
    nodes = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1,
            max_size=n,
            unique=True,
        )
    )
    frontier_nodes = np.array(sorted(nodes), dtype=np.int64)
    frontier_values = np.array(
        data.draw(
            st.lists(
                st.floats(min_value=1e-6, max_value=1.0),
                min_size=len(nodes),
                max_size=len(nodes),
            )
        )
    )
    ref_nodes, ref_values = reference_push_frontier(
        graph, frontier_nodes, frontier_values, SQRT_C
    )
    new_nodes, new_values = push_frontier(
        graph, frontier_nodes, frontier_values, SQRT_C
    )
    assert np.array_equal(ref_nodes, new_nodes)
    # Bitwise, not approx: bincount must reproduce add.at's fold exactly.
    assert np.array_equal(ref_values, new_values)


@settings(max_examples=10, deadline=None)
@given(graph=small_graphs(max_nodes=10, max_edges=30))
def test_top_k_prefix_consistency(graph):
    index = SlingIndex(graph, epsilon=EPS, seed=4).build()
    for node in list(graph.nodes())[:3]:
        small = index.top_k(node, 3)
        large = index.top_k(node, 8)
        assert [i for i, _ in small] == [i for i, _ in large][: len(small)]
        bounded_small = index.top_k_bounded(node, 3)
        bounded_large = index.top_k_bounded(node, 8)
        same_cascade = (
            bounded_small.truncated == bounded_large.truncated
            and bounded_small.stop_level == bounded_large.stop_level
        )
        if same_cascade:
            ids_small = [i for i, _ in bounded_small.ranked]
            ids_large = [i for i, _ in bounded_large.ranked]
            assert ids_small == ids_large[: len(ids_small)]
