"""Property-based tests for the graph substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import DiGraph


def edge_lists(max_nodes: int = 10, max_edges: int = 40):
    """Strategy producing (num_nodes, edge list) pairs with valid endpoints."""
    return st.integers(min_value=1, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=max_edges,
            ),
        )
    )


@settings(max_examples=60, deadline=None)
@given(edge_lists())
def test_degree_sums_equal_edge_count(data):
    num_nodes, edges = data
    graph = DiGraph(num_nodes, edges)
    assert int(graph.in_degrees().sum()) == graph.num_edges
    assert int(graph.out_degrees().sum()) == graph.num_edges


@settings(max_examples=60, deadline=None)
@given(edge_lists())
def test_edges_iteration_matches_has_edge(data):
    num_nodes, edges = data
    graph = DiGraph(num_nodes, edges)
    listed = set(graph.edges())
    assert listed == {(int(u), int(v)) for u, v in edges}
    for u, v in listed:
        assert graph.has_edge(u, v)


@settings(max_examples=60, deadline=None)
@given(edge_lists())
def test_reverse_is_involutive_and_swaps_degrees(data):
    num_nodes, edges = data
    graph = DiGraph(num_nodes, edges)
    reverse = graph.reverse()
    assert np.array_equal(graph.in_degrees(), reverse.out_degrees())
    assert np.array_equal(graph.out_degrees(), reverse.in_degrees())
    assert set(graph.edges()) == set(reverse.reverse().edges())


@settings(max_examples=60, deadline=None)
@given(edge_lists())
def test_in_neighbors_consistent_with_out_neighbors(data):
    num_nodes, edges = data
    graph = DiGraph(num_nodes, edges)
    for node in graph.nodes():
        for neighbor in graph.in_neighbors(node):
            assert node in graph.out_neighbors(int(neighbor))


@settings(max_examples=60, deadline=None)
@given(edge_lists())
def test_transition_matrix_column_sums(data):
    num_nodes, edges = data
    graph = DiGraph(num_nodes, edges)
    sums = np.asarray(graph.transition_matrix().sum(axis=0)).ravel()
    expected = (graph.in_degrees() > 0).astype(float)
    assert np.allclose(sums, expected)


@settings(max_examples=40, deadline=None)
@given(edge_lists(), st.integers(min_value=0, max_value=2**31 - 1))
def test_sampled_in_neighbors_are_real_in_neighbors(data, seed):
    num_nodes, edges = data
    graph = DiGraph(num_nodes, edges)
    rng = np.random.default_rng(seed)
    nodes = np.arange(num_nodes)
    sampled = graph.sample_in_neighbors(nodes, rng)
    for node, pick in zip(nodes, sampled):
        if pick < 0:
            assert graph.in_degree(int(node)) == 0
        else:
            assert pick in graph.in_neighbors(int(node))
