"""Property-based tests of the dynamic-index maintenance guarantee.

Across random graphs and random edit sequences, the incrementally
maintained index must (a) answer every query kind within the certified
staleness bound of a from-scratch rebuild on the mutated graph, and
(b) return to *bitwise* rebuild parity after a re-freeze.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import DiGraph
from repro.sling import DynamicSlingIndex, SlingIndex

C = 0.6
EPSILON = 0.15  # loose target keeps the per-example build cheap
SEED = 5


def edge_strategy(n: int):
    return st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda edge: edge[0] != edge[1])


def graph_and_edits(max_nodes: int = 7, max_edges: int = 16, max_edits: int = 5):
    """A small graph plus a random sequence of (add?, (u, v)) edit steps."""
    return st.integers(min_value=2, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(edge_strategy(n), max_size=max_edges),
            st.lists(
                st.tuples(st.booleans(), edge_strategy(n)),
                min_size=1,
                max_size=max_edits,
            ),
        )
    )


def apply_edit(index: DynamicSlingIndex, is_add: bool, edge: tuple[int, int]):
    if is_add:
        return index.add_edges([edge])
    return index.remove_edges([edge])


@settings(max_examples=12, deadline=None)
@given(graph_and_edits(), st.integers(min_value=0, max_value=2**31 - 1))
def test_incremental_answers_track_rebuild_within_staleness_bound(data, seed):
    n, edges, edits = data
    index = DynamicSlingIndex(
        DiGraph(n, edges), c=C, epsilon=EPSILON, seed=seed
    ).build()
    for is_add, edge in edits:
        apply_edit(index, is_add, edge)
        fresh = SlingIndex(index.graph, c=C, epsilon=EPSILON, seed=seed).build()
        bound = index.staleness_bound()
        for node in range(n):
            incremental = index.single_source(node)
            rebuilt = fresh.single_source(node)
            assert np.abs(incremental - rebuilt).max() <= bound
            for other in range(n):
                pair = index.single_pair(node, other)
                assert abs(pair - fresh.single_pair(node, other)) <= bound
            # Top-k scores must agree within the bound too (rank order may
            # legitimately differ for scores closer than the bound).
            for rank, (target, score) in enumerate(index.top_k(node, 3)):
                assert abs(score - rebuilt[target]) <= bound


@settings(max_examples=12, deadline=None)
@given(graph_and_edits(), st.integers(min_value=0, max_value=2**31 - 1))
def test_refreeze_restores_bitwise_rebuild_parity(data, seed):
    n, edges, edits = data
    index = DynamicSlingIndex(
        DiGraph(n, edges), c=C, epsilon=EPSILON, seed=seed
    ).build()
    for is_add, edge in edits:
        apply_edit(index, is_add, edge)
    assert index.refreeze()
    assert index.staleness_bound() == 0.0
    fresh = SlingIndex(index.graph, c=C, epsilon=EPSILON, seed=seed).build()
    assert np.array_equal(index.correction_factors, fresh.correction_factors)
    for node in range(n):
        assert np.array_equal(index.single_source(node), fresh.single_source(node))
        levels, targets, values = index.packed_store.node_entries(node)
        f_levels, f_targets, f_values = fresh.packed_store.node_entries(node)
        assert np.array_equal(levels, f_levels)
        assert np.array_equal(targets, f_targets)
        assert np.array_equal(values, f_values)


@settings(max_examples=12, deadline=None)
@given(graph_and_edits(max_edits=4), st.integers(min_value=0, max_value=2**31 - 1))
def test_edit_sequence_converges_to_direct_construction(data, seed):
    """The graph after any edit sequence matches building it directly."""
    n, edges, edits = data
    index = DynamicSlingIndex(
        DiGraph(n, edges), c=C, epsilon=EPSILON, seed=seed
    ).build()
    reference = set(map(tuple, DiGraph(n, edges).edges()))
    for is_add, edge in edits:
        apply_edit(index, is_add, edge)
        if is_add:
            reference.add(edge)
        else:
            reference.discard(edge)
    assert set(map(tuple, index.graph.edges())) == reference
