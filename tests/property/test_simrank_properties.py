"""Property-based tests of SimRank invariants across all implementations."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import naive_simrank, simrank_matrix
from repro.graphs import DiGraph
from repro.sling import exact_correction_factors

C = 0.6


def small_graphs(max_nodes: int = 7, max_edges: int = 20):
    """Strategy producing small DiGraph instances."""
    return (
        st.integers(min_value=2, max_value=max_nodes)
        .flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=n - 1),
                        st.integers(min_value=0, max_value=n - 1),
                    ).filter(lambda edge: edge[0] != edge[1]),
                    max_size=max_edges,
                ),
            )
        )
        .map(lambda data: DiGraph(data[0], data[1]))
    )


@settings(max_examples=30, deadline=None)
@given(small_graphs())
def test_power_method_scores_are_valid_similarities(graph):
    matrix = simrank_matrix(graph, c=C, num_iterations=25)
    assert np.allclose(matrix.diagonal(), 1.0)
    assert np.allclose(matrix, matrix.T)
    assert matrix.min() >= 0.0
    assert matrix.max() <= 1.0 + 1e-12


@settings(max_examples=15, deadline=None)
@given(small_graphs(max_nodes=5, max_edges=12))
def test_power_method_agrees_with_naive_iteration(graph):
    iterations = 12
    matrix = simrank_matrix(graph, c=C, num_iterations=iterations)
    oracle = naive_simrank(graph, c=C, num_iterations=iterations)
    for (u, v), value in oracle.items():
        assert abs(matrix[u, v] - value) < 1e-9


@settings(max_examples=30, deadline=None)
@given(small_graphs())
def test_zero_in_degree_pairs_have_zero_similarity(graph):
    matrix = simrank_matrix(graph, c=C, num_iterations=20)
    sources = np.flatnonzero(graph.in_degrees() == 0)
    for source in sources:
        for other in graph.nodes():
            if other != source:
                assert matrix[source, other] == 0.0


@settings(max_examples=30, deadline=None)
@given(small_graphs())
def test_correction_factors_lie_in_unit_interval(graph):
    matrix = simrank_matrix(graph, c=C, num_iterations=30)
    corrections = exact_correction_factors(graph, matrix, C)
    assert np.all(corrections >= 0.0)
    assert np.all(corrections <= 1.0)
    # Zero-in-degree nodes have d = 1, single-in-neighbour nodes d = 1 - c.
    for node in graph.nodes():
        if graph.in_degree(node) == 0:
            assert corrections[node] == 1.0
        elif graph.in_degree(node) == 1:
            assert abs(corrections[node] - (1.0 - C)) < 1e-9


@settings(max_examples=20, deadline=None)
@given(small_graphs(max_nodes=6, max_edges=15))
def test_lemma4_reconstruction_matches_simrank(graph):
    """Σ_l c^l (P^l)^T D P^l must reproduce the SimRank matrix (Lemma 4/5)."""
    truth = simrank_matrix(graph, c=C, num_iterations=50)
    corrections = exact_correction_factors(graph, truth, C)
    transition = graph.transition_matrix().toarray()
    reconstruction = np.zeros_like(truth)
    power = np.eye(graph.num_nodes)
    for level in range(50):
        reconstruction += (C**level) * power.T @ np.diag(corrections) @ power
        power = transition @ power
    assert np.abs(reconstruction - truth).max() < 5e-3


@settings(max_examples=30, deadline=None)
@given(small_graphs(), st.integers(min_value=1, max_value=20))
def test_simrank_iteration_is_monotone_nondecreasing(graph, iterations):
    fewer = simrank_matrix(graph, c=C, num_iterations=iterations)
    more = simrank_matrix(graph, c=C, num_iterations=iterations + 3)
    assert np.all(more >= fewer - 1e-12)
