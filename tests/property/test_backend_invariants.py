"""Property-based SimRank invariants enforced across every backend.

Every registered similarity backend — the SLING index and each baseline —
must present the same mathematical contract through the
:class:`~repro.engine.backends.SimilarityBackend` protocol:

* ``s(u, u) = 1`` (exactly for exact backends, within the accuracy target
  for approximate ones);
* ``0 <= s(u, v) <= 1``;
* symmetry, ``s(u, v) = s(v, u)``;
* ``single_source(u)[v]`` consistent with ``single_pair(u, v)``;
* ``top_k`` sorted by descending score (ties on the smaller node id),
  excluding the source, with scores consistent with single-pair values.

Graphs are drawn by hypothesis; backends are built deterministically
(fixed seed), so any failure replays exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.engine import BackendConfig, backend_names, create_backend
from repro.graphs import DiGraph

#: Exact backends answer these invariants to rounding error.
EXACT_TOLERANCE = 1e-9

#: SLING and linearize are additive-epsilon approximations (and linearize's
#: correction diagonal is itself estimated), so identity/bounds/consistency
#: hold only to accuracy-target order.  The builds below use epsilon=0.05;
#: observed worst cases are ~0.03 — 0.15 is that with a safety margin, small
#: enough that a genuinely broken backend (wrong normalisation, asymmetric
#: intersection, off-by-one level) still fails loudly.
APPROX_TOLERANCE = 0.15

#: Backends whose stored structures make these invariants exact.
EXACT_BACKENDS = ("naive", "power", "montecarlo", "montecarlo_sqrtc")

#: Backends that answer within the accuracy target only.
APPROX_BACKENDS = ("sling", "linearize")

#: All in-memory backends (sling-disk is exercised separately on a fixed
#: graph — per-example temp-dir builds would dominate the run time).
ALL_BACKENDS = EXACT_BACKENDS + APPROX_BACKENDS

CONFIG = BackendConfig(epsilon=0.05, seed=0, mc_num_walks=300)


def tolerance_for(name: str) -> float:
    return EXACT_TOLERANCE if name in EXACT_BACKENDS else APPROX_TOLERANCE


def small_graphs(max_nodes: int = 7, max_edges: int = 20):
    """Strategy producing small DiGraph instances (mirrors the suite-wide
    generator in test_simrank_properties)."""
    return (
        st.integers(min_value=2, max_value=max_nodes)
        .flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=n - 1),
                        st.integers(min_value=0, max_value=n - 1),
                    ).filter(lambda edge: edge[0] != edge[1]),
                    max_size=max_edges,
                ),
            )
        )
        .map(lambda data: DiGraph(data[0], data[1]))
    )


def build_all(graph: DiGraph):
    """One built backend per registry name, deterministic for the graph."""
    return {name: create_backend(name, graph, CONFIG) for name in ALL_BACKENDS}


def test_backend_lists_cover_registry():
    """The invariant suite must not silently skip a newly-registered backend."""
    assert set(ALL_BACKENDS) | {"sling-disk"} == set(backend_names())


@settings(max_examples=15, deadline=None)
@given(small_graphs())
def test_self_similarity_is_one(graph):
    for name, backend in build_all(graph).items():
        tolerance = tolerance_for(name)
        for node in graph.nodes():
            assert abs(backend.single_pair(node, node) - 1.0) <= tolerance, name


@settings(max_examples=15, deadline=None)
@given(small_graphs())
def test_scores_lie_in_unit_interval(graph):
    for name, backend in build_all(graph).items():
        tolerance = tolerance_for(name)
        for node in graph.nodes():
            scores = np.asarray(backend.single_source(node), dtype=np.float64)
            assert scores.min() >= -tolerance, name
            assert scores.max() <= 1.0 + tolerance, name


@settings(max_examples=15, deadline=None)
@given(small_graphs())
def test_single_pair_is_symmetric(graph):
    """Symmetry is structural (shared walks / commutative intersections), so
    it must hold to rounding error even for the approximate backends."""
    for name, backend in build_all(graph).items():
        for node_u in graph.nodes():
            for node_v in graph.nodes():
                forward = backend.single_pair(node_u, node_v)
                backward = backend.single_pair(node_v, node_u)
                assert abs(forward - backward) <= EXACT_TOLERANCE, name


@settings(max_examples=15, deadline=None)
@given(small_graphs())
def test_single_source_consistent_with_single_pair(graph):
    for name, backend in build_all(graph).items():
        tolerance = tolerance_for(name)
        for node_u in graph.nodes():
            scores = np.asarray(backend.single_source(node_u), dtype=np.float64)
            for node_v in graph.nodes():
                pair = backend.single_pair(node_u, node_v)
                assert abs(scores[node_v] - pair) <= tolerance, name


@settings(max_examples=15, deadline=None)
@given(small_graphs(), st.integers(min_value=1, max_value=10))
def test_top_k_is_sorted_and_consistent(graph, k):
    for name, backend in build_all(graph).items():
        tolerance = tolerance_for(name)
        for node in graph.nodes():
            ranked = backend.top_k(node, k)
            assert len(ranked) == min(k, graph.num_nodes - 1), name
            assert all(other != node for other, _ in ranked), name
            assert len({other for other, _ in ranked}) == len(ranked), name
            # Sorted: descending score, ties broken on the smaller node id.
            for (node_a, score_a), (node_b, score_b) in zip(ranked, ranked[1:]):
                assert (-score_a, node_a) <= (-score_b, node_b), name
            # Ranked scores agree with the single-pair answers, and the
            # ranking is genuinely top-k: nothing outside beats the tail.
            for other, score in ranked:
                assert abs(score - backend.single_pair(node, other)) <= tolerance, name
            if ranked:
                scores = np.asarray(backend.single_source(node), dtype=np.float64)
                tail = ranked[-1][1]
                outside = [
                    float(scores[other])
                    for other in graph.nodes()
                    if other != node and other not in {o for o, _ in ranked}
                ]
                if outside:
                    assert max(outside) <= tail + EXACT_TOLERANCE, name
