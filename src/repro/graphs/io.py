"""Edge-list I/O.

The SNAP and LAW datasets used in the paper are distributed as plain-text
edge lists (one ``source<TAB>target`` pair per line, ``#`` comments).  This
module reads and writes that format so that a user with access to the original
files can run the full evaluation on the real graphs, while the rest of the
repository falls back to the synthetic stand-ins of :mod:`repro.graphs.datasets`.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from ..exceptions import GraphFormatError
from .digraph import DiGraph

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_lines"]


def _open_text(path: str | Path, mode: str) -> TextIO:
    """Open ``path`` as text, transparently handling ``.gz`` files."""
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"))  # type: ignore[arg-type]
    return open(path, mode, encoding="utf-8")


def parse_edge_lines(
    lines: Iterable[str], *, comment: str = "#", delimiter: str | None = None
) -> Iterator[tuple[str, str]]:
    """Yield ``(source, target)`` label pairs from raw edge-list lines.

    Blank lines and lines starting with ``comment`` are skipped.  Lines that do
    not contain at least two fields raise :class:`GraphFormatError`.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        fields = line.split(delimiter)
        if len(fields) < 2:
            raise GraphFormatError(
                f"line {line_number}: expected at least two fields, got {line!r}"
            )
        yield fields[0], fields[1]


def read_edge_list(
    path: str | Path,
    *,
    symmetrize: bool = False,
    comment: str = "#",
    delimiter: str | None = None,
) -> DiGraph:
    """Read a SNAP-style edge list file into a :class:`DiGraph`.

    Parameters
    ----------
    path:
        Path to a plain-text or ``.gz`` edge-list file.
    symmetrize:
        Add the reverse of every edge; use for undirected datasets
        (GrQc, AS, HepTh, Enron in Table 3).
    comment, delimiter:
        Comment prefix and field delimiter (default: any whitespace).
    """
    with _open_text(path, "r") as handle:
        pairs = parse_edge_lines(handle, comment=comment, delimiter=delimiter)
        return DiGraph.from_edge_list(pairs, symmetrize=symmetrize)


def write_edge_list(graph: DiGraph, path: str | Path, *, header: str | None = None) -> None:
    """Write ``graph`` as a tab-separated edge list (original labels)."""
    with _open_text(path, "w") as handle:
        if header:
            for header_line in header.splitlines():
                handle.write(f"# {header_line}\n")
        for u, v in graph.edges():
            handle.write(f"{graph.label_of(u)}\t{graph.label_of(v)}\n")
