"""Graph substrate: compact digraph, I/O, generators, and dataset stand-ins."""

from .digraph import DiGraph, GraphStatistics
from .io import read_edge_list, write_edge_list
from . import generators, datasets

__all__ = [
    "DiGraph",
    "GraphStatistics",
    "read_edge_list",
    "write_edge_list",
    "generators",
    "datasets",
]
