"""Seeded random-graph generators.

The paper's evaluation uses twelve real-world graphs from SNAP and LAW
(Table 3).  Those files are not bundled here, so each dataset is replaced by a
synthetic stand-in whose *type* (directed vs. undirected), density, and degree
skew match the original.  The generators below produce graphs with the
properties SimRank algorithms are actually sensitive to:

* heavy-tailed in-degree distributions (web / social graphs),
* a mix of directed and symmetrized graphs,
* the presence of nodes with zero in-degree (sources), which exercises the
  boundary cases of √c-walks and of the correction-factor estimator.

All generators are deterministic given a ``seed``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .digraph import DiGraph

__all__ = [
    "erdos_renyi",
    "preferential_attachment",
    "copying_model",
    "small_world",
    "two_level_community",
    "star",
    "cycle",
    "complete",
    "path",
    "random_dag",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _require_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ParameterError(f"{name} must be positive, got {value}")


# --------------------------------------------------------------------------- #
# Deterministic toy graphs (used heavily by tests)
# --------------------------------------------------------------------------- #
def star(num_leaves: int, *, inward: bool = True) -> DiGraph:
    """A star with node 0 at the centre.

    ``inward=True`` points every leaf at the centre (all leaves then share the
    same single in-neighbour-of-in-neighbour structure, giving them pairwise
    SimRank exactly ``c``), which makes the graph a convenient oracle.
    """
    _require_positive("num_leaves", num_leaves)
    if inward:
        edges = [(leaf, 0) for leaf in range(1, num_leaves + 1)]
    else:
        edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    return DiGraph(num_leaves + 1, edges)


def cycle(num_nodes: int) -> DiGraph:
    """A directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    _require_positive("num_nodes", num_nodes)
    return DiGraph(num_nodes, [(i, (i + 1) % num_nodes) for i in range(num_nodes)])


def path(num_nodes: int) -> DiGraph:
    """A directed path ``0 -> 1 -> ... -> n-1``."""
    _require_positive("num_nodes", num_nodes)
    return DiGraph(num_nodes, [(i, i + 1) for i in range(num_nodes - 1)])


def complete(num_nodes: int, *, self_loops: bool = False) -> DiGraph:
    """The complete directed graph on ``num_nodes`` nodes."""
    _require_positive("num_nodes", num_nodes)
    edges = [
        (u, v)
        for u in range(num_nodes)
        for v in range(num_nodes)
        if self_loops or u != v
    ]
    return DiGraph(num_nodes, edges)


# --------------------------------------------------------------------------- #
# Random models
# --------------------------------------------------------------------------- #
def erdos_renyi(
    num_nodes: int,
    num_edges: int,
    *,
    seed: int | np.random.Generator | None = None,
    symmetrize: bool = False,
) -> DiGraph:
    """A G(n, m)-style random directed graph with ``num_edges`` distinct edges."""
    _require_positive("num_nodes", num_nodes)
    if num_edges < 0:
        raise ParameterError(f"num_edges must be non-negative, got {num_edges}")
    max_edges = num_nodes * (num_nodes - 1)
    if num_edges > max_edges:
        raise ParameterError(
            f"num_edges={num_edges} exceeds the maximum {max_edges} for "
            f"{num_nodes} nodes"
        )
    rng = _rng(seed)
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        batch = rng.integers(0, num_nodes, size=(2 * (num_edges - len(edges)) + 8, 2))
        for u, v in batch:
            if u != v:
                edges.add((int(u), int(v)))
            if len(edges) >= num_edges:
                break
    if symmetrize:
        edges |= {(v, u) for u, v in edges}
    return DiGraph(num_nodes, edges)


def preferential_attachment(
    num_nodes: int,
    edges_per_node: int,
    *,
    seed: int | np.random.Generator | None = None,
    symmetrize: bool = False,
) -> DiGraph:
    """A Barabási–Albert-style graph with heavy-tailed in-degrees.

    Each new node attaches ``edges_per_node`` outgoing edges to existing nodes
    chosen proportionally to their current in-degree (plus one).  This mimics
    citation and web graphs where a few pages accumulate most links.
    """
    _require_positive("num_nodes", num_nodes)
    _require_positive("edges_per_node", edges_per_node)
    rng = _rng(seed)
    edges: list[tuple[int, int]] = []
    # Repeated-target list implements preferential selection in O(1) per draw.
    targets: list[int] = [0]
    for new_node in range(1, num_nodes):
        attach_count = min(edges_per_node, new_node)
        chosen: set[int] = set()
        while len(chosen) < attach_count:
            pick = targets[int(rng.integers(0, len(targets)))]
            chosen.add(pick)
        for target in chosen:
            edges.append((new_node, target))
            targets.append(target)
        targets.append(new_node)
    if symmetrize:
        edges.extend((v, u) for u, v in list(edges))
    return DiGraph(num_nodes, edges)


def copying_model(
    num_nodes: int,
    out_degree: int,
    *,
    copy_probability: float = 0.5,
    seed: int | np.random.Generator | None = None,
) -> DiGraph:
    """The Kleinberg copying model used to mimic web-crawl graphs.

    Each new node picks a random *prototype* node; every outgoing link either
    copies one of the prototype's out-links (with ``copy_probability``) or
    points to a uniformly random earlier node.  The model produces the
    power-law in-degrees and locally dense link structure characteristic of
    web graphs such as In-2004 and Indochina.
    """
    _require_positive("num_nodes", num_nodes)
    _require_positive("out_degree", out_degree)
    if not 0.0 <= copy_probability <= 1.0:
        raise ParameterError(
            f"copy_probability must be in [0, 1], got {copy_probability}"
        )
    rng = _rng(seed)
    out_lists: list[list[int]] = [[] for _ in range(num_nodes)]
    edges: list[tuple[int, int]] = []
    for new_node in range(1, num_nodes):
        prototype = int(rng.integers(0, new_node))
        prototype_links = out_lists[prototype]
        for slot in range(min(out_degree, new_node)):
            if prototype_links and rng.random() < copy_probability:
                target = prototype_links[int(rng.integers(0, len(prototype_links)))]
            else:
                target = int(rng.integers(0, new_node))
            if target != new_node and target not in out_lists[new_node]:
                out_lists[new_node].append(target)
                edges.append((new_node, target))
    return DiGraph(num_nodes, edges)


def small_world(
    num_nodes: int,
    nearest_neighbors: int,
    *,
    rewire_probability: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> DiGraph:
    """A Watts–Strogatz-style symmetric small-world graph.

    Stands in for collaboration networks (GrQc, HepTh) whose structure is a
    locally clustered, undirected graph.
    """
    _require_positive("num_nodes", num_nodes)
    _require_positive("nearest_neighbors", nearest_neighbors)
    if not 0.0 <= rewire_probability <= 1.0:
        raise ParameterError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    rng = _rng(seed)
    half = max(1, nearest_neighbors // 2)
    edges: set[tuple[int, int]] = set()
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            neighbor = (node + offset) % num_nodes
            if rng.random() < rewire_probability:
                neighbor = int(rng.integers(0, num_nodes))
                if neighbor == node:
                    neighbor = (node + offset) % num_nodes
            if neighbor != node:
                edges.add((node, neighbor))
                edges.add((neighbor, node))
    return DiGraph(num_nodes, edges)


def two_level_community(
    num_communities: int,
    community_size: int,
    *,
    intra_edges_per_node: int = 4,
    inter_edges_per_community: int = 2,
    seed: int | np.random.Generator | None = None,
) -> DiGraph:
    """A planted-community graph (dense blocks, sparse bridges).

    Useful for examples: nodes in the same community have visibly higher
    SimRank than nodes in different communities.
    """
    _require_positive("num_communities", num_communities)
    _require_positive("community_size", community_size)
    rng = _rng(seed)
    num_nodes = num_communities * community_size
    edges: set[tuple[int, int]] = set()
    for community in range(num_communities):
        base = community * community_size
        for node in range(base, base + community_size):
            for _ in range(intra_edges_per_node):
                target = base + int(rng.integers(0, community_size))
                if target != node:
                    edges.add((node, target))
                    edges.add((target, node))
        for _ in range(inter_edges_per_community):
            other = int(rng.integers(0, num_communities))
            if other == community:
                continue
            u = base + int(rng.integers(0, community_size))
            v = other * community_size + int(rng.integers(0, community_size))
            edges.add((u, v))
            edges.add((v, u))
    return DiGraph(num_nodes, edges)


def random_dag(
    num_nodes: int,
    num_edges: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> DiGraph:
    """A random DAG (every edge goes from a higher to a lower node id).

    DAGs guarantee the presence of zero-in-degree nodes, the boundary case
    where √c-walks terminate immediately and ``d_k = 1``.
    """
    _require_positive("num_nodes", num_nodes)
    if num_edges < 0:
        raise ParameterError(f"num_edges must be non-negative, got {num_edges}")
    rng = _rng(seed)
    edges: set[tuple[int, int]] = set()
    max_edges = num_nodes * (num_nodes - 1) // 2
    target_count = min(num_edges, max_edges)
    while len(edges) < target_count:
        u = int(rng.integers(1, num_nodes))
        v = int(rng.integers(0, u))
        edges.add((u, v))
    return DiGraph(num_nodes, edges)
