"""Compact directed-graph representation used throughout the library.

SimRank is defined on directed, unweighted graphs through *in*-neighbour sets
(Equation 1 of the paper).  All algorithms in this repository — √c-walk
sampling, reverse local push, the power method, the Monte Carlo and
linearization baselines — only need two primitives:

* ``in_neighbors(v)``  — who points *to* ``v`` (used by reverse random walks),
* ``out_neighbors(v)`` — who ``v`` points to (used by the local-push
  propagation of Algorithms 2 and 6).

:class:`DiGraph` stores both directions in CSR-style flat numpy arrays, which
keeps memory close to ``2m`` integers and makes neighbour lookups allocation
free.  Node identifiers are dense integers ``0 .. n-1``; an optional label
mapping supports arbitrary hashable external identifiers.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..exceptions import GraphFormatError, NodeNotFoundError

__all__ = ["DiGraph", "GraphStatistics"]


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a graph, mirroring Table 3 of the paper."""

    num_nodes: int
    num_edges: int
    is_symmetric: bool
    max_in_degree: int
    max_out_degree: int
    mean_degree: float

    def as_table_row(self, name: str = "graph") -> str:
        """Render the statistics as a row matching Table 3 of the paper."""
        kind = "undirected" if self.is_symmetric else "directed"
        return (
            f"{name:<16} {kind:<12} {self.num_nodes:>10,} {self.num_edges:>12,}"
        )


class DiGraph:
    """A directed, unweighted graph over dense integer node ids.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node ids are ``0 .. num_nodes - 1``.
    edges:
        Iterable of ``(source, target)`` pairs.  Parallel edges are collapsed,
        self-loops are kept (SimRank is well defined with self-loops).
    labels:
        Optional sequence of external labels, one per node.  Purely cosmetic;
        all algorithms operate on integer ids.

    Notes
    -----
    The adjacency structure is immutable after construction.  Mutation would
    invalidate every index built on top of the graph, so the class simply does
    not offer it; build a new graph instead.
    """

    __slots__ = (
        "_num_nodes",
        "_in_indptr",
        "_in_indices",
        "_out_indptr",
        "_out_indices",
        "_labels",
        "_label_to_id",
        "_push_weight_cache",
    )

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple[int, int]],
        labels: Sequence[Hashable] | None = None,
    ) -> None:
        if num_nodes < 0:
            raise GraphFormatError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = int(num_nodes)

        edge_array = self._validate_edges(edges)
        self._in_indptr, self._in_indices = self._group_by(
            edge_array[:, 1], edge_array[:, 0]
        )
        self._out_indptr, self._out_indices = self._group_by(
            edge_array[:, 0], edge_array[:, 1]
        )
        self._push_weight_cache: dict[float, np.ndarray] = {}

        if labels is not None:
            labels = list(labels)
            if len(labels) != self._num_nodes:
                raise GraphFormatError(
                    f"expected {self._num_nodes} labels, got {len(labels)}"
                )
            self._labels: list[Hashable] | None = labels
            self._label_to_id: dict[Hashable, int] | None = {
                label: idx for idx, label in enumerate(labels)
            }
            if len(self._label_to_id) != self._num_nodes:
                raise GraphFormatError("node labels must be unique")
        else:
            self._labels = None
            self._label_to_id = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _validate_edges(self, edges: Iterable[tuple[int, int]]) -> np.ndarray:
        """Deduplicate and validate the edge list, returning an ``(m, 2)`` array.

        Fully vectorised: the per-edge Python set/``int()`` loop is replaced
        by one array conversion plus ``np.unique(..., axis=0)``, whose
        lexicographic order matches the previous ``sorted(set(...))``
        exactly.  Large edge-list loads thus no longer pay a Python-level
        cost per edge.
        """
        if isinstance(edges, np.ndarray):
            raw = edges
        else:
            raw = np.array(list(edges))
        if raw.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        if raw.ndim != 2 or raw.shape[1] != 2:
            raise GraphFormatError(
                f"edges must be (source, target) pairs, got shape {raw.shape}"
            )
        try:
            # ``unsafe`` truncates floats toward zero, matching ``int()``.
            edge_array = raw.astype(np.int64, casting="unsafe", copy=False)
        except (TypeError, ValueError) as exc:
            raise GraphFormatError(f"edge endpoints must be integers: {exc}") from exc
        edge_array = np.unique(edge_array, axis=0)
        lo = edge_array.min()
        hi = edge_array.max()
        if lo < 0 or hi >= self._num_nodes:
            raise GraphFormatError(
                f"edge endpoints must be in [0, {self._num_nodes - 1}], "
                f"found values in [{lo}, {hi}]"
            )
        return edge_array

    def _group_by(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Group ``values`` by ``keys`` into ``(indptr, indices)`` CSR arrays."""
        if keys.shape[0] == 0:
            return (
                np.zeros(self._num_nodes + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        order = np.argsort(keys, kind="stable")
        sorted_values = values[order].astype(np.int64, copy=False)
        counts = np.bincount(keys, minlength=self._num_nodes)
        indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, sorted_values

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m`` (after duplicate removal)."""
        return int(self._out_indices.shape[0])

    def nodes(self) -> range:
        """Iterate over all node ids."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all ``(source, target)`` edges."""
        for u in range(self._num_nodes):
            start, stop = self._out_indptr[u], self._out_indptr[u + 1]
            for v in self._out_indices[start:stop]:
                yield u, int(v)

    def __len__(self) -> int:
        return self._num_nodes

    def __contains__(self, node: object) -> bool:
        return isinstance(node, (int, np.integer)) and 0 <= int(node) < self._num_nodes

    def __repr__(self) -> str:
        return f"DiGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Neighbour access
    # ------------------------------------------------------------------ #
    def _check_node(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self._num_nodes:
            raise NodeNotFoundError(node)
        return node

    def in_neighbors(self, node: int) -> np.ndarray:
        """Return the in-neighbours of ``node`` as a read-only numpy view."""
        node = self._check_node(node)
        view = self._in_indices[self._in_indptr[node] : self._in_indptr[node + 1]]
        view.flags.writeable = False
        return view

    def out_neighbors(self, node: int) -> np.ndarray:
        """Return the out-neighbours of ``node`` as a read-only numpy view."""
        node = self._check_node(node)
        view = self._out_indices[self._out_indptr[node] : self._out_indptr[node + 1]]
        view.flags.writeable = False
        return view

    def in_degree(self, node: int) -> int:
        """In-degree ``|I(v)|`` of ``node``."""
        node = self._check_node(node)
        return int(self._in_indptr[node + 1] - self._in_indptr[node])

    def out_degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        node = self._check_node(node)
        return int(self._out_indptr[node + 1] - self._out_indptr[node])

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node as an ``(n,)`` array."""
        return np.diff(self._in_indptr)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an ``(n,)`` array."""
        return np.diff(self._out_indptr)

    def in_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The in-adjacency as ``(indptr, indices)`` CSR arrays (read-only views).

        ``indices[indptr[v]:indptr[v+1]]`` are the in-neighbours of ``v``.
        Exposed so that performance-critical algorithms (reverse push, batch
        walk sampling) can operate on flat numpy arrays.
        """
        return self._in_indptr, self._in_indices

    def out_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The out-adjacency as ``(indptr, indices)`` CSR arrays (read-only views)."""
        return self._out_indptr, self._out_indices

    def push_edge_weights(self, sqrt_c: float) -> np.ndarray:
        """Per-out-edge push weights ``√c / |I(successor)|``, cached per ``√c``.

        Entry ``e`` of the result is aligned with :meth:`out_csr`'s
        ``indices`` column: it is the factor a local-push step multiplies
        into the mass flowing along edge ``e``.  Precomputing the column
        turns the cascade kernel's inner step into two gathers, one multiply
        and one ``bincount`` — no per-step division.  Every out-edge's head
        has at least one in-neighbour (the edge itself), so the division is
        always defined.

        The graph is immutable, so the column is computed once per distinct
        ``√c`` and shared (read-only) across all queries and threads.
        """
        key = float(sqrt_c)
        weights = self._push_weight_cache.get(key)
        if weights is None:
            in_degrees = np.diff(self._in_indptr)
            weights = key / in_degrees[self._out_indices]
            weights.flags.writeable = False
            self._push_weight_cache[key] = weights
        return weights

    def sample_in_neighbors(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample one uniform in-neighbour for each node in ``nodes``.

        Vectorised helper used by the Monte-Carlo style baselines: entry ``i``
        of the result is a uniformly random member of ``I(nodes[i])``, or
        ``-1`` when that node has no in-neighbours.  ``nodes`` may contain
        ``-1`` entries (already-stopped walks), which stay ``-1``.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        result = np.full(nodes.shape[0], -1, dtype=np.int64)
        valid = nodes >= 0
        if not valid.any():
            return result
        valid_nodes = nodes[valid]
        if valid_nodes.max(initial=-1) >= self._num_nodes:
            raise NodeNotFoundError(int(valid_nodes.max()))
        degrees = self._in_indptr[valid_nodes + 1] - self._in_indptr[valid_nodes]
        sampled = np.full(valid_nodes.shape[0], -1, dtype=np.int64)
        has_in = degrees > 0
        if has_in.any():
            offsets = np.floor(
                rng.random(int(has_in.sum())) * degrees[has_in]
            ).astype(np.int64)
            starts = self._in_indptr[valid_nodes[has_in]]
            sampled[has_in] = self._in_indices[starts + offsets]
        result[valid] = sampled
        return result

    def has_edge(self, source: int, target: int) -> bool:
        """Return ``True`` when the directed edge ``source -> target`` exists."""
        source = self._check_node(source)
        target = self._check_node(target)
        row = self._out_indices[
            self._out_indptr[source] : self._out_indptr[source + 1]
        ]
        idx = np.searchsorted(row, target)
        return bool(idx < row.shape[0] and row[idx] == target)

    # ------------------------------------------------------------------ #
    # Delta construction
    # ------------------------------------------------------------------ #
    def with_edges(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> "DiGraph":
        """Return the successor graph after adding/removing the given edges.

        This is the dynamic-graph entry point: instead of re-running the full
        ``_validate_edges`` + ``_group_by`` construction over all ``m`` edges,
        only the *delta* edges are validated and the existing sorted CSR
        arrays are merged with them (``searchsorted`` + ``delete``/``insert``
        per direction), so the cost is ``O(|delta| + m)`` array work with no
        per-edge Python loop — and the result is bit-identical to building a
        fresh :class:`DiGraph` from the edited edge list.

        Adding an edge that already exists, or removing one that does not, is
        a no-op (parallel edges are collapsed at construction, so "add" can
        only mean "ensure present").  An edge listed in both ``added`` and
        ``removed`` is rejected as ambiguous.  Labels are shared with the
        original graph; the per-``√c`` push-weight cache starts fresh because
        in-degrees may have changed.
        """
        added_array = self._validate_edges(added)
        removed_array = self._validate_edges(removed)
        if added_array.shape[0] == 0 and removed_array.shape[0] == 0:
            return self
        n = np.int64(max(self._num_nodes, 1))
        add_keys = added_array[:, 0] * n + added_array[:, 1]
        rem_keys = removed_array[:, 0] * n + removed_array[:, 1]
        overlap = np.intersect1d(add_keys, rem_keys)
        if overlap.size:
            u, v = divmod(int(overlap[0]), int(n))
            raise GraphFormatError(
                f"edge ({u}, {v}) appears in both added and removed"
            )
        out_keys = (
            np.repeat(
                np.arange(self._num_nodes, dtype=np.int64), self.out_degrees()
            )
            * n
            + self._out_indices
        )
        # Reduce to the *actual* delta: adds not yet present, removals present.
        add_keys = add_keys[~self._keys_present(out_keys, add_keys)]
        rem_keys = rem_keys[self._keys_present(out_keys, rem_keys)]
        if add_keys.shape[0] == 0 and rem_keys.shape[0] == 0:
            return self
        in_keys = (
            np.repeat(
                np.arange(self._num_nodes, dtype=np.int64), self.in_degrees()
            )
            * n
            + self._in_indices
        )
        # The same delta in target-major encoding for the in-direction merge.
        add_keys_in = np.sort((add_keys % n) * n + add_keys // n)
        rem_keys_in = np.sort((rem_keys % n) * n + rem_keys // n)

        clone = object.__new__(type(self))
        clone._num_nodes = self._num_nodes
        clone._out_indptr, clone._out_indices = self._csr_from_flat_keys(
            self._merge_flat_keys(out_keys, add_keys, rem_keys), n
        )
        clone._in_indptr, clone._in_indices = self._csr_from_flat_keys(
            self._merge_flat_keys(in_keys, add_keys_in, rem_keys_in), n
        )
        clone._labels = self._labels
        clone._label_to_id = self._label_to_id
        clone._push_weight_cache = {}
        return clone

    @staticmethod
    def _keys_present(sorted_keys: np.ndarray, probes: np.ndarray) -> np.ndarray:
        """Boolean membership of ``probes`` in the ascending ``sorted_keys``."""
        if probes.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        positions = np.searchsorted(sorted_keys, probes)
        in_range = positions < sorted_keys.shape[0]
        present = np.zeros(probes.shape[0], dtype=bool)
        present[in_range] = (
            sorted_keys[positions[in_range]] == probes[in_range]
        )
        return present

    @staticmethod
    def _merge_flat_keys(
        old_keys: np.ndarray, add_keys: np.ndarray, rem_keys: np.ndarray
    ) -> np.ndarray:
        """Apply a pre-filtered delta to one direction's sorted flat keys."""
        kept = old_keys
        if rem_keys.shape[0]:
            kept = np.delete(kept, np.searchsorted(kept, rem_keys))
        if add_keys.shape[0]:
            kept = np.insert(kept, np.searchsorted(kept, add_keys), add_keys)
        return kept

    def _csr_from_flat_keys(
        self, keys: np.ndarray, n: np.int64
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rebuild ``(indptr, indices)`` from sorted ``major * n + minor`` keys."""
        indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
        if keys.shape[0] == 0:
            return indptr, np.empty(0, dtype=np.int64)
        counts = np.bincount(keys // n, minlength=self._num_nodes)
        np.cumsum(counts, out=indptr[1:])
        return indptr, (keys % n).astype(np.int64, copy=False)

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #
    @property
    def has_labels(self) -> bool:
        """Whether external labels were supplied at construction time."""
        return self._labels is not None

    def label_of(self, node: int) -> Hashable:
        """Return the external label of ``node`` (or the id when unlabeled)."""
        node = self._check_node(node)
        if self._labels is None:
            return node
        return self._labels[node]

    def node_of(self, label: Hashable) -> int:
        """Return the integer id of an external ``label``."""
        if self._label_to_id is None:
            if isinstance(label, (int, np.integer)) and label in self:
                return int(label)
            raise NodeNotFoundError(label)
        try:
            return self._label_to_id[label]
        except KeyError as exc:
            raise NodeNotFoundError(label) from exc

    # ------------------------------------------------------------------ #
    # Derived structures
    # ------------------------------------------------------------------ #
    def statistics(self) -> GraphStatistics:
        """Compute summary statistics (Table 3 style)."""
        in_deg = self.in_degrees()
        out_deg = self.out_degrees()
        return GraphStatistics(
            num_nodes=self.num_nodes,
            num_edges=self.num_edges,
            is_symmetric=self.is_symmetric(),
            max_in_degree=int(in_deg.max(initial=0)),
            max_out_degree=int(out_deg.max(initial=0)),
            mean_degree=float(self.num_edges / self.num_nodes)
            if self.num_nodes
            else 0.0,
        )

    def is_symmetric(self) -> bool:
        """Return ``True`` when every edge has its reverse edge (undirected).

        Vectorised: both the edge list and its reverse are encoded as
        ``u·n + v`` keys and the reverse keys are membership-tested against
        the (already sorted) forward keys with one ``searchsorted`` — no
        per-edge ``has_edge`` round-trip.
        """
        num_edges = self.num_edges
        if num_edges == 0:
            return True
        n = np.int64(self._num_nodes)
        sources = np.repeat(
            np.arange(self._num_nodes, dtype=np.int64), self.out_degrees()
        )
        targets = self._out_indices
        # CSR order is (source asc, target asc within source), so the forward
        # keys are already sorted ascending.
        forward = sources * n + targets
        reverse = targets * n + sources
        positions = np.searchsorted(forward, reverse)
        if bool((positions == num_edges).any()):
            return False
        return bool(np.array_equal(forward[positions], reverse))

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        return DiGraph(
            self.num_nodes,
            ((v, u) for u, v in self.edges()),
            labels=self._labels,
        )

    def transition_matrix(self):
        """Return the column-stochastic matrix ``P`` of Equation (5).

        ``P[i, j] = 1 / |I(v_j)|`` when ``v_i`` is an in-neighbour of ``v_j``,
        i.e. column ``j`` spreads unit mass uniformly over ``I(v_j)``.
        Returned as a ``scipy.sparse.csr_matrix``.
        """
        from scipy import sparse

        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        data: list[np.ndarray] = []
        for j in range(self.num_nodes):
            in_nb = self.in_neighbors(j)
            if in_nb.shape[0] == 0:
                continue
            rows.append(in_nb)
            cols.append(np.full(in_nb.shape[0], j, dtype=np.int64))
            data.append(np.full(in_nb.shape[0], 1.0 / in_nb.shape[0]))
        if not rows:
            return sparse.csr_matrix((self.num_nodes, self.num_nodes))
        return sparse.csr_matrix(
            (
                np.concatenate(data),
                (np.concatenate(rows), np.concatenate(cols)),
            ),
            shape=(self.num_nodes, self.num_nodes),
        )

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the adjacency arrays."""
        return int(
            self._in_indptr.nbytes
            + self._in_indices.nbytes
            + self._out_indptr.nbytes
            + self._out_indices.nbytes
        )

    # ------------------------------------------------------------------ #
    # Alternate constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edge_list(
        cls,
        edges: Iterable[tuple[Hashable, Hashable]],
        *,
        symmetrize: bool = False,
    ) -> "DiGraph":
        """Build a graph from an edge list over arbitrary hashable labels.

        Node ids are assigned in first-seen order.  With ``symmetrize=True``
        the reverse of every edge is added as well, which is how the paper
        treats the undirected datasets of Table 3.
        """
        label_to_id: dict[Hashable, int] = {}
        int_edges: list[tuple[int, int]] = []
        for u_label, v_label in edges:
            u = label_to_id.setdefault(u_label, len(label_to_id))
            v = label_to_id.setdefault(v_label, len(label_to_id))
            int_edges.append((u, v))
            if symmetrize:
                int_edges.append((v, u))
        labels = [None] * len(label_to_id)
        for label, idx in label_to_id.items():
            labels[idx] = label
        return cls(len(label_to_id), int_edges, labels=labels)

    @classmethod
    def from_networkx(cls, nx_graph) -> "DiGraph":
        """Convert a ``networkx`` (Di)Graph; undirected graphs are symmetrized."""
        import networkx as nx

        directed = nx_graph.is_directed()
        nodes = list(nx_graph.nodes())
        label_to_id = {label: idx for idx, label in enumerate(nodes)}
        edges: list[tuple[int, int]] = []
        for u_label, v_label in nx_graph.edges():
            u, v = label_to_id[u_label], label_to_id[v_label]
            edges.append((u, v))
            if not directed:
                edges.append((v, u))
        del nx
        return cls(len(nodes), edges, labels=nodes)

    def to_networkx(self):
        """Convert to a ``networkx.DiGraph`` with original labels."""
        import networkx as nx

        nx_graph = nx.DiGraph()
        for node in self.nodes():
            nx_graph.add_node(self.label_of(node))
        for u, v in self.edges():
            nx_graph.add_edge(self.label_of(u), self.label_of(v))
        return nx_graph
