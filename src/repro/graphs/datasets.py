"""Registry of dataset stand-ins mirroring Table 3 of the paper.

The paper evaluates on twelve public graphs (SNAP / LAW).  Those files cannot
be downloaded in this offline environment, so each is replaced by a seeded
synthetic graph of the same *type* (directed vs. undirected) and a similar
density, scaled down so that the pure-Python algorithms finish in reasonable
time.  The registry keeps the original statistics alongside each stand-in so
that the generated Table-3 report shows both.

Use :func:`load_dataset` with ``scale`` to grow or shrink every stand-in
uniformly (``scale=1.0`` is the default benchmark size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..exceptions import ParameterError
from .digraph import DiGraph
from . import generators

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SMALL_DATASETS",
    "LARGE_DATASETS",
    "dataset_names",
    "load_dataset",
    "table3",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset from Table 3 and its synthetic stand-in."""

    name: str
    directed: bool
    paper_nodes: int
    paper_edges: int
    standin_nodes: int
    builder: Callable[[int, int], DiGraph]

    def build(self, *, scale: float = 1.0, seed: int = 0) -> DiGraph:
        """Instantiate the stand-in graph at the requested ``scale``."""
        if scale <= 0:
            raise ParameterError(f"scale must be positive, got {scale}")
        num_nodes = max(16, int(self.standin_nodes * scale))
        return self.builder(num_nodes, seed)


def _undirected_collab(num_nodes: int, seed: int) -> DiGraph:
    return generators.small_world(
        num_nodes, nearest_neighbors=6, rewire_probability=0.2, seed=seed
    )


def _undirected_pa(num_nodes: int, seed: int) -> DiGraph:
    return generators.preferential_attachment(
        num_nodes, edges_per_node=2, seed=seed, symmetrize=True
    )


def _directed_vote(num_nodes: int, seed: int) -> DiGraph:
    return generators.erdos_renyi(
        num_nodes, num_edges=num_nodes * 14, seed=seed
    )


def _undirected_email(num_nodes: int, seed: int) -> DiGraph:
    return generators.preferential_attachment(
        num_nodes, edges_per_node=3, seed=seed, symmetrize=True
    )


def _directed_social(num_nodes: int, seed: int) -> DiGraph:
    return generators.preferential_attachment(
        num_nodes, edges_per_node=6, seed=seed
    )


def _directed_sparse(num_nodes: int, seed: int) -> DiGraph:
    return generators.erdos_renyi(num_nodes, num_edges=int(num_nodes * 1.5), seed=seed)


def _directed_web(num_nodes: int, seed: int) -> DiGraph:
    return generators.copying_model(
        num_nodes, out_degree=5, copy_probability=0.6, seed=seed
    )


def _directed_web_dense(num_nodes: int, seed: int) -> DiGraph:
    return generators.copying_model(
        num_nodes, out_degree=8, copy_probability=0.7, seed=seed
    )


#: Table 3 of the paper, in the original order, with scaled-down stand-ins.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("GrQc", False, 5_242, 14_496, 600, _undirected_collab),
        DatasetSpec("AS", False, 6_474, 13_895, 700, _undirected_pa),
        DatasetSpec("Wiki-Vote", True, 7_155, 103_689, 700, _directed_vote),
        DatasetSpec("HepTh", False, 9_877, 25_998, 900, _undirected_collab),
        DatasetSpec("Enron", False, 36_692, 183_831, 1_600, _undirected_email),
        DatasetSpec("Slashdot", True, 77_360, 905_468, 2_400, _directed_social),
        DatasetSpec("EuAll", True, 265_214, 400_045, 4_000, _directed_sparse),
        DatasetSpec("NotreDame", True, 325_728, 1_497_134, 4_500, _directed_web),
        DatasetSpec("Google", True, 875_713, 5_105_049, 6_000, _directed_web),
        DatasetSpec("In-2004", True, 1_382_908, 17_917_053, 8_000, _directed_web_dense),
        DatasetSpec("LiveJournal", True, 4_847_571, 68_993_773, 10_000, _directed_social),
        DatasetSpec("Indochina", True, 7_414_866, 194_109_311, 12_000, _directed_web_dense),
    ]
}

#: The four smallest datasets — the ones the paper uses for ground-truth
#: accuracy experiments (Figures 5-7).
SMALL_DATASETS: tuple[str, ...] = ("GrQc", "AS", "Wiki-Vote", "HepTh")

#: The four largest datasets — used for the parallel / out-of-core experiments
#: (Figures 9-10).
LARGE_DATASETS: tuple[str, ...] = ("Google", "In-2004", "LiveJournal", "Indochina")


def dataset_names() -> list[str]:
    """All dataset names in Table-3 order."""
    return list(DATASETS)


def load_dataset(name: str, *, scale: float = 1.0, seed: int = 0) -> DiGraph:
    """Build the synthetic stand-in for dataset ``name``.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    scale:
        Multiplier applied to the stand-in node count; ``scale=1.0`` gives the
        default benchmark size, smaller values give faster test graphs.
    seed:
        Seed for the graph generator.
    """
    key = next((k for k in DATASETS if k.lower() == name.lower()), None)
    if key is None:
        raise ParameterError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    return DATASETS[key].build(scale=scale, seed=seed)


def table3(*, scale: float = 1.0, seed: int = 0, include_standins: bool = True) -> str:
    """Render Table 3: per-dataset type, paper size, and stand-in size."""
    lines = [
        f"{'Dataset':<14} {'Type':<12} {'paper n':>12} {'paper m':>14} "
        f"{'stand-in n':>12} {'stand-in m':>12}"
    ]
    for spec in DATASETS.values():
        kind = "directed" if spec.directed else "undirected"
        if include_standins:
            graph = spec.build(scale=scale, seed=seed)
            standin_n, standin_m = graph.num_nodes, graph.num_edges
        else:
            standin_n = standin_m = 0
        lines.append(
            f"{spec.name:<14} {kind:<12} {spec.paper_nodes:>12,} "
            f"{spec.paper_edges:>14,} {standin_n:>12,} {standin_m:>12,}"
        )
    return "\n".join(lines)
