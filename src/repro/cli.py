"""Command-line interface for the SLING reproduction.

The CLI wraps the experiment drivers so the paper's tables can be regenerated
without writing Python::

    repro table3
    repro figure1 --datasets GrQc AS --queries 100
    repro figure5 --datasets GrQc --runs 2
    repro query --dataset GrQc --source 3 --top 10
    repro query --dataset GrQc --source 3 --target 5 --json
    repro batch --input requests.jsonl
    printf '{"kind":"top_k","dataset":"GrQc","node":3,"k":5}\\n' | repro batch

(``python -m repro.cli`` works identically when the console script is not
installed.)  Every sub-command accepts ``--scale`` (stand-in graph size
multiplier), ``--epsilon`` and ``--seed``.

Queries go through the :class:`~repro.service.SimRankService` layer:
``query`` answers one ad-hoc request, ``batch`` streams JSONL request lines
(from stdin or ``--input``) through the service and emits one JSONL
:class:`~repro.service.QueryResult` envelope per line — malformed or
unanswerable requests become error envelopes, never tracebacks, and the exit
status is non-zero when any line failed.  ``--backend`` selects any
registered backend (or ``auto`` to let the planner route from
``--memory-budget-mb``), and ``--json`` switches ``query`` to
machine-readable output including the query plan and engine statistics.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence, TextIO

from .engine import BackendConfig, backend_names
from .evaluation import experiments, reporting
from .evaluation.experiments import MethodConfig
from .graphs import datasets
from .service import (
    ERROR_BAD_REQUEST,
    QueryResult,
    ServiceConfig,
    SimRankService,
    SinglePairQuery,
    TopKQuery,
    encode_result,
)

__all__ = ["main", "build_parser"]

_DEFAULT_METHODS = ("SLING", "Linearize", "MC")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="stand-in graph scale multiplier (default: 0.1)",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=0.05,
        help="SLING / MC accuracy target (default: 0.05)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--mc-walks",
        type=int,
        default=200,
        help="Monte-Carlo walks per node (default: 200)",
    )


def _add_dataset_option(parser: argparse.ArgumentParser, default: Sequence[str]) -> None:
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=list(default),
        choices=datasets.dataset_names(),
        metavar="NAME",
        help=f"datasets to run on (default: {' '.join(default)})",
    )


def _add_method_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--methods",
        nargs="+",
        default=list(_DEFAULT_METHODS),
        choices=["SLING", "Linearize", "MC", "MC-sqrtc"],
        help="methods to compare",
    )


def _nonnegative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _add_service_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by the service-backed sub-commands (query, batch)."""
    parser.add_argument(
        "--backend",
        default="auto",
        choices=["auto", *backend_names()],
        help="query backend; 'auto' lets the planner choose (default)",
    )
    parser.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="memory budget steering the auto planner towards the "
        "disk-backed index or a baseline",
    )
    parser.add_argument(
        "--cache-size",
        type=_nonnegative_int,
        default=128,
        help="LRU capacity for single-source score vectors (0 disables)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sling",
        description="Reproduce the SLING (SIGMOD 2016) evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table3 = subparsers.add_parser("table3", help="print Table 3 (datasets)")
    _add_common_options(table3)

    figure1 = subparsers.add_parser("figure1", help="single-pair query cost")
    _add_common_options(figure1)
    _add_dataset_option(figure1, datasets.SMALL_DATASETS)
    _add_method_option(figure1)
    figure1.add_argument("--queries", type=int, default=100)

    figure2 = subparsers.add_parser("figure2", help="single-source query cost")
    _add_common_options(figure2)
    _add_dataset_option(figure2, datasets.SMALL_DATASETS)
    _add_method_option(figure2)
    figure2.add_argument("--queries", type=int, default=10)

    figure3 = subparsers.add_parser("figure3", help="preprocessing cost")
    _add_common_options(figure3)
    _add_dataset_option(figure3, datasets.SMALL_DATASETS)
    _add_method_option(figure3)

    figure4 = subparsers.add_parser("figure4", help="space consumption")
    _add_common_options(figure4)
    _add_dataset_option(figure4, datasets.SMALL_DATASETS)
    _add_method_option(figure4)

    figure5 = subparsers.add_parser("figure5", help="maximum error vs. ground truth")
    _add_common_options(figure5)
    _add_dataset_option(figure5, datasets.SMALL_DATASETS)
    _add_method_option(figure5)
    figure5.add_argument("--runs", type=int, default=1)

    figure6 = subparsers.add_parser("figure6", help="error per SimRank group")
    _add_common_options(figure6)
    _add_dataset_option(figure6, datasets.SMALL_DATASETS)
    _add_method_option(figure6)

    figure7 = subparsers.add_parser("figure7", help="top-k precision")
    _add_common_options(figure7)
    _add_dataset_option(figure7, datasets.SMALL_DATASETS)
    _add_method_option(figure7)
    figure7.add_argument("--k", nargs="+", type=int, default=[20, 40, 60, 80, 100])

    query = subparsers.add_parser("query", help="run ad-hoc SimRank queries")
    _add_common_options(query)
    query.add_argument("--dataset", default="GrQc", choices=datasets.dataset_names())
    query.add_argument("--source", type=int, required=True, help="query node id")
    query.add_argument("--target", type=int, help="second node for a single-pair query")
    query.add_argument("--top", type=int, default=10, help="top-k size")
    _add_service_options(query)
    query.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON (results, query plan, engine statistics)",
    )

    batch = subparsers.add_parser(
        "batch",
        help="stream JSONL requests through the service, one envelope per line",
    )
    _add_common_options(batch)
    _add_service_options(batch)
    batch.add_argument(
        "--input",
        default="-",
        metavar="FILE",
        help="JSONL request file; '-' reads stdin (default)",
    )
    batch.add_argument(
        "--output",
        default="-",
        metavar="FILE",
        help="where to write JSONL result envelopes; '-' writes stdout (default)",
    )
    batch.add_argument(
        "--stats",
        action="store_true",
        help="dump aggregate service statistics as JSON on stderr afterwards",
    )

    return parser


def _config(args: argparse.Namespace) -> MethodConfig:
    return MethodConfig(
        epsilon=args.epsilon, seed=args.seed, mc_num_walks=args.mc_walks
    )


def _service(args: argparse.Namespace) -> SimRankService:
    """A service configured from the shared CLI options."""
    budget = (
        int(args.memory_budget_mb * 1024 * 1024)
        if args.memory_budget_mb is not None
        else None
    )
    return SimRankService(
        ServiceConfig(
            backend=args.backend,
            memory_budget_bytes=budget,
            cache_size=args.cache_size,
            scale=args.scale,
            seed=args.seed,
            backend_config=BackendConfig(
                epsilon=args.epsilon, seed=args.seed, mc_num_walks=args.mc_walks
            ),
        )
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    config = _config(args)

    if args.command == "table3":
        print(datasets.table3(scale=args.scale, seed=args.seed))
        return 0

    if args.command == "figure1":
        rows = experiments.single_pair_experiment(
            args.datasets,
            methods=args.methods,
            num_queries=args.queries,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_query_costs(rows, title="Figure 1: single-pair query cost"))
        return 0

    if args.command == "figure2":
        rows = experiments.single_source_experiment(
            args.datasets,
            methods=args.methods,
            num_queries=args.queries,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_query_costs(rows, title="Figure 2: single-source query cost"))
        return 0

    if args.command == "figure3":
        rows = experiments.preprocessing_experiment(
            args.datasets, methods=args.methods, scale=args.scale, config=config
        )
        print(reporting.render_preprocessing(rows))
        return 0

    if args.command == "figure4":
        rows = experiments.space_experiment(
            args.datasets, methods=args.methods, scale=args.scale, config=config
        )
        print(reporting.render_space(rows))
        return 0

    if args.command == "figure5":
        rows = experiments.accuracy_experiment(
            args.datasets,
            methods=args.methods,
            num_runs=args.runs,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_accuracy(rows))
        return 0

    if args.command == "figure6":
        rows = experiments.grouped_error_experiment(
            args.datasets, methods=args.methods, scale=args.scale, config=config
        )
        print(reporting.render_grouped_errors(rows))
        return 0

    if args.command == "figure7":
        rows = experiments.top_k_experiment(
            args.datasets,
            methods=args.methods,
            k_values=args.k,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_top_k(rows))
        return 0

    if args.command == "query":
        return _run_query(args)

    if args.command == "batch":
        return _run_batch(args)

    return 1  # pragma: no cover - unreachable with required=True


def _fail_loudly(result: QueryResult) -> int:
    """Report one error envelope on stderr (the interactive query path)."""
    assert result.error is not None
    print(f"error [{result.error.code}]: {result.error.message}", file=sys.stderr)
    return 1


def _run_query(args: argparse.Namespace) -> int:
    """The ``query`` sub-command: one ad-hoc request through the service."""
    service = _service(args)
    session = service.open_dataset(args.dataset)
    graph = session.graph
    source = args.source % graph.num_nodes
    pair_result = None
    target = None
    if args.target is not None:
        target = args.target % graph.num_nodes
        pair_result = service.execute(
            SinglePairQuery(dataset=args.dataset, node_u=source, node_v=target)
        )
        if not pair_result.ok:
            return _fail_loudly(pair_result)
    top_result = service.execute(
        TopKQuery(dataset=args.dataset, node=source, k=args.top)
    )
    if not top_result.ok:
        return _fail_loudly(top_result)
    statistics = session.engine().statistics

    if args.json:
        payload = {
            "dataset": args.dataset,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "source": source,
            "plan": top_result.plan,
            "top_k": top_result.value,
            "statistics": statistics.as_dict(),
        }
        if pair_result is not None:
            payload["single_pair"] = {
                "source": source,
                "target": target,
                "score": pair_result.value,
            }
        print(json.dumps(payload, indent=2))
        return 0

    plan = top_result.plan or {}
    reason = plan.get("reason", "hand-built backend")
    print(f"backend: {top_result.backend} ({reason})")
    if pair_result is not None:
        print(f"s({source}, {target}) = {pair_result.value:.6f}")
    print(f"top-{args.top} nodes most similar to {source}:")
    for entry in top_result.value:
        print(
            f"  #{entry['rank']:2d}  node {entry['node']:6d}  "
            f"score {entry['score']:.6f}"
        )
    print(f"engine: {statistics.summary()}")
    return 0


def _run_batch(args: argparse.Namespace) -> int:
    """The ``batch`` sub-command: JSONL requests in, JSONL envelopes out.

    Every input line yields exactly one envelope line; lines that cannot be
    parsed or answered become error envelopes.  Returns 0 when every request
    succeeded, 1 otherwise (a summary goes to stderr either way).
    """
    service = _service(args)
    ok_count = 0
    error_count = 0

    def run(input_stream: TextIO, output_stream: TextIO) -> None:
        nonlocal ok_count, error_count
        for line in input_stream:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as exc:
                result = QueryResult.failure(
                    ERROR_BAD_REQUEST, f"invalid JSON: {exc}"
                )
            else:
                result = service.execute_wire(payload)
            print(encode_result(result), file=output_stream, flush=True)
            if result.ok:
                ok_count += 1
            else:
                error_count += 1

    try:
        input_stream = (
            sys.stdin if args.input == "-" else open(args.input, encoding="utf-8")
        )
    except OSError as exc:
        print(f"error: cannot read --input {args.input!r}: {exc}", file=sys.stderr)
        return 1
    try:
        try:
            output_stream = (
                sys.stdout
                if args.output == "-"
                else open(args.output, "w", encoding="utf-8")
            )
        except OSError as exc:
            print(
                f"error: cannot write --output {args.output!r}: {exc}",
                file=sys.stderr,
            )
            return 1
        try:
            run(input_stream, output_stream)
        finally:
            if output_stream is not sys.stdout:
                output_stream.close()
    finally:
        if input_stream is not sys.stdin:
            input_stream.close()

    total = ok_count + error_count
    print(
        f"batch: {ok_count}/{total} ok, {error_count} error(s); "
        f"datasets: {', '.join(service.list_datasets()) or 'none'}",
        file=sys.stderr,
    )
    if args.stats:
        print(json.dumps(service.statistics(), indent=2), file=sys.stderr)
    return 0 if error_count == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
