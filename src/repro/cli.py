"""Command-line interface for the SLING reproduction.

The CLI wraps the experiment drivers so the paper's tables can be regenerated
without writing Python::

    repro table3
    repro figure1 --datasets GrQc AS --queries 100
    repro figure5 --datasets GrQc --runs 2
    repro query --dataset GrQc --source 3 --top 10
    repro query --dataset GrQc --source 3 --target 5 --json
    repro batch --input requests.jsonl
    repro batch --input requests.jsonl --workers 4
    printf '{"kind":"top_k","dataset":"GrQc","node":3,"k":5}\\n' | repro batch
    repro serve --workers 4 < requests.jsonl

(``python -m repro.cli`` works identically when the console script is not
installed.)  Every sub-command accepts ``--scale`` (stand-in graph size
multiplier), ``--epsilon`` and ``--seed``.

Queries go through the :class:`~repro.service.SimRankService` layer:
``query`` answers one ad-hoc request, ``batch`` streams JSONL request lines
(from stdin or ``--input``) through the service and emits one JSONL
:class:`~repro.service.QueryResult` envelope per line — malformed or
unanswerable requests become error envelopes, never tracebacks (with
``--input FILE`` the envelope carries the bad line's number in
``error.detail.line``), and the exit status is non-zero when any line
failed.  ``batch --workers N`` runs the batch over a
:class:`~repro.service.ParallelExecutor` worker pool (ordered output,
identical envelopes-per-line contract); ``serve`` is the long-lived variant
— a stdin/stdout JSONL loop that keeps every touched dataset session open,
answers requests in arrival order with up to ``--workers`` in flight, and
exits 0 on EOF.

Both JSONL commands speak **wire protocol v2** (see the README reference):
requests may wrap the v1 body with ``v``/``id``/``chunk_size`` envelope
keys, responses echo the ``id``, control-plane kinds (``ping``,
``open_dataset``, ``close_dataset``, ``list_datasets``, ``stats``,
``describe``, ``mutate``, ``shutdown``) ride alongside queries, the serve loop opens
with a ``hello`` frame, and chunked results stream as ``partial``/``done``
frames.  Bare v1 query lines keep working unchanged.  ``--backend``
selects any registered backend (or ``auto`` to let the planner route from
``--memory-budget-mb``), and ``--json`` switches ``query`` to
machine-readable output including the query plan and engine statistics.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import select
import signal
import sys
import threading
from dataclasses import replace
from typing import Sequence, TextIO

from .engine import PAIR_AMORTIZE_THRESHOLD, BackendConfig, backend_names
from .evaluation import experiments, reporting
from .evaluation.experiments import MethodConfig
from .evaluation.traffic import (
    CHAOS_TRAFFIC_PROFILES,
    TrafficPattern,
    chaos_pattern_overrides,
    generate_traffic,
    summarize_events,
)
from .exceptions import ParameterError
from .graphs import datasets
from .service import (
    MutateRequest,
    ParallelExecutor,
    QueryResult,
    RequestEnvelope,
    Router,
    ServiceConfig,
    SimRankService,
    SinglePairQuery,
    SocketServer,
    TopKQuery,
    WorkerPool,
    decode_envelope_line,
    encode_frame,
    parse_address,
    response_frames,
)
from .service.net.channel import Address

__all__ = ["main", "build_parser"]

_DEFAULT_METHODS = ("SLING", "Linearize", "MC")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="stand-in graph scale multiplier (default: 0.1)",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=0.05,
        help="SLING / MC accuracy target (default: 0.05)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--mc-walks",
        type=int,
        default=200,
        help="Monte-Carlo walks per node (default: 200)",
    )


def _add_dataset_option(parser: argparse.ArgumentParser, default: Sequence[str]) -> None:
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=list(default),
        choices=datasets.dataset_names(),
        metavar="NAME",
        help=f"datasets to run on (default: {' '.join(default)})",
    )


def _add_method_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--methods",
        nargs="+",
        default=list(_DEFAULT_METHODS),
        choices=["SLING", "Linearize", "MC", "MC-sqrtc"],
        help="methods to compare",
    )


def _nonnegative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _positive_float(value: str) -> float:
    parsed = float(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {parsed}")
    return parsed


def _add_workers_option(
    parser: argparse.ArgumentParser, *, windowed_note: bool = False
) -> None:
    note = (
        "; dedupes duplicate requests per window when reading --input FILE, "
        "and streams per line (engine cache still serving duplicates) when "
        "reading stdin"
        if windowed_note
        else ""
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help=f"worker threads executing requests concurrently (default: 1){note}",
    )


def _add_service_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by the service-backed sub-commands (query, batch)."""
    parser.add_argument(
        "--backend",
        default="auto",
        choices=["auto", *backend_names()],
        help="query backend; 'auto' lets the planner choose (default)",
    )
    parser.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="memory budget steering the auto planner towards the "
        "disk-backed index or a baseline",
    )
    parser.add_argument(
        "--cache-size",
        type=_nonnegative_int,
        default=128,
        help="LRU capacity for single-source score vectors (0 disables)",
    )
    parser.add_argument(
        "--cache-budget",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="process-wide budget of cached single-source vectors, divided "
        "evenly across open datasets (caps --cache-size per dataset; 0 "
        "disables caching entirely; this is what makes sharding datasets "
        "across router workers multiply cache capacity per box)",
    )
    parser.add_argument(
        "--cache-ttl",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="expire cached single-source vectors after this many seconds "
        "(default: never)",
    )
    parser.add_argument(
        "--pair-admit-after",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="admit a source's vector to the cache after N standalone "
        "single-pair probes on it (0 disables cross-kind admission; "
        f"default: {PAIR_AMORTIZE_THRESHOLD})",
    )
    parser.add_argument(
        "--index-dir",
        default=None,
        metavar="DIR",
        help="root of prebuilt per-dataset index directories (DIR/<dataset>); "
        "sling/sling-disk sessions mmap a saved index from there instead of "
        "rebuilding, so many worker processes share one copy read-only",
    )
    parser.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help="journal every acknowledged mutate to DIR/<dataset>.wal "
        "(fsync'd before the ack) and replay it when the dataset reopens — "
        "acked mutations survive a crash/restart; re-freezes fold the log "
        "into DIR/<dataset>.ckpt.json (default: mutations are in-memory "
        "only)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sling",
        description="Reproduce the SLING (SIGMOD 2016) evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table3 = subparsers.add_parser("table3", help="print Table 3 (datasets)")
    _add_common_options(table3)

    figure1 = subparsers.add_parser("figure1", help="single-pair query cost")
    _add_common_options(figure1)
    _add_dataset_option(figure1, datasets.SMALL_DATASETS)
    _add_method_option(figure1)
    figure1.add_argument("--queries", type=int, default=100)

    figure2 = subparsers.add_parser("figure2", help="single-source query cost")
    _add_common_options(figure2)
    _add_dataset_option(figure2, datasets.SMALL_DATASETS)
    _add_method_option(figure2)
    figure2.add_argument("--queries", type=int, default=10)

    figure3 = subparsers.add_parser("figure3", help="preprocessing cost")
    _add_common_options(figure3)
    _add_dataset_option(figure3, datasets.SMALL_DATASETS)
    _add_method_option(figure3)

    figure4 = subparsers.add_parser("figure4", help="space consumption")
    _add_common_options(figure4)
    _add_dataset_option(figure4, datasets.SMALL_DATASETS)
    _add_method_option(figure4)

    figure5 = subparsers.add_parser("figure5", help="maximum error vs. ground truth")
    _add_common_options(figure5)
    _add_dataset_option(figure5, datasets.SMALL_DATASETS)
    _add_method_option(figure5)
    figure5.add_argument("--runs", type=int, default=1)

    figure6 = subparsers.add_parser("figure6", help="error per SimRank group")
    _add_common_options(figure6)
    _add_dataset_option(figure6, datasets.SMALL_DATASETS)
    _add_method_option(figure6)

    figure7 = subparsers.add_parser("figure7", help="top-k precision")
    _add_common_options(figure7)
    _add_dataset_option(figure7, datasets.SMALL_DATASETS)
    _add_method_option(figure7)
    figure7.add_argument("--k", nargs="+", type=int, default=[20, 40, 60, 80, 100])

    query = subparsers.add_parser("query", help="run ad-hoc SimRank queries")
    _add_common_options(query)
    query.add_argument("--dataset", default="GrQc", choices=datasets.dataset_names())
    query.add_argument("--source", type=int, required=True, help="query node id")
    query.add_argument("--target", type=int, help="second node for a single-pair query")
    query.add_argument("--top", type=int, default=10, help="top-k size")
    _add_service_options(query)
    query.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON (results, query plan, engine statistics)",
    )

    batch = subparsers.add_parser(
        "batch",
        help="stream JSONL requests through the service, one envelope per line",
    )
    _add_common_options(batch)
    _add_service_options(batch)
    batch.add_argument(
        "--input",
        default="-",
        metavar="FILE",
        help="JSONL request file; '-' reads stdin (default)",
    )
    batch.add_argument(
        "--output",
        default="-",
        metavar="FILE",
        help="where to write JSONL result envelopes; '-' writes stdout (default)",
    )
    batch.add_argument(
        "--stats",
        action="store_true",
        help="dump aggregate service statistics as JSON on stderr afterwards",
    )
    _add_workers_option(batch, windowed_note=True)

    serve = subparsers.add_parser(
        "serve",
        help="long-lived JSONL loop: requests on stdin, envelopes on stdout",
    )
    _add_common_options(serve)
    _add_service_options(serve)
    _add_workers_option(serve)
    serve.add_argument(
        "--stats",
        action="store_true",
        help="dump aggregate service statistics as JSON on stderr at shutdown "
        "(the same snapshot the 'stats' control request returns on demand)",
    )
    serve.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="stream single_source/all_pairs results longer than N as "
        "bounded partial frames when the request does not pick its own "
        "chunk_size (default: unchunked)",
    )
    serve.add_argument(
        "--no-hello",
        action="store_true",
        help="suppress the opening hello frame (for strictly-v1 consumers)",
    )
    serve.add_argument(
        "--max-pending",
        type=_positive_int,
        default=None,
        metavar="N",
        help="bound on requests queued or executing at once; submissions "
        "past it are shed immediately with an 'overloaded' envelope "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--degrade-pending",
        type=_positive_int,
        default=None,
        metavar="N",
        help="when more than N requests are pending, answer exact "
        "single_source queries via the approximate cascade path instead, "
        "stamped degraded:true (default: never degrade)",
    )
    serve_where = serve.add_mutually_exclusive_group()
    serve_where.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve over TCP instead of stdin/stdout (port 0 binds an "
        "ephemeral port; the bound address is announced on stdout as a "
        '{"frame":"listening",...} line)',
    )
    serve_where.add_argument(
        "--unix",
        default=None,
        metavar="PATH",
        help="serve over a Unix-domain socket at PATH instead of stdin/stdout",
    )

    workload = subparsers.add_parser(
        "workload",
        help="emit a deterministic, realistically-shaped JSONL request "
        "stream (Zipf skew, drifting hot set, bursts) for batch/serve/router",
    )
    workload.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="stand-in graph scale multiplier (default: 0.1); only used to "
        "size the per-dataset node ranges",
    )
    workload.add_argument("--seed", type=int, default=0, help="stream seed")
    _add_dataset_option(workload, ["GrQc"])
    workload.add_argument(
        "--queries", type=_nonnegative_int, default=1000,
        help="events to generate (default: 1000)",
    )
    workload.add_argument(
        "--zipf", type=_positive_float, default=1.2, metavar="S",
        help="Zipf exponent of source popularity (default: 1.2)",
    )
    workload.add_argument(
        "--hot-size", type=_positive_int, default=32, metavar="N",
        help="size of the burst-phase hot set in ranks (default: 32)",
    )
    workload.add_argument(
        "--drift-every", type=_nonnegative_int, default=200, metavar="N",
        help="queries between hot-set drifts; 0 disables (default: 200)",
    )
    workload.add_argument(
        "--drift-step", type=_nonnegative_int, default=1, metavar="N",
        help="permutation rotation per drift (default: 1)",
    )
    workload.add_argument(
        "--burst-every", type=_nonnegative_int, default=160, metavar="N",
        help="burst cycle period in queries; 0 disables (default: 160)",
    )
    workload.add_argument(
        "--burst-length", type=_nonnegative_int, default=32, metavar="N",
        help="burst-phase length per cycle (default: 32)",
    )
    workload.add_argument(
        "--tail", type=float, default=0.10, metavar="FRACTION",
        help="uniform long-tail fraction of draws (default: 0.10)",
    )
    workload.add_argument(
        "--top-k-fraction", type=float, default=0.65, metavar="FRACTION",
        help="fraction of events that are top_k queries (default: 0.65)",
    )
    workload.add_argument(
        "--source-fraction", type=float, default=0.15, metavar="FRACTION",
        help="fraction of events that are single_source queries "
        "(default: 0.15); the remainder is single_pair traffic",
    )
    workload.add_argument(
        "--pair-mode", choices=["hot", "cold"], default="hot",
        help="'hot' pairs target popular sources (cross-kind admission "
        "pressure); 'cold' pairs stay outside the source region so their "
        "answers never depend on cache state (default: hot)",
    )
    workload.add_argument(
        "--source-span", type=_positive_int, default=None, metavar="N",
        help="cap the per-dataset source region at N nodes (default: uncapped)",
    )
    workload.add_argument(
        "--k", type=_positive_int, default=10,
        help="k for generated top_k queries (default: 10)",
    )
    workload.add_argument(
        "--mutations", type=float, default=0.0, metavar="FRACTION",
        help="fraction of events that are 'mutate' control requests "
        "(default: 0.0 — pure read stream, byte-identical to pre-mutation "
        "streams at the same seed)",
    )
    workload.add_argument(
        "--mutation-batch", type=_positive_int, default=1, metavar="N",
        help="edges per mutation event (default: 1)",
    )
    workload.add_argument(
        "--refreeze-every", type=_nonnegative_int, default=0, metavar="N",
        help="every Nth mutation event also requests a re-freeze "
        "(default: 0 — never mid-stream)",
    )
    workload.add_argument(
        "--deadline-ms", type=_positive_float, default=None, metavar="MS",
        help="stamp every generated request with this end-to-end deadline "
        "budget; servers shed requests still queued when it expires with "
        "'deadline_exceeded' envelopes (default: no deadlines)",
    )
    workload.add_argument(
        "--chaos-profile", choices=sorted(CHAOS_TRAFFIC_PROFILES),
        default=None,
        help="shape the stream for a named fault drill (mutation-heavy, "
        "deadline-heavy, or mixed); the profile overrides the corresponding "
        "shape flags, but an explicit --deadline-ms still wins",
    )
    workload.add_argument(
        "--output", default="-", metavar="FILE",
        help="where to write the JSONL stream; '-' writes stdout (default)",
    )

    mutate = subparsers.add_parser(
        "mutate",
        help="apply an edge delta to a dataset's live index (incremental "
        "repair + version-scoped cache invalidation; optional re-freeze)",
    )
    _add_common_options(mutate)
    _add_service_options(mutate)
    mutate.add_argument(
        "--dataset", default="GrQc", choices=datasets.dataset_names(),
        help="dataset session to mutate (default: GrQc)",
    )
    mutate.add_argument(
        "--add", action="append", default=[], metavar="U,V",
        help="directed edge to add, as 'u,v' (repeatable)",
    )
    mutate.add_argument(
        "--remove", action="append", default=[], metavar="U,V",
        help="directed edge to remove, as 'u,v' (repeatable)",
    )
    mutate.add_argument(
        "--refreeze", action="store_true",
        help="compact all outstanding deltas into a fresh frozen store "
        "after applying the delta (restores bitwise rebuild parity)",
    )

    router = subparsers.add_parser(
        "router",
        help="multi-process sharded serving: spawn N 'repro serve' workers "
        "and route protocol-v2 requests to them by dataset",
    )
    _add_common_options(router)
    _add_service_options(router)
    router.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        metavar="N",
        help="worker processes to spawn (default: 2); each dataset is "
        "served by exactly one worker",
    )
    router.add_argument(
        "--worker-threads",
        type=_positive_int,
        default=1,
        metavar="N",
        help="request threads inside each worker process (default: 1)",
    )
    router_where = router.add_mutually_exclusive_group()
    router_where.add_argument(
        "--listen",
        default="127.0.0.1:7077",
        metavar="HOST:PORT",
        help="front-end TCP address (default: 127.0.0.1:7077; port 0 binds "
        "an ephemeral port, announced on stdout)",
    )
    router_where.add_argument(
        "--unix",
        default=None,
        metavar="PATH",
        help="front-end Unix-domain socket instead of TCP",
    )
    router.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="workers' server-side streaming default (see 'serve')",
    )
    router.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between worker health checks (default: 2)",
    )
    router.add_argument(
        "--request-timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="per-request worker deadline before the router answers with an "
        "'unavailable' envelope (default: 120)",
    )
    router.add_argument(
        "--pin",
        action="append",
        default=[],
        metavar="DATASET=WORKER",
        help="pin a dataset to a worker index, overriding the hash ring "
        "(repeatable)",
    )
    router.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="directory for the workers' Unix sockets (default: a private "
        "temporary directory)",
    )
    router.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cap concurrently forwarded requests per worker; requests past "
        "the cap are shed at the router with an 'overloaded' envelope "
        "(default: unbounded)",
    )

    chaos = subparsers.add_parser(
        "chaos",
        help="seeded fault-injection drill against a live router/worker "
        "pool: worker SIGKILL mid-mutation, hostile frames, WAL disk-full, "
        "slow shards — asserts no lost acked mutation, no hang past "
        "deadline, typed errors only; prints a JSON report, exit 1 on any "
        "invariant breach",
    )
    chaos.add_argument("--seed", type=int, default=0, help="fault/traffic seed")
    chaos.add_argument(
        "--workers", type=_positive_int, default=2, metavar="N",
        help="worker processes behind the router (default: 2)",
    )
    chaos.add_argument(
        "--events", type=_positive_int, default=120, metavar="N",
        help="traffic events in the storm (default: 120)",
    )
    chaos.add_argument(
        "--scale", type=_positive_float, default=0.05,
        help="stand-in graph scale (default: 0.05 — chaos measures "
        "resilience, not index build time)",
    )
    chaos.add_argument(
        "--epsilon", type=_positive_float, default=0.05,
        help="SLING accuracy target for workers and the recovery reference",
    )
    chaos.add_argument(
        "--deadline-ms", type=_positive_float, default=20000.0, metavar="MS",
        help="end-to-end budget per storm request (default: 20000; must "
        "absorb a worker restart)",
    )
    chaos.add_argument(
        "--traffic-profile", choices=sorted(CHAOS_TRAFFIC_PROFILES),
        default="mixed-faults",
        help="traffic shape for the storm (default: mixed-faults)",
    )
    chaos.add_argument(
        "--no-kill", action="store_true",
        help="skip the worker SIGKILL (fault-free baseline storm)",
    )
    chaos.add_argument(
        "--no-hostile", action="store_true",
        help="skip the hostile-frames drill",
    )
    chaos.add_argument(
        "--no-disk-full", action="store_true",
        help="skip the WAL disk-full drill",
    )
    chaos.add_argument(
        "--no-slow-shard", action="store_true",
        help="skip the slow-shard / overload-shedding drill",
    )
    chaos.add_argument(
        "--no-wal", action="store_true",
        help="run workers without a WAL (lossy storm; durability "
        "invariants are skipped)",
    )

    return parser


def _config(args: argparse.Namespace) -> MethodConfig:
    return MethodConfig(
        epsilon=args.epsilon, seed=args.seed, mc_num_walks=args.mc_walks
    )


def _service(args: argparse.Namespace) -> SimRankService:
    """A service configured from the shared CLI options."""
    budget = (
        int(args.memory_budget_mb * 1024 * 1024)
        if args.memory_budget_mb is not None
        else None
    )
    # --pair-admit-after: unset keeps the engine default, 0 means "never".
    if args.pair_admit_after is None:
        admit: int | None = PAIR_AMORTIZE_THRESHOLD
    elif args.pair_admit_after == 0:
        admit = None
    else:
        admit = args.pair_admit_after
    return SimRankService(
        ServiceConfig(
            backend=args.backend,
            memory_budget_bytes=budget,
            cache_size=args.cache_size,
            cache_budget_vectors=args.cache_budget,
            cache_ttl_seconds=args.cache_ttl,
            pair_admission_threshold=admit,
            index_dir=args.index_dir,
            wal_dir=args.wal_dir,
            scale=args.scale,
            seed=args.seed,
            backend_config=BackendConfig(
                epsilon=args.epsilon, seed=args.seed, mc_num_walks=args.mc_walks
            ),
        )
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    # workload has no accuracy options — it never computes a score.
    if args.command == "workload":
        return _run_workload(args)

    # chaos assembles its own ChaosProfile (no --mc-walks etc.).
    if args.command == "chaos":
        return _run_chaos(args)

    config = _config(args)

    if args.command == "table3":
        print(datasets.table3(scale=args.scale, seed=args.seed))
        return 0

    if args.command == "figure1":
        rows = experiments.single_pair_experiment(
            args.datasets,
            methods=args.methods,
            num_queries=args.queries,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_query_costs(rows, title="Figure 1: single-pair query cost"))
        return 0

    if args.command == "figure2":
        rows = experiments.single_source_experiment(
            args.datasets,
            methods=args.methods,
            num_queries=args.queries,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_query_costs(rows, title="Figure 2: single-source query cost"))
        return 0

    if args.command == "figure3":
        rows = experiments.preprocessing_experiment(
            args.datasets, methods=args.methods, scale=args.scale, config=config
        )
        print(reporting.render_preprocessing(rows))
        return 0

    if args.command == "figure4":
        rows = experiments.space_experiment(
            args.datasets, methods=args.methods, scale=args.scale, config=config
        )
        print(reporting.render_space(rows))
        return 0

    if args.command == "figure5":
        rows = experiments.accuracy_experiment(
            args.datasets,
            methods=args.methods,
            num_runs=args.runs,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_accuracy(rows))
        return 0

    if args.command == "figure6":
        rows = experiments.grouped_error_experiment(
            args.datasets, methods=args.methods, scale=args.scale, config=config
        )
        print(reporting.render_grouped_errors(rows))
        return 0

    if args.command == "figure7":
        rows = experiments.top_k_experiment(
            args.datasets,
            methods=args.methods,
            k_values=args.k,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_top_k(rows))
        return 0

    if args.command == "query":
        return _run_query(args)

    if args.command == "mutate":
        return _run_mutate(args)

    if args.command == "batch":
        return _run_batch(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "router":
        return _run_router(args)

    return 1  # pragma: no cover - unreachable with required=True


def _pump_jsonl(
    executor: ParallelExecutor,
    input_stream: TextIO,
    output_stream: TextIO,
    *,
    chunk_size: int | None = None,
) -> tuple[int, int, list[BaseException]]:
    """Pipelined ordered request/response pump shared by ``serve`` and the
    stdin path of ``batch --workers``.

    One response per request line — a monolithic v2 envelope, or
    ``partial``/``done`` frames when the request (or the server's
    ``chunk_size`` default) asked for streaming — written **in arrival
    order** and flushed as soon as it is ready, with up to ``workers``
    requests executing behind the head of the line, so a lockstep producer
    (write one request, wait for its response) never deadlocks.  Every
    response echoes its request's ``id``.  An acknowledged ``shutdown``
    control request stops the reader: requests already in flight drain,
    later input is not read.  Returns ``(ok_count, error_count,
    writer_errors)``; a failed write (the consumer closed the output) stops
    the pump instead of killing it.  When the input has a real file
    descriptor, the reader polls it, so an output failure also unblocks a
    reader waiting on a producer that will never send another line.
    """
    ok_count = 0
    error_count = 0
    # Bounded handoff: the reader blocks once enough requests are in flight,
    # and the writer emits responses strictly in arrival order.
    pending: queue.Queue = queue.Queue(maxsize=executor.workers * 4)
    writer_errors: list[BaseException] = []
    writer_failed = threading.Event()
    stop_reading = threading.Event()

    def write_responses() -> None:
        nonlocal ok_count, error_count
        # After a write failure the writer must keep *draining* the queue
        # rather than die: a dead consumer would leave the reader blocked in
        # ``put()`` on a full queue with nothing ever taking items out.
        while True:
            item = pending.get()
            if item is None:
                return
            if writer_failed.is_set():
                continue
            envelope, future = item
            try:
                result = future.result()
                for frame in response_frames(
                    result,
                    id=envelope.id,
                    chunk_size=envelope.chunk_size or chunk_size,
                ):
                    print(frame, file=output_stream, flush=True)
            except BaseException as exc:  # noqa: BLE001 - must keep draining
                writer_errors.append(exc)
                writer_failed.set()
                continue
            if result.ok:
                ok_count += 1
            else:
                error_count += 1
            if result.ok and result.kind == "shutdown":
                stop_reading.set()

    def submit(line: str) -> None:
        if line.strip():
            envelope = decode_envelope_line(line)
            pending.put((envelope, executor.submit(envelope.request)))

    def _reader_done() -> bool:
        return writer_failed.is_set() or stop_reading.is_set()

    def read_requests() -> None:
        try:
            fd = input_stream.fileno()
        except (OSError, ValueError, AttributeError):
            fd = None  # test harness streams; plain iteration is fine there
        if fd is not None:
            # Probe the polling machinery: on Windows select() only accepts
            # sockets (and set_blocking can reject console handles), so fall
            # back to plain blocking iteration there rather than crash.
            try:
                os.set_blocking(fd, False)
                select.select([fd], [], [], 0)
            except (OSError, ValueError):
                try:
                    os.set_blocking(fd, True)
                except OSError:
                    pass
                fd = None
        if fd is None:
            # No pollable descriptor (Windows pipes, in-process test
            # streams): read on a daemon thread so an output failure still
            # unblocks shutdown — the daemon may stay parked in its blocking
            # read, but the process no longer waits on it.
            def blocking_reader() -> None:
                for line in input_stream:
                    if _reader_done():
                        return
                    try:
                        submit(line)
                    except Exception:  # noqa: BLE001 - raced executor close
                        # The pump already returned and shut the executor
                        # down; we are in teardown, and a daemon-thread
                        # traceback would break the no-traceback contract.
                        return

            reader = threading.Thread(
                target=blocking_reader, name="repro-jsonl-reader", daemon=True
            )
            reader.start()
            while reader.is_alive() and not _reader_done():
                reader.join(timeout=0.1)
            return
        # Poll the raw descriptor so a dead consumer (writer_failed) or an
        # acknowledged shutdown interrupts a reader that would otherwise
        # block forever on a producer waiting for the response we can no
        # longer deliver.  Lines are split here, at the byte level:
        # select() only reports the kernel buffer, so mixing it with a
        # buffered readline() would stall on lines already sitting in the
        # TextIO buffer.
        tail = b""
        try:
            while not _reader_done():
                ready, _, _ = select.select([fd], [], [], 0.1)
                if not ready:
                    continue
                try:
                    chunk = os.read(fd, 65536)
                except BlockingIOError:  # raced another consumer; re-poll
                    continue
                if chunk == b"":  # EOF
                    break
                tail += chunk
                *lines, tail = tail.split(b"\n")
                for raw in lines:
                    submit(raw.decode("utf-8", errors="replace"))
            if tail and not _reader_done():  # unterminated last line
                submit(tail.decode("utf-8", errors="replace"))
        finally:
            try:
                os.set_blocking(fd, True)
            except OSError:  # pragma: no cover - fd already gone
                pass

    writer = threading.Thread(target=write_responses, name="repro-jsonl-writer")
    writer.start()
    try:
        read_requests()
    finally:
        pending.put(None)
        writer.join()
    return ok_count, error_count, writer_errors


def _detach_stdout_after_broken_pipe() -> None:
    """Point the stdout file descriptor at /dev/null after a broken pipe so
    the interpreter-exit flush cannot raise a second time (best effort —
    a no-op under test harnesses whose stdout has no real descriptor)."""
    try:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    except Exception:  # noqa: BLE001 - shutdown path, nothing to do
        pass


def _report_output_failure(
    command: str, exc: BaseException, *, stdout_target: bool
) -> None:
    """One shutdown path for a pump whose output consumer went away,
    shared by ``batch`` and ``serve`` so their behavior cannot diverge."""
    if stdout_target and isinstance(exc, BrokenPipeError):
        _detach_stdout_after_broken_pipe()
    print(
        f"{command}: output stream failed ({type(exc).__name__}: {exc}); "
        "shutting down",
        file=sys.stderr,
    )


def _fail_loudly(result: QueryResult) -> int:
    """Report one error envelope on stderr (the interactive query path)."""
    assert result.error is not None
    print(f"error [{result.error.code}]: {result.error.message}", file=sys.stderr)
    return 1


def _run_query(args: argparse.Namespace) -> int:
    """The ``query`` sub-command: one ad-hoc request through the service."""
    service = _service(args)
    session = service.open_dataset(args.dataset)
    graph = session.graph
    source = args.source % graph.num_nodes
    pair_result = None
    target = None
    if args.target is not None:
        target = args.target % graph.num_nodes
        pair_result = service.execute(
            SinglePairQuery(dataset=args.dataset, node_u=source, node_v=target)
        )
        if not pair_result.ok:
            return _fail_loudly(pair_result)
    top_result = service.execute(
        TopKQuery(dataset=args.dataset, node=source, k=args.top)
    )
    if not top_result.ok:
        return _fail_loudly(top_result)
    statistics = session.engine().statistics

    if args.json:
        payload = {
            "dataset": args.dataset,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "source": source,
            "plan": top_result.plan,
            "top_k": top_result.value,
            "statistics": statistics.as_dict(),
        }
        if pair_result is not None:
            payload["single_pair"] = {
                "source": source,
                "target": target,
                "score": pair_result.value,
            }
        print(json.dumps(payload, indent=2))
        return 0

    plan = top_result.plan or {}
    reason = plan.get("reason", "hand-built backend")
    print(f"backend: {top_result.backend} ({reason})")
    if pair_result is not None:
        print(f"s({source}, {target}) = {pair_result.value:.6f}")
    print(f"top-{args.top} nodes most similar to {source}:")
    for entry in top_result.value:
        print(
            f"  #{entry['rank']:2d}  node {entry['node']:6d}  "
            f"score {entry['score']:.6f}"
        )
    print(f"engine: {statistics.summary()}")
    return 0


def _parse_edge(text: str) -> tuple[int, int]:
    parts = text.split(",")
    if len(parts) != 2:
        raise ParameterError(f"edge must be 'u,v', got {text!r}")
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        raise ParameterError(f"edge endpoints must be integers, got {text!r}")


def _run_mutate(args: argparse.Namespace) -> int:
    """The ``mutate`` sub-command: one edge delta through the control plane.

    Prints the mutation ack as JSON — the new ``index_version``, the
    certified ``epsilon_stale``, and the affected/invalidated set sizes —
    so scripts can chain ``repro mutate`` with queries and assert versions.
    """
    service = _service(args)
    try:
        add = [_parse_edge(text) for text in args.add]
        remove = [_parse_edge(text) for text in args.remove]
        request = MutateRequest(
            dataset=args.dataset,
            add=tuple(add),
            remove=tuple(remove),
            refreeze=args.refreeze,
        )
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = service.execute_control(request)
    if not result.ok:
        return _fail_loudly(result)
    print(json.dumps(result.value, indent=2))
    return 0


#: Window size for the parallel file-input path of ``repro batch``:
#: duplicates dedupe within a window and memory stays bounded.
_BATCH_WINDOW = 1024


def _batch_envelopes(input_stream: TextIO):
    """Yield one decoded :class:`RequestEnvelope` per non-blank input line.

    When the input is a real file (not stdin), decode failures are stamped
    with the 1-based input line number (``error.detail.line``) so users can
    find the bad request in large JSONL files.
    """
    number_lines = input_stream is not sys.stdin
    for lineno, line in enumerate(input_stream, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        envelope = decode_envelope_line(stripped)
        if number_lines and isinstance(envelope.request, QueryResult):
            envelope = replace(
                envelope, request=envelope.request.with_error_detail(line=lineno)
            )
        yield envelope


def _run_batch(args: argparse.Namespace) -> int:
    """The ``batch`` sub-command: JSONL requests in, JSONL responses out.

    Every input line yields exactly one response (monolithic, or
    ``partial``/``done`` frames when the request set a ``chunk_size``);
    lines that cannot be parsed or answered become error envelopes — with
    ``--input FILE``, decode failures carry the offending 1-based line
    number in ``error.detail.line``.  Control requests work exactly as in
    ``repro serve``; an acknowledged ``shutdown`` stops the batch after its
    response (in-window requests still drain under ``--workers``).  With
    ``--workers N > 1`` the batch runs over a
    :class:`~repro.service.ParallelExecutor` — the output order and the
    response-per-line contract are identical to the sequential path.
    Returns 0 when every request succeeded, 1 otherwise (a summary goes to
    stderr either way).
    """
    service = _service(args)
    ok_count = 0
    error_count = 0
    output_failed = False

    def emit(envelope: RequestEnvelope, result: QueryResult, out: TextIO) -> bool:
        """Write one response; returns True when it acknowledged a shutdown."""
        nonlocal ok_count, error_count
        for frame in response_frames(
            result, id=envelope.id, chunk_size=envelope.chunk_size
        ):
            print(frame, file=out, flush=True)
        if result.ok:
            ok_count += 1
        else:
            error_count += 1
        return result.ok and result.kind == "shutdown"

    def run(input_stream: TextIO, output_stream: TextIO) -> None:
        nonlocal ok_count, error_count, output_failed
        if args.workers > 1:
            with ParallelExecutor(service, workers=args.workers) as executor:
                if input_stream is sys.stdin:
                    # A pipe producer may be lockstep (send one request, wait
                    # for its response), so stream per line via the pump;
                    # in-flight concurrency still comes from the pool.
                    ok_count, error_count, writer_errors = _pump_jsonl(
                        executor, input_stream, output_stream
                    )
                    if writer_errors:
                        _report_output_failure(
                            "batch",
                            writer_errors[0],
                            stdout_target=output_stream is sys.stdout,
                        )
                        output_failed = True
                    return
                # File input cannot deadlock on the producer side: process
                # it in bounded windows so duplicates dedupe within each
                # window and memory stays bounded.
                window: list[RequestEnvelope] = []

                def flush_window() -> bool:
                    results = executor.run([env.request for env in window])
                    stopping = False
                    for env, result in zip(window, results):
                        stopping = emit(env, result, output_stream) or stopping
                    window.clear()
                    return stopping

                for envelope in _batch_envelopes(input_stream):
                    window.append(envelope)
                    if len(window) >= _BATCH_WINDOW and flush_window():
                        return
                if window:
                    flush_window()
            return
        for envelope in _batch_envelopes(input_stream):
            result = service.execute_request(envelope.request)
            if emit(envelope, result, output_stream):
                return

    try:
        input_stream = (
            sys.stdin if args.input == "-" else open(args.input, encoding="utf-8")
        )
    except OSError as exc:
        print(f"error: cannot read --input {args.input!r}: {exc}", file=sys.stderr)
        return 1
    try:
        try:
            output_stream = (
                sys.stdout
                if args.output == "-"
                else open(args.output, "w", encoding="utf-8")
            )
        except OSError as exc:
            print(
                f"error: cannot write --output {args.output!r}: {exc}",
                file=sys.stderr,
            )
            return 1
        try:
            try:
                run(input_stream, output_stream)
            except BrokenPipeError:
                # The consumer closed the output early (``repro batch | head``):
                # stop cleanly — the contract is envelopes or a message on
                # stderr, never a traceback.
                if output_stream is sys.stdout:
                    _detach_stdout_after_broken_pipe()
                print("batch: output stream closed early", file=sys.stderr)
                return 1
        finally:
            if output_stream is not sys.stdout:
                output_stream.close()
    finally:
        if input_stream is not sys.stdin:
            input_stream.close()

    if output_failed:
        return 1
    total = ok_count + error_count
    print(
        f"batch: {ok_count}/{total} ok, {error_count} error(s); "
        f"datasets: {', '.join(service.list_datasets()) or 'none'}",
        file=sys.stderr,
    )
    if args.stats:
        print(json.dumps(service.statistics(), indent=2), file=sys.stderr)
    return 0 if error_count == 0 else 1


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` sub-command: a long-lived stdin/stdout JSONL loop.

    The loop opens with a ``hello`` frame advertising the protocol version,
    available backends, and open datasets (suppress with ``--no-hello``).
    Requests then stream in one JSONL line at a time — bare v1 query lines
    or v2 envelopes, data plane and control plane alike; every request gets
    exactly one response, **in arrival order**, flushed as soon as it is
    ready, echoing the request's ``id``.  Large ``single_source`` /
    ``all_pairs`` answers stream as bounded ``partial``/``done`` frames
    when the request (or ``--chunk-size``) asks for it.  Up to ``--workers``
    requests execute concurrently behind the head of the line, and every
    dataset session touched stays open for the life of the process, so
    requests against different datasets interleave freely on one warm
    service.  EOF — or an acknowledged ``shutdown`` control request —
    drains the in-flight requests and exits 0 (this is a server loop —
    client errors become envelopes, not exit codes); the summary and
    optional ``--stats`` dump go to stderr.
    """
    if args.listen is not None or args.unix is not None:
        return _run_serve_socket(args)
    service = _service(args)
    if not args.no_hello:
        try:
            print(encode_frame(service.hello_payload()), flush=True)
        except BaseException as exc:  # noqa: BLE001 - consumer already gone
            _report_output_failure("serve", exc, stdout_target=True)
            return 1
    with ParallelExecutor(
        service,
        workers=args.workers,
        max_pending=args.max_pending,
        degrade_pending=args.degrade_pending,
    ) as executor:
        ok_count, error_count, writer_errors = _pump_jsonl(
            executor, sys.stdin, sys.stdout, chunk_size=args.chunk_size
        )

    if writer_errors:
        _report_output_failure("serve", writer_errors[0], stdout_target=True)
        return 1

    total = ok_count + error_count
    print(
        f"serve: {ok_count}/{total} ok, {error_count} error(s); "
        f"workers: {args.workers}; "
        f"datasets: {', '.join(service.list_datasets()) or 'none'}",
        file=sys.stderr,
    )
    if args.stats:
        print(json.dumps(service.statistics(), indent=2), file=sys.stderr)
    return 0


def _front_address(args: argparse.Namespace) -> Address:
    """The socket endpoint picked by ``--unix`` / ``--listen``."""
    if args.unix is not None:
        return Address(family="unix", path=args.unix)
    return parse_address(args.listen)


def _stop_on_signals(stop) -> None:
    """Run ``stop`` (on a fresh thread — it joins others) on SIGINT/SIGTERM,
    so a supervisor's TERM produces the same clean drain as Ctrl-C."""
    def handler(*_: object) -> None:
        threading.Thread(target=stop, name="repro-signal-stop", daemon=True).start()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass


def _announce_listening(address: Address, **extra: object) -> None:
    """The machine-readable ready line socket servers print on stdout."""
    payload = {"frame": "listening", "address": str(address), **extra}
    try:
        print(json.dumps(payload, separators=(",", ":")), flush=True)
    except OSError:  # pragma: no cover - stdout already gone; keep serving
        pass


def _run_serve_socket(args: argparse.Namespace) -> int:
    """``repro serve --listen/--unix``: the serve loop over a socket.

    Identical protocol and semantics to the stdin/stdout loop — hello frame
    per connection, ordered responses, chunked streaming, shutdown control
    request — but any number of clients share the one warm service.  Prints
    a ``{"frame":"listening","address":...}`` line on stdout once bound
    (how spawning parents learn an ephemeral port), then serves until a
    client's acknowledged ``shutdown``, SIGTERM, or SIGINT.
    """
    service = _service(args)
    address = _front_address(args)
    try:
        server = SocketServer(
            service,
            address=address,
            workers=args.workers,
            chunk_size=args.chunk_size,
            hello=not args.no_hello,
            max_pending=args.max_pending,
            degrade_pending=args.degrade_pending,
        )
    except OSError as exc:
        print(f"error: cannot listen on {address}: {exc}", file=sys.stderr)
        return 1
    _announce_listening(server.address)
    _stop_on_signals(server.stop)
    try:
        server.serve_forever()
    finally:
        server.stop()
        if address.family == "unix":
            try:
                os.unlink(address.path)
            except OSError:
                pass
    print(
        f"serve: stopped listening on {server.address}; "
        f"datasets: {', '.join(service.list_datasets()) or 'none'}",
        file=sys.stderr,
    )
    if args.stats:
        print(json.dumps(service.statistics(), indent=2), file=sys.stderr)
    return 0


def _run_workload(args: argparse.Namespace) -> int:
    """The ``workload`` sub-command: a wire-ready JSONL request stream.

    Emits one protocol-v2 envelope per line — pipe it straight into
    ``repro batch``, ``repro serve``, or a router front end.  The stream is
    fully determined by the options (one seeded RNG drives every choice),
    so two runs with the same flags produce byte-identical output; a shape
    summary goes to stderr.  Node ranges come from the dataset specs at
    ``--scale``, matching what service commands at the same scale serve.
    """
    node_counts = {
        name: max(16, int(datasets.DATASETS[name].standin_nodes * args.scale))
        for name in args.datasets
    }
    try:
        pattern_kwargs = dict(
            num_queries=args.queries,
            seed=args.seed,
            zipf_exponent=args.zipf,
            hot_set_size=args.hot_size,
            drift_every=args.drift_every,
            drift_step=args.drift_step,
            burst_every=args.burst_every,
            burst_length=args.burst_length,
            tail_fraction=args.tail,
            top_k_fraction=args.top_k_fraction,
            single_source_fraction=args.source_fraction,
            k=args.k,
            source_span=args.source_span,
            pair_mode=args.pair_mode,
            mutation_fraction=args.mutations,
            mutation_batch=args.mutation_batch,
            mutation_refreeze_every=args.refreeze_every,
            deadline_ms=args.deadline_ms,
        )
        if args.chaos_profile is not None:
            pattern_kwargs.update(chaos_pattern_overrides(args.chaos_profile))
            if args.deadline_ms is not None:  # an explicit budget wins
                pattern_kwargs["deadline_ms"] = args.deadline_ms
        pattern = TrafficPattern(**pattern_kwargs)
        events = generate_traffic(node_counts, pattern)
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        output_stream = (
            sys.stdout
            if args.output == "-"
            else open(args.output, "w", encoding="utf-8")
        )
    except OSError as exc:
        print(
            f"error: cannot write --output {args.output!r}: {exc}",
            file=sys.stderr,
        )
        return 1
    try:
        for event in events:
            print(
                json.dumps(event.to_wire(), separators=(",", ":")),
                file=output_stream,
            )
        output_stream.flush()
    except BrokenPipeError:
        _detach_stdout_after_broken_pipe()
        print("workload: output stream closed early", file=sys.stderr)
        return 1
    finally:
        if output_stream is not sys.stdout:
            output_stream.close()
    print(
        f"workload: {json.dumps(summarize_events(events))}", file=sys.stderr
    )
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    """The ``chaos`` sub-command: the seeded fault-injection drill.

    Builds a :class:`~repro.evaluation.faults.ChaosProfile` from the flags,
    runs the full suite (storm with mid-mutation worker SIGKILL, hostile
    frames, WAL disk-full, slow shard), prints the JSON report on stdout,
    and exits 1 if any invariant — no lost acked mutation, no hang past
    deadline, typed errors only — was breached.
    """
    from .evaluation.faults import ChaosProfile, run_chaos

    try:
        profile = ChaosProfile(
            seed=args.seed,
            workers=args.workers,
            events=args.events,
            scale=args.scale,
            epsilon=args.epsilon,
            deadline_ms=args.deadline_ms,
            traffic_profile=args.traffic_profile,
            kill_worker=not args.no_kill,
            hostile_frames=not args.no_hostile,
            disk_full=not args.no_disk_full,
            slow_shard=not args.no_slow_shard,
            wal=not args.no_wal,
        )
        report = run_chaos(profile)
    except ParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["ok"]:
        failed = sorted(
            name for name, held in report["invariants"].items() if not held
        )
        print(f"chaos: invariants breached: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("chaos: all invariants held", file=sys.stderr)
    return 0


def _run_router(args: argparse.Namespace) -> int:
    """The ``router`` sub-command: multi-process sharded serving.

    Spawns ``--workers`` ``repro serve --unix`` processes (each configured
    with the forwarded service options), then routes protocol-v2 requests
    to them by dataset: one worker owns each dataset (consistent hashing,
    ``--pin`` to override), ``list_datasets``/``stats`` fan out and merge,
    and dead workers are health-checked, restarted, and re-warmed — clients
    with requests in flight get ``unavailable`` error envelopes, never a
    hang.  Stops on a client's ``shutdown``, SIGTERM, or SIGINT.
    """
    serve_args = [
        "--scale", str(args.scale),
        "--epsilon", str(args.epsilon),
        "--seed", str(args.seed),
        "--mc-walks", str(args.mc_walks),
        "--backend", args.backend,
        "--cache-size", str(args.cache_size),
        "--workers", str(args.worker_threads),
    ]
    if args.memory_budget_mb is not None:
        serve_args += ["--memory-budget-mb", str(args.memory_budget_mb)]
    if args.cache_budget is not None:
        serve_args += ["--cache-budget", str(args.cache_budget)]
    if args.cache_ttl is not None:
        serve_args += ["--cache-ttl", str(args.cache_ttl)]
    if args.pair_admit_after is not None:
        serve_args += ["--pair-admit-after", str(args.pair_admit_after)]
    if args.index_dir is not None:
        serve_args += ["--index-dir", args.index_dir]
    if args.wal_dir is not None:
        serve_args += ["--wal-dir", args.wal_dir]
    if args.chunk_size is not None:
        serve_args += ["--chunk-size", str(args.chunk_size)]
    pins: dict[str, int] = {}
    for spec in args.pin:
        name, sep, index = spec.partition("=")
        if not sep or not name or not index.isdigit():
            print(
                f"error: --pin expects DATASET=WORKER, got {spec!r}",
                file=sys.stderr,
            )
            return 2
        pins[name] = int(index)
    address = _front_address(args)
    pool = WorkerPool(
        args.workers,
        serve_args=serve_args,
        run_dir=args.run_dir,
        health_interval=args.health_interval,
    )
    try:
        pool.start()
    except (RuntimeError, OSError) as exc:
        print(f"error: worker pool failed to start: {exc}", file=sys.stderr)
        pool.stop()
        return 1
    try:
        router = Router(
            pool,
            address=address,
            pins=pins,
            request_timeout=args.request_timeout,
            max_inflight=args.max_inflight,
            durable=args.wal_dir is not None,
        )
    except (OSError, ValueError) as exc:
        print(f"error: cannot listen on {address}: {exc}", file=sys.stderr)
        pool.stop()
        return 1
    _announce_listening(router.address, workers=pool.count)
    _stop_on_signals(router.stop)
    try:
        router.serve_forever()
    finally:
        router.stop()
        if address.family == "unix":
            try:
                os.unlink(address.path)
            except OSError:
                pass
    restarts = pool.restart_counts()
    print(
        f"router: stopped listening on {router.address}; "
        f"workers: {pool.count}; restarts: {sum(restarts)}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
