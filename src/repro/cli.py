"""Command-line interface for the SLING reproduction.

The CLI wraps the experiment drivers so the paper's tables can be regenerated
without writing Python::

    repro table3
    repro figure1 --datasets GrQc AS --queries 100
    repro figure5 --datasets GrQc --runs 2
    repro query --dataset GrQc --source 3 --top 10
    repro query --dataset GrQc --source 3 --target 5 --json

(``python -m repro.cli`` works identically when the console script is not
installed.)  Every sub-command accepts ``--scale`` (stand-in graph size
multiplier), ``--epsilon`` and ``--seed``.  Ad-hoc queries run through the
unified :class:`~repro.engine.QueryEngine`: ``--backend`` selects any
registered backend (or ``auto`` to let the planner route from
``--memory-budget-mb``), and ``--json`` switches to machine-readable output
including the query plan and engine statistics.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .engine import BackendConfig, backend_names, create_engine
from .evaluation import experiments, reporting
from .evaluation.experiments import MethodConfig
from .graphs import datasets

__all__ = ["main", "build_parser"]

_DEFAULT_METHODS = ("SLING", "Linearize", "MC")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="stand-in graph scale multiplier (default: 0.1)",
    )
    parser.add_argument(
        "--epsilon",
        type=float,
        default=0.05,
        help="SLING / MC accuracy target (default: 0.05)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--mc-walks",
        type=int,
        default=200,
        help="Monte-Carlo walks per node (default: 200)",
    )


def _add_dataset_option(parser: argparse.ArgumentParser, default: Sequence[str]) -> None:
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=list(default),
        choices=datasets.dataset_names(),
        metavar="NAME",
        help=f"datasets to run on (default: {' '.join(default)})",
    )


def _add_method_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--methods",
        nargs="+",
        default=list(_DEFAULT_METHODS),
        choices=["SLING", "Linearize", "MC", "MC-sqrtc"],
        help="methods to compare",
    )


def _nonnegative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sling",
        description="Reproduce the SLING (SIGMOD 2016) evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table3 = subparsers.add_parser("table3", help="print Table 3 (datasets)")
    _add_common_options(table3)

    figure1 = subparsers.add_parser("figure1", help="single-pair query cost")
    _add_common_options(figure1)
    _add_dataset_option(figure1, datasets.SMALL_DATASETS)
    _add_method_option(figure1)
    figure1.add_argument("--queries", type=int, default=100)

    figure2 = subparsers.add_parser("figure2", help="single-source query cost")
    _add_common_options(figure2)
    _add_dataset_option(figure2, datasets.SMALL_DATASETS)
    _add_method_option(figure2)
    figure2.add_argument("--queries", type=int, default=10)

    figure3 = subparsers.add_parser("figure3", help="preprocessing cost")
    _add_common_options(figure3)
    _add_dataset_option(figure3, datasets.SMALL_DATASETS)
    _add_method_option(figure3)

    figure4 = subparsers.add_parser("figure4", help="space consumption")
    _add_common_options(figure4)
    _add_dataset_option(figure4, datasets.SMALL_DATASETS)
    _add_method_option(figure4)

    figure5 = subparsers.add_parser("figure5", help="maximum error vs. ground truth")
    _add_common_options(figure5)
    _add_dataset_option(figure5, datasets.SMALL_DATASETS)
    _add_method_option(figure5)
    figure5.add_argument("--runs", type=int, default=1)

    figure6 = subparsers.add_parser("figure6", help="error per SimRank group")
    _add_common_options(figure6)
    _add_dataset_option(figure6, datasets.SMALL_DATASETS)
    _add_method_option(figure6)

    figure7 = subparsers.add_parser("figure7", help="top-k precision")
    _add_common_options(figure7)
    _add_dataset_option(figure7, datasets.SMALL_DATASETS)
    _add_method_option(figure7)
    figure7.add_argument("--k", nargs="+", type=int, default=[20, 40, 60, 80, 100])

    query = subparsers.add_parser("query", help="run ad-hoc SimRank queries")
    _add_common_options(query)
    query.add_argument("--dataset", default="GrQc", choices=datasets.dataset_names())
    query.add_argument("--source", type=int, required=True, help="query node id")
    query.add_argument("--target", type=int, help="second node for a single-pair query")
    query.add_argument("--top", type=int, default=10, help="top-k size")
    query.add_argument(
        "--backend",
        default="auto",
        choices=["auto", *backend_names()],
        help="query backend; 'auto' lets the planner choose (default)",
    )
    query.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="memory budget steering the auto planner towards the "
        "disk-backed index or a baseline",
    )
    query.add_argument(
        "--cache-size",
        type=_nonnegative_int,
        default=128,
        help="LRU capacity for single-source score vectors (0 disables)",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON (results, query plan, engine statistics)",
    )

    return parser


def _config(args: argparse.Namespace) -> MethodConfig:
    return MethodConfig(
        epsilon=args.epsilon, seed=args.seed, mc_num_walks=args.mc_walks
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    config = _config(args)

    if args.command == "table3":
        print(datasets.table3(scale=args.scale, seed=args.seed))
        return 0

    if args.command == "figure1":
        rows = experiments.single_pair_experiment(
            args.datasets,
            methods=args.methods,
            num_queries=args.queries,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_query_costs(rows, title="Figure 1: single-pair query cost"))
        return 0

    if args.command == "figure2":
        rows = experiments.single_source_experiment(
            args.datasets,
            methods=args.methods,
            num_queries=args.queries,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_query_costs(rows, title="Figure 2: single-source query cost"))
        return 0

    if args.command == "figure3":
        rows = experiments.preprocessing_experiment(
            args.datasets, methods=args.methods, scale=args.scale, config=config
        )
        print(reporting.render_preprocessing(rows))
        return 0

    if args.command == "figure4":
        rows = experiments.space_experiment(
            args.datasets, methods=args.methods, scale=args.scale, config=config
        )
        print(reporting.render_space(rows))
        return 0

    if args.command == "figure5":
        rows = experiments.accuracy_experiment(
            args.datasets,
            methods=args.methods,
            num_runs=args.runs,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_accuracy(rows))
        return 0

    if args.command == "figure6":
        rows = experiments.grouped_error_experiment(
            args.datasets, methods=args.methods, scale=args.scale, config=config
        )
        print(reporting.render_grouped_errors(rows))
        return 0

    if args.command == "figure7":
        rows = experiments.top_k_experiment(
            args.datasets,
            methods=args.methods,
            k_values=args.k,
            scale=args.scale,
            config=config,
        )
        print(reporting.render_top_k(rows))
        return 0

    if args.command == "query":
        return _run_query(args)

    return 1  # pragma: no cover - unreachable with required=True


def _run_query(args: argparse.Namespace) -> int:
    """The ``query`` sub-command: ad-hoc queries through the engine layer."""
    graph = datasets.load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    budget = (
        int(args.memory_budget_mb * 1024 * 1024)
        if args.memory_budget_mb is not None
        else None
    )
    engine = create_engine(
        graph,
        backend=args.backend,
        memory_budget_bytes=budget,
        config=BackendConfig(
            epsilon=args.epsilon, seed=args.seed, mc_num_walks=args.mc_walks
        ),
        cache_size=args.cache_size,
    )
    source = args.source % graph.num_nodes
    pair_score = None
    target = None
    if args.target is not None:
        target = args.target % graph.num_nodes
        pair_score = engine.single_pair(source, target)
    ranked = engine.top_k(source, args.top)

    if args.json:
        payload = {
            "dataset": args.dataset,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "source": source,
            "plan": engine.plan.as_dict(),
            "top_k": [
                {"rank": rank, "node": node, "score": score}
                for rank, (node, score) in enumerate(ranked, start=1)
            ],
            "statistics": engine.statistics.as_dict(),
        }
        if pair_score is not None:
            payload["single_pair"] = {
                "source": source,
                "target": target,
                "score": pair_score,
            }
        print(json.dumps(payload, indent=2))
        return 0

    print(f"backend: {engine.plan.backend} ({engine.plan.reason})")
    if pair_score is not None:
        print(f"s({source}, {target}) = {pair_score:.6f}")
    print(f"top-{args.top} nodes most similar to {source}:")
    for rank, (node, score) in enumerate(ranked, start=1):
        print(f"  #{rank:2d}  node {node:6d}  score {score:.6f}")
    print(f"engine: {engine.statistics.summary()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
