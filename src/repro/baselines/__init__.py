"""Competing SimRank methods used in the paper's evaluation."""

from .base import SimRankMethod
from .naive import iterations_for_error, naive_simrank, naive_simrank_pair
from .power import GROUND_TRUTH_ITERATIONS, PowerMethod, simrank_matrix
from .montecarlo import MonteCarloIndex, required_num_walks, required_walk_length
from .montecarlo_sqrtc import SqrtCMonteCarloIndex, required_sqrtc_walks
from .linearize import DEFAULT_L, DEFAULT_R, DEFAULT_T, LinearizeIndex

__all__ = [
    "SimRankMethod",
    "iterations_for_error",
    "naive_simrank",
    "naive_simrank_pair",
    "GROUND_TRUTH_ITERATIONS",
    "PowerMethod",
    "simrank_matrix",
    "MonteCarloIndex",
    "required_num_walks",
    "required_walk_length",
    "SqrtCMonteCarloIndex",
    "required_sqrtc_walks",
    "DEFAULT_L",
    "DEFAULT_R",
    "DEFAULT_T",
    "LinearizeIndex",
]
