"""Naive SimRank iteration on plain Python dictionaries.

This is the textbook Jeh & Widom fixed-point iteration written with no numpy
and no cleverness whatsoever.  It is far too slow for anything but toy graphs,
which is exactly the point: it serves as an independent oracle for testing the
power method, the SLING index, and the other baselines against each other.
"""

from __future__ import annotations

import math

from ..exceptions import ParameterError
from ..graphs import DiGraph

__all__ = ["naive_simrank", "naive_simrank_pair", "iterations_for_error"]


def iterations_for_error(c: float, epsilon: float) -> int:
    """Number of iterations guaranteeing ``epsilon`` worst-case error (Lemma 1).

    Lemma 1 (Lizorkin et al.): ``t ≥ log_c(ε (1 - c)) - 1`` suffices.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    if not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(1, math.ceil(math.log(epsilon * (1.0 - c)) / math.log(c) - 1.0))


def naive_simrank(
    graph: DiGraph,
    *,
    c: float = 0.6,
    num_iterations: int | None = None,
    epsilon: float | None = None,
) -> dict[tuple[int, int], float]:
    """All-pairs SimRank by direct fixed-point iteration of Equation (1).

    Either ``num_iterations`` or ``epsilon`` must be given; with ``epsilon``
    the iteration count comes from :func:`iterations_for_error`.

    Returns a dictionary mapping ``(u, v)`` to the score, for every pair.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    if num_iterations is None:
        if epsilon is None:
            raise ParameterError("either num_iterations or epsilon must be given")
        num_iterations = iterations_for_error(c, epsilon)
    if num_iterations < 0:
        raise ParameterError(f"num_iterations must be >= 0, got {num_iterations}")

    nodes = list(graph.nodes())
    scores = {(u, v): 1.0 if u == v else 0.0 for u in nodes for v in nodes}
    for _ in range(num_iterations):
        updated: dict[tuple[int, int], float] = {}
        for u in nodes:
            in_u = graph.in_neighbors(u)
            for v in nodes:
                if u == v:
                    updated[(u, v)] = 1.0
                    continue
                in_v = graph.in_neighbors(v)
                if in_u.shape[0] == 0 or in_v.shape[0] == 0:
                    updated[(u, v)] = 0.0
                    continue
                total = 0.0
                for a in in_u:
                    for b in in_v:
                        total += scores[(int(a), int(b))]
                updated[(u, v)] = c * total / (in_u.shape[0] * in_v.shape[0])
        scores = updated
    return scores


def naive_simrank_pair(
    graph: DiGraph,
    node_u: int,
    node_v: int,
    *,
    c: float = 0.6,
    epsilon: float = 0.01,
) -> float:
    """SimRank of one pair via the all-pairs naive iteration (tiny graphs only)."""
    scores = naive_simrank(graph, c=c, epsilon=epsilon)
    return scores[(int(node_u), int(node_v))]
