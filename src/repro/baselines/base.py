"""Common interface shared by every SimRank method in the repository.

The evaluation harness (Figures 1-7) runs the same workloads over SLING and
over the competing methods, so each method implements the small
:class:`SimRankMethod` protocol: a build step, a single-pair query, a
single-source query, and size accounting.  The abstract base also provides a
generic ``all_pairs`` built on top of ``single_source`` for the accuracy
experiments on small graphs.
"""

from __future__ import annotations

import abc

import numpy as np

from ..exceptions import IndexNotBuiltError
from ..graphs import DiGraph

__all__ = ["SimRankMethod"]


class SimRankMethod(abc.ABC):
    """Abstract base for SimRank computation methods.

    Subclasses set :attr:`name` to the label used in the paper's figures
    ("SLING", "Linearize", "MC", ...).
    """

    #: Label used in experiment reports.
    name: str = "method"

    def __init__(self, graph: DiGraph, *, c: float = 0.6) -> None:
        self._graph = graph
        self._c = float(c)
        self._built = False

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> DiGraph:
        """The graph the method operates on."""
        return self._graph

    @property
    def c(self) -> float:
        """SimRank decay factor."""
        return self._c

    @property
    def is_built(self) -> bool:
        """Whether preprocessing has completed."""
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError(f"{self.name} index")

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def build(self) -> "SimRankMethod":
        """Run the method's preprocessing phase; returns ``self``."""

    @abc.abstractmethod
    def single_pair(self, node_u: int, node_v: int) -> float:
        """Approximate SimRank score of one node pair."""

    @abc.abstractmethod
    def single_source(self, node: int) -> np.ndarray:
        """Approximate SimRank scores from ``node`` to every node."""

    @abc.abstractmethod
    def index_size_bytes(self) -> int:
        """Size of the preprocessed structures, in bytes."""

    # ------------------------------------------------------------------ #
    def all_pairs(self) -> np.ndarray:
        """All-pairs scores via one single-source query per node (small graphs)."""
        self._require_built()
        n = self._graph.num_nodes
        matrix = np.zeros((n, n), dtype=np.float64)
        for node in self._graph.nodes():
            matrix[node] = self.single_source(node)
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "built" if self._built else "not built"
        return f"{type(self).__name__}(n={self._graph.num_nodes}, {status})"
