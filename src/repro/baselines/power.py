"""The power method for all-pairs SimRank (Section 3.1).

The power method iterates the matrix form of SimRank,

    S ← (c · Pᵀ S P) ∨ I,

until the Lemma-1 iteration count guarantees the requested worst-case error.
It needs Θ(n²) memory and is therefore only usable on small graphs — exactly
how the paper uses it: with 50 iterations it provides the ground truth for the
accuracy experiments of Figures 5-7 (worst-case error below 1e-11).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..graphs import DiGraph
from .base import SimRankMethod
from .naive import iterations_for_error

__all__ = ["PowerMethod", "simrank_matrix", "GROUND_TRUTH_ITERATIONS"]

#: Iteration count the paper uses when computing ground truth (Section 7.2).
GROUND_TRUTH_ITERATIONS = 50


def simrank_matrix(
    graph: DiGraph,
    *,
    c: float = 0.6,
    num_iterations: int | None = None,
    epsilon: float | None = None,
) -> np.ndarray:
    """All-pairs SimRank matrix via the power method.

    Either ``num_iterations`` or ``epsilon`` must be supplied; with
    ``epsilon`` the iteration count is the Lemma-1 bound.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    if num_iterations is None:
        if epsilon is None:
            raise ParameterError("either num_iterations or epsilon must be given")
        num_iterations = iterations_for_error(c, epsilon)
    if num_iterations < 0:
        raise ParameterError(f"num_iterations must be >= 0, got {num_iterations}")

    n = graph.num_nodes
    transition = graph.transition_matrix().tocsc()
    scores = np.eye(n, dtype=np.float64)
    for _ in range(num_iterations):
        # S ← c · Pᵀ S P, then force the diagonal back to 1 (the ∨ I step:
        # off-diagonal entries of c·PᵀSP never exceed the true SimRank ≤ 1,
        # so the element-wise maximum only affects the diagonal).
        propagated = transition.T @ scores @ transition
        scores = c * np.asarray(propagated)
        np.fill_diagonal(scores, 1.0)
    return scores


class PowerMethod(SimRankMethod):
    """All-pairs SimRank via the power method, as a :class:`SimRankMethod`.

    Parameters
    ----------
    graph, c:
        Input graph and decay factor.
    epsilon:
        Target worst-case error; determines the iteration count via Lemma 1
        unless ``num_iterations`` is given explicitly.
    num_iterations:
        Explicit iteration count (the paper's ground truth uses 50).
    """

    name = "Power"

    def __init__(
        self,
        graph: DiGraph,
        *,
        c: float = 0.6,
        epsilon: float = 0.025,
        num_iterations: int | None = None,
    ) -> None:
        super().__init__(graph, c=c)
        if num_iterations is None:
            num_iterations = iterations_for_error(c, epsilon)
        self._num_iterations = int(num_iterations)
        self._epsilon = float(epsilon)
        self._matrix: np.ndarray | None = None

    @property
    def num_iterations(self) -> int:
        """Number of fixed-point iterations performed by :meth:`build`."""
        return self._num_iterations

    def build(self) -> "PowerMethod":
        """Run the fixed-point iteration and cache the full score matrix."""
        self._matrix = simrank_matrix(
            self._graph, c=self._c, num_iterations=self._num_iterations
        )
        self._built = True
        return self

    def single_pair(self, node_u: int, node_v: int) -> float:
        """Read one score out of the cached matrix."""
        self._require_built()
        assert self._matrix is not None
        self._graph.in_degree(node_u)
        self._graph.in_degree(node_v)
        return float(self._matrix[int(node_u), int(node_v)])

    def single_source(self, node: int) -> np.ndarray:
        """Read one row out of the cached matrix."""
        self._require_built()
        assert self._matrix is not None
        self._graph.in_degree(node)
        return self._matrix[int(node)].copy()

    def all_pairs(self) -> np.ndarray:
        """Return (a copy of) the cached all-pairs matrix."""
        self._require_built()
        assert self._matrix is not None
        return self._matrix.copy()

    def index_size_bytes(self) -> int:
        """The Θ(n²) score matrix dominates the footprint."""
        self._require_built()
        assert self._matrix is not None
        return int(self._matrix.nbytes)
