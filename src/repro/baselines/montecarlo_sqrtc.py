"""Monte Carlo SimRank with √c-walks (the variant sketched in Section 4.1).

The paper observes that substituting √c-walks for truncated reverse random
walks inside the Fogaras–Rácz index removes the truncation parameter entirely
(√c-walks terminate on their own after ``1/(1-√c)`` expected steps) and
improves the query time of the Monte Carlo method by a ``log(1/ε)`` factor.
SLING goes further, but this intermediate method is a useful comparison point
and an unbiased estimator in its own right: the fraction of paired √c-walks
that meet is exactly ``s(u, v)`` in expectation (Lemma 3).

The index stores, for every node, ``num_walks`` sampled √c-walks in a padded
integer matrix (``-1`` marks steps after termination).
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ParameterError
from ..graphs import DiGraph
from .base import SimRankMethod

__all__ = ["SqrtCMonteCarloIndex", "required_sqrtc_walks"]

_STOPPED = -1


def required_sqrtc_walks(num_nodes: int, epsilon: float, delta: float) -> int:
    """Walk budget ``O(log(n/δ)/ε²)`` giving ε error for all pairs (Chernoff).

    This is the bound quoted at the end of Section 4.1 for the √c-walk Monte
    Carlo method; it drops the ``log(1/ε)`` factor of the truncated variant.
    """
    if num_nodes <= 0:
        raise ParameterError(f"num_nodes must be positive, got {num_nodes}")
    if not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    return math.ceil(
        14.0
        / (3.0 * epsilon * epsilon)
        * (math.log(2.0 / delta) + 2.0 * math.log(num_nodes))
    )


class SqrtCMonteCarloIndex(SimRankMethod):
    """Fingerprint index over √c-walks (the "MC + √c-walk" variant).

    Parameters
    ----------
    graph, c:
        Input graph and decay factor.
    epsilon, delta:
        Accuracy target used to derive ``num_walks`` when it is not given.
    num_walks:
        Explicit per-node walk budget override (used by the benchmarks).
    max_length:
        Safety cap on walk length; √c-walks end on their own far earlier.
    seed:
        Seed for walk generation.
    """

    name = "MC-sqrtc"

    def __init__(
        self,
        graph: DiGraph,
        *,
        c: float = 0.6,
        epsilon: float = 0.025,
        delta: float | None = None,
        num_walks: int | None = None,
        max_length: int | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(graph, c=c)
        if not 0.0 < c < 1.0:
            raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
        if delta is None:
            delta = 1.0 / max(2, graph.num_nodes)
        if num_walks is None:
            num_walks = required_sqrtc_walks(graph.num_nodes, epsilon, delta)
        if num_walks <= 0:
            raise ParameterError(f"num_walks must be positive, got {num_walks}")
        self._sqrt_c = math.sqrt(c)
        if max_length is None:
            max_length = max(16, int(16.0 / (1.0 - self._sqrt_c)))
        if max_length < 1:
            raise ParameterError(f"max_length must be >= 1, got {max_length}")
        self._num_walks = int(num_walks)
        self._max_length = int(max_length)
        self._rng = np.random.default_rng(seed)
        self._fingerprints: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @property
    def num_walks(self) -> int:
        """Number of stored √c-walks per node."""
        return self._num_walks

    @property
    def stored_walk_length(self) -> int:
        """Number of stored steps per walk (excluding the starting node)."""
        self._require_built()
        assert self._fingerprints is not None
        return int(self._fingerprints.shape[2])

    # ------------------------------------------------------------------ #
    def build(self) -> "SqrtCMonteCarloIndex":
        """Sample ``num_walks`` √c-walks per node and store their steps.

        All walks of all nodes advance together, one step per iteration: at
        each step every still-alive walk survives with probability ``√c`` and
        then moves to a uniform in-neighbour.  Iteration stops when every walk
        has terminated, so the stored matrix is only as long as the longest
        sampled walk.
        """
        graph = self._graph
        n = graph.num_nodes
        rng = self._rng
        positions = np.repeat(np.arange(n, dtype=np.int64), self._num_walks)
        columns: list[np.ndarray] = []
        for _ in range(self._max_length):
            alive = positions >= 0
            if not alive.any():
                break
            # Continuation coin flip, applied only to alive walks.
            survive = rng.random(positions.shape[0]) < self._sqrt_c
            positions = np.where(alive & survive, positions, -1)
            positions = graph.sample_in_neighbors(positions, rng)
            if not (positions >= 0).any():
                break
            columns.append(positions.copy())
        if columns:
            stacked = np.stack(columns, axis=1).astype(np.int32)
            self._fingerprints = stacked.reshape(n, self._num_walks, len(columns))
        else:
            self._fingerprints = np.full((n, self._num_walks, 1), _STOPPED, np.int32)
        self._built = True
        return self

    # ------------------------------------------------------------------ #
    def single_pair(self, node_u: int, node_v: int) -> float:
        """Fraction of paired √c-walks that meet (unbiased by Lemma 3)."""
        self._require_built()
        assert self._fingerprints is not None
        node_u, node_v = int(node_u), int(node_v)
        self._graph.in_degree(node_u)
        self._graph.in_degree(node_v)
        if node_u == node_v:
            return 1.0
        walks_u = self._fingerprints[node_u]
        walks_v = self._fingerprints[node_v]
        meets = ((walks_u == walks_v) & (walks_u != _STOPPED)).any(axis=1)
        return float(meets.mean())

    def single_source(self, node: int) -> np.ndarray:
        """Pair the query node's walks against every other node's walks."""
        self._require_built()
        assert self._fingerprints is not None
        node = int(node)
        self._graph.in_degree(node)
        walks_u = self._fingerprints[node]
        scores = np.empty(self._graph.num_nodes, dtype=np.float64)
        for other in range(self._graph.num_nodes):
            if other == node:
                scores[other] = 1.0
                continue
            meets = (
                (walks_u == self._fingerprints[other]) & (walks_u != _STOPPED)
            ).any(axis=1)
            scores[other] = float(meets.mean())
        return scores

    def index_size_bytes(self) -> int:
        """Size of the stored walk matrix (4 bytes per stored step)."""
        self._require_built()
        assert self._fingerprints is not None
        return int(self._fingerprints.nbytes)
