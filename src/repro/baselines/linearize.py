"""The linearization method of Maehara et al. (Section 3.3 and Appendix A).

The method is built on Lemma 2: with the diagonal correction matrix ``D``,

    S = Σ_ℓ  c^ℓ (P^ℓ)ᵀ D P^ℓ,

so a single-pair query reduces to ``T+1`` sparse matrix-vector products and a
diagonal-weighted inner product, and a single-source query to ``O(T)`` more of
the same (Equations 9-10).

Preprocessing estimates ``D``:

1. sample ``R`` reverse random walks of length ``T`` from every node and use
   their empirical step distributions ``p̃^(ℓ)_{k,i}`` to assemble the
   truncated linear system  Σ_ℓ Σ_i c^ℓ (p̃^(ℓ)_{k,i})² D(i,i) = 1  (Eq. 19),
2. run ``L`` Gauss–Seidel sweeps on that system.

As the paper stresses (Appendix A), this yields *no* worst-case accuracy
guarantee — the sampling error, the truncation, and the possible
non-convergence of Gauss–Seidel are all unquantified — which is precisely the
behaviour Figures 5-6 exhibit (error above the nominal bound on several
datasets).  The implementation keeps those characteristics faithfully; an
``exact_diagonal`` switch lets tests substitute the true ``D`` and verify
Equation (11).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..exceptions import ParameterError
from ..graphs import DiGraph
from .base import SimRankMethod

__all__ = ["LinearizeIndex", "DEFAULT_T", "DEFAULT_R", "DEFAULT_L"]

#: Parameter defaults recommended by Maehara et al. and used in Section 7.1.
DEFAULT_T = 11
DEFAULT_R = 100
DEFAULT_L = 3


class LinearizeIndex(SimRankMethod):
    """SimRank via linearization (Maehara et al. [24]).

    Parameters
    ----------
    graph, c:
        Input graph and decay factor.
    num_steps:
        Truncation length ``T`` of the series (paper default 11).
    num_walks:
        Reverse walks per node ``R`` used to estimate the diagonal system
        (paper default 100).
    num_sweeps:
        Gauss–Seidel sweeps ``L`` (paper default 3).
    seed:
        Seed for the walk sampling.
    diagonal:
        Optional pre-computed diagonal of ``D``.  Supplying the exact values
        (e.g. from :func:`repro.sling.exact_correction_factors`) turns the
        method into the idealised variant for which Equation (11) holds.
    """

    name = "Linearize"

    def __init__(
        self,
        graph: DiGraph,
        *,
        c: float = 0.6,
        num_steps: int = DEFAULT_T,
        num_walks: int = DEFAULT_R,
        num_sweeps: int = DEFAULT_L,
        seed: int | None = None,
        diagonal: np.ndarray | None = None,
    ) -> None:
        super().__init__(graph, c=c)
        if num_steps < 1:
            raise ParameterError(f"num_steps must be >= 1, got {num_steps}")
        if num_walks < 1:
            raise ParameterError(f"num_walks must be >= 1, got {num_walks}")
        if num_sweeps < 1:
            raise ParameterError(f"num_sweeps must be >= 1, got {num_sweeps}")
        self._num_steps = int(num_steps)
        self._num_walks = int(num_walks)
        self._num_sweeps = int(num_sweeps)
        self._rng = np.random.default_rng(seed)
        if diagonal is not None:
            diagonal = np.asarray(diagonal, dtype=np.float64)
            if diagonal.shape != (graph.num_nodes,):
                raise ParameterError(
                    f"diagonal must have shape ({graph.num_nodes},), "
                    f"got {diagonal.shape}"
                )
        self._provided_diagonal = diagonal
        self._diagonal: np.ndarray | None = None
        self._transition: sparse.csr_matrix | None = None
        self._transition_t: sparse.csr_matrix | None = None

    # ------------------------------------------------------------------ #
    @property
    def num_steps(self) -> int:
        """Series truncation length ``T``."""
        return self._num_steps

    @property
    def diagonal(self) -> np.ndarray:
        """The (estimated or supplied) diagonal of the correction matrix."""
        self._require_built()
        assert self._diagonal is not None
        return self._diagonal

    # ------------------------------------------------------------------ #
    # Preprocessing
    # ------------------------------------------------------------------ #
    def build(self) -> "LinearizeIndex":
        """Assemble ``P`` and estimate the diagonal correction matrix ``D``."""
        self._transition = self._graph.transition_matrix().tocsr()
        self._transition_t = self._transition.T.tocsr()
        if self._provided_diagonal is not None:
            self._diagonal = self._provided_diagonal.copy()
        else:
            coefficients = self._estimate_coefficients()
            self._diagonal = self._gauss_seidel(coefficients)
        self._built = True
        return self

    def _estimate_coefficients(self) -> sparse.csr_matrix:
        """Monte-Carlo estimate of ``M(k, i) = Σ_ℓ c^ℓ (p^(ℓ)_{k,i})²``."""
        graph = self._graph
        n = graph.num_nodes
        rng = self._rng
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for source in graph.nodes():
            # walk_positions holds the current node of every walk from `source`
            # (-1 once a walk has stopped at a node without in-neighbours).
            walk_positions = np.full(self._num_walks, source, dtype=np.int64)
            accumulator: dict[int, float] = {source: 1.0}  # ℓ = 0 term: p = 1
            decay = 1.0
            for _ in range(1, self._num_steps + 1):
                decay *= self._c
                walk_positions = graph.sample_in_neighbors(walk_positions, rng)
                alive = walk_positions >= 0
                if not alive.any():
                    break
                occupied, counts = np.unique(
                    walk_positions[alive], return_counts=True
                )
                frequencies = counts / self._num_walks
                for node, frequency in zip(occupied, frequencies):
                    accumulator[int(node)] = (
                        accumulator.get(int(node), 0.0) + decay * frequency * frequency
                    )
            for node, value in accumulator.items():
                rows.append(source)
                cols.append(node)
                data.append(value)
        return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))

    def _gauss_seidel(self, coefficients: sparse.csr_matrix) -> np.ndarray:
        """``L`` Gauss–Seidel sweeps on ``M · diag = 1`` (Equation 19)."""
        n = self._graph.num_nodes
        diagonal = np.full(n, 1.0 - self._c, dtype=np.float64)
        indptr = coefficients.indptr
        indices = coefficients.indices
        values = coefficients.data
        for _ in range(self._num_sweeps):
            for k in range(n):
                row_slice = slice(indptr[k], indptr[k + 1])
                row_cols = indices[row_slice]
                row_vals = values[row_slice]
                self_mask = row_cols == k
                self_coefficient = float(row_vals[self_mask].sum()) or 1.0
                off_diagonal = float(
                    (row_vals[~self_mask] * diagonal[row_cols[~self_mask]]).sum()
                )
                diagonal[k] = (1.0 - off_diagonal) / self_coefficient
        return diagonal

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def single_pair(self, node_u: int, node_v: int) -> float:
        """Equation (10): ``Σ_ℓ c^ℓ (P^ℓ e_u)ᵀ D (P^ℓ e_v)``."""
        self._require_built()
        assert self._transition is not None and self._diagonal is not None
        node_u, node_v = int(node_u), int(node_v)
        self._graph.in_degree(node_u)
        self._graph.in_degree(node_v)
        n = self._graph.num_nodes
        vector_u = np.zeros(n, dtype=np.float64)
        vector_v = np.zeros(n, dtype=np.float64)
        vector_u[node_u] = 1.0
        vector_v[node_v] = 1.0
        score = 0.0
        decay = 1.0
        for step in range(self._num_steps + 1):
            score += decay * float(np.dot(vector_u * self._diagonal, vector_v))
            if step == self._num_steps:
                break
            vector_u = self._transition @ vector_u
            vector_v = self._transition @ vector_v
            decay *= self._c
        return float(score)

    def single_source(self, node: int) -> np.ndarray:
        """Row of ``S`` via forward propagation and backward accumulation.

        Computes ``Σ_ℓ c^ℓ (Pᵀ)^ℓ D (P^ℓ e_u)`` with the Horner-style
        recursion ``r_ℓ = D u_ℓ + c Pᵀ r_{ℓ+1}``, which costs ``O(m T)`` time
        and ``O(n T)`` transient memory.
        """
        self._require_built()
        assert self._transition is not None and self._transition_t is not None
        assert self._diagonal is not None
        node = int(node)
        self._graph.in_degree(node)
        n = self._graph.num_nodes
        forward = np.zeros(n, dtype=np.float64)
        forward[node] = 1.0
        forward_vectors = [forward]
        for _ in range(self._num_steps):
            forward = self._transition @ forward
            forward_vectors.append(forward)
        result = self._diagonal * forward_vectors[-1]
        for step in range(self._num_steps - 1, -1, -1):
            result = self._diagonal * forward_vectors[step] + self._c * (
                self._transition_t @ result
            )
        return result

    def index_size_bytes(self) -> int:
        """``P`` (CSR arrays) plus the ``n`` diagonal entries — ``O(n + m)``."""
        self._require_built()
        assert self._transition is not None and self._diagonal is not None
        transition_bytes = (
            self._transition.data.nbytes
            + self._transition.indices.nbytes
            + self._transition.indptr.nbytes
        )
        return int(transition_bytes + self._diagonal.nbytes)
