"""The Monte Carlo method of Fogaras & Rácz (Section 3.2).

The method pre-computes, for every node, ``n_w`` reverse random walks
truncated at ``t`` steps (the *fingerprints*).  A single-pair query pairs the
``ℓ``-th walk of ``u`` with the ``ℓ``-th walk of ``v``, finds the first step
``τ`` at which they occupy the same node, and averages ``c^τ``.

With the paper's bound ``n_w ≥ 14/(3ε²) (log(2/δ) + 2 log n)`` and
``t > log_c(ε/2)`` the estimate is within ``ε`` of the true SimRank for all
pairs simultaneously with probability ``1 - δ`` — but that many walks are
enormous in practice (the paper could not fit the MC index of graphs beyond
~40k nodes in 64 GB of memory), so the constructor also accepts explicit
``num_walks`` / ``walk_length`` overrides for scaled-down benchmark runs.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ParameterError
from ..graphs import DiGraph
from .base import SimRankMethod

__all__ = ["MonteCarloIndex", "required_num_walks", "required_walk_length"]

#: Sentinel stored in fingerprints when a walk has already terminated (a node
#: with no in-neighbours was reached).  Never equal to a real node id.
_STOPPED = -1


def required_num_walks(num_nodes: int, epsilon: float, delta: float) -> int:
    """Walk count ``n_w ≥ 14/(3ε²)(log(2/δ) + 2 log n)`` from Section 3.2."""
    if num_nodes <= 0:
        raise ParameterError(f"num_nodes must be positive, got {num_nodes}")
    if not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    return math.ceil(
        14.0 / (3.0 * epsilon * epsilon) * (math.log(2.0 / delta) + 2.0 * math.log(num_nodes))
    )


def required_walk_length(c: float, epsilon: float) -> int:
    """Truncation length ``t > log_c(ε/2)`` ensuring ``c^(t+1) ≤ ε/2``."""
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    if not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(1, math.ceil(math.log(epsilon / 2.0) / math.log(c)))


class MonteCarloIndex(SimRankMethod):
    """Fingerprint-based Monte Carlo SimRank index (Fogaras & Rácz).

    Parameters
    ----------
    graph, c:
        Input graph and decay factor.
    epsilon, delta:
        Accuracy target; used to derive ``num_walks`` and ``walk_length``
        when those are not given explicitly.
    num_walks, walk_length:
        Explicit overrides of the per-node walk count and the truncation
        length.  The paper-exact values make the index enormous, so the
        benchmark harness passes scaled-down overrides and documents the
        substitution in EXPERIMENTS.md.
    seed:
        Seed for walk generation.
    """

    name = "MC"

    def __init__(
        self,
        graph: DiGraph,
        *,
        c: float = 0.6,
        epsilon: float = 0.025,
        delta: float | None = None,
        num_walks: int | None = None,
        walk_length: int | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(graph, c=c)
        if delta is None:
            delta = 1.0 / max(2, graph.num_nodes)
        if num_walks is None:
            num_walks = required_num_walks(graph.num_nodes, epsilon, delta)
        if walk_length is None:
            walk_length = required_walk_length(c, epsilon)
        if num_walks <= 0:
            raise ParameterError(f"num_walks must be positive, got {num_walks}")
        if walk_length <= 0:
            raise ParameterError(f"walk_length must be positive, got {walk_length}")
        self._epsilon = float(epsilon)
        self._delta = float(delta)
        self._num_walks = int(num_walks)
        self._walk_length = int(walk_length)
        self._rng = np.random.default_rng(seed)
        self._fingerprints: np.ndarray | None = None
        # Powers of c used when converting meeting steps to scores.
        self._decay_powers = c ** np.arange(1, self._walk_length + 1)

    # ------------------------------------------------------------------ #
    @property
    def num_walks(self) -> int:
        """Number of stored reverse walks per node."""
        return self._num_walks

    @property
    def walk_length(self) -> int:
        """Truncation length ``t`` of each stored walk."""
        return self._walk_length

    # ------------------------------------------------------------------ #
    def build(self) -> "MonteCarloIndex":
        """Sample and store the truncated reverse random walks.

        The fingerprint tensor has shape ``(n, num_walks, walk_length)``;
        entry ``[v, w, ℓ]`` is the node occupied at step ``ℓ+1`` of the
        ``w``-th walk from ``v`` (step 0 is always ``v`` itself and is not
        stored), or ``-1`` once the walk has hit a node without in-neighbours.
        """
        graph = self._graph
        n = graph.num_nodes
        fingerprints = np.full(
            (n, self._num_walks, self._walk_length), _STOPPED, dtype=np.int32
        )
        rng = self._rng
        for node in graph.nodes():
            # Advance all walks of this node one step at a time (vectorised);
            # stopped walks carry the -1 sentinel forward.
            positions = np.full(self._num_walks, node, dtype=np.int64)
            for step in range(self._walk_length):
                positions = graph.sample_in_neighbors(positions, rng)
                if (positions < 0).all():
                    break
                fingerprints[node, :, step] = positions
        self._fingerprints = fingerprints
        self._built = True
        return self

    # ------------------------------------------------------------------ #
    def single_pair(self, node_u: int, node_v: int) -> float:
        """Average ``c^τ`` over paired walks (``τ`` = first meeting step)."""
        self._require_built()
        assert self._fingerprints is not None
        node_u, node_v = int(node_u), int(node_v)
        self._graph.in_degree(node_u)
        self._graph.in_degree(node_v)
        if node_u == node_v:
            return 1.0
        walks_u = self._fingerprints[node_u]
        walks_v = self._fingerprints[node_v]
        # meets[w, ℓ] is True when the ℓ-th stored step of walk pair w matches.
        meets = (walks_u == walks_v) & (walks_u != _STOPPED)
        return float(self._score_from_meets(meets))

    def _score_from_meets(self, meets: np.ndarray) -> float:
        """Convert a (num_walks, walk_length) meeting mask into a score."""
        any_meet = meets.any(axis=1)
        if not any_meet.any():
            return 0.0
        first_step = np.argmax(meets, axis=1)
        contributions = np.where(any_meet, self._decay_powers[first_step], 0.0)
        return float(contributions.mean())

    def single_source(self, node: int) -> np.ndarray:
        """Pair the walks of ``node`` against every other node's walks."""
        self._require_built()
        assert self._fingerprints is not None
        node = int(node)
        self._graph.in_degree(node)
        n = self._graph.num_nodes
        walks_u = self._fingerprints[node]
        scores = np.zeros(n, dtype=np.float64)
        for other in range(n):
            if other == node:
                scores[other] = 1.0
                continue
            meets = (walks_u == self._fingerprints[other]) & (walks_u != _STOPPED)
            scores[other] = self._score_from_meets(meets)
        return scores

    def index_size_bytes(self) -> int:
        """Size of the fingerprint tensor (4 bytes per stored step)."""
        self._require_built()
        assert self._fingerprints is not None
        return int(self._fingerprints.nbytes)
