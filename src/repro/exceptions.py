"""Exception hierarchy for the ``repro`` package.

Every error deliberately raised by the library derives from :class:`ReproError`
so that callers can catch library failures without accidentally swallowing
programming errors (``TypeError``, ``KeyError`` from unrelated code, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphFormatError(ReproError):
    """Raised when a graph file or edge list cannot be parsed or is invalid."""


class NodeNotFoundError(ReproError, KeyError):
    """Raised when a query references a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class ParameterError(ReproError, ValueError):
    """Raised when an algorithm parameter is outside its valid range."""


class IndexNotBuiltError(ReproError, RuntimeError):
    """Raised when a query is issued against an index that was never built."""

    def __init__(self, what: str = "index") -> None:
        super().__init__(
            f"the {what} has not been built yet; call build() before querying"
        )


class StorageError(ReproError, IOError):
    """Raised when the on-disk index store cannot be read or written."""


class WireFormatError(ReproError, ValueError):
    """Raised when a wire-protocol payload cannot be decoded into a request
    or result (unknown kind, missing or mistyped fields, unexpected keys)."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative solver fails to converge within its budget."""
