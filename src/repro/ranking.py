"""Shared top-k ranking over single-source SimRank score vectors.

One implementation of the ranking contract — highest score first, ties broken
on the smaller node id, the source itself excluded — used by both
:meth:`repro.sling.SlingIndex.top_k` and the engine backends, so the two can
never diverge.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rank_top_k"]


def rank_top_k(scores: np.ndarray, source: int, k: int) -> list[tuple[int, float]]:
    """Rank a single-source score vector into a top-k list, excluding ``source``.

    The caller must pass a vector it is willing to have mutated (the source
    entry is masked in place).  ``k`` is clamped to ``n - 1``.
    """
    scores[source] = -np.inf
    k = min(k, scores.shape[0] - 1)
    if k <= 0:
        return []
    top_indices = np.argpartition(-scores, k - 1)[:k]
    return sorted(
        ((int(i), float(scores[i])) for i in top_indices),
        key=lambda item: (-item[1], item[0]),
    )
