"""Shared top-k ranking over single-source SimRank score vectors.

One implementation of the ranking contract — highest score first, ties broken
on the smaller node id, the source itself excluded — used by both
:meth:`repro.sling.SlingIndex.top_k` and the engine backends, so the two can
never diverge.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rank_top_k"]


def rank_top_k(scores: np.ndarray, source: int, k: int) -> list[tuple[int, float]]:
    """Rank a single-source score vector into a top-k list, excluding ``source``.

    The caller must pass a vector it is willing to have mutated (the source
    entry is masked in place).  ``k`` is clamped to ``n - 1``.

    Caller audit (kept current when adding call sites): the SLING query
    paths (``SlingIndex.top_k``, ``DiskBackedIndex.top_k``, the bounded
    cascade) all rank vectors their ``single_source`` kernels freshly
    allocated, so they pass them straight in with no copy; only the generic
    ``SimilarityBackend.top_k`` copies first, because its ``single_source``
    protocol allows subclasses to return views into index storage.
    """
    scores[source] = -np.inf
    k = min(k, scores.shape[0] - 1)
    if k <= 0:
        return []
    top_indices = np.argpartition(-scores, k - 1)[:k]
    # argpartition selects an arbitrary subset of the entries tied at the
    # k-th score; re-select deterministically so boundary ties go to the
    # smallest node ids.  This honours the tie-break contract at the cut
    # itself and makes top_k(·, k) a prefix of top_k(·, k + j).
    boundary = scores[top_indices].min()
    above = np.flatnonzero(scores > boundary)
    tied = np.flatnonzero(scores == boundary)
    chosen = np.concatenate([above, tied[: k - above.size]])
    return sorted(
        ((int(i), float(scores[i])) for i in chosen),
        key=lambda item: (-item[1], item[0]),
    )
