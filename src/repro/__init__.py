"""repro — a full reproduction of "SLING: A Near-Optimal Index Structure for
SimRank" (Tian & Xiao, SIGMOD 2016).

The package is organised as:

* :mod:`repro.graphs` — compact directed-graph substrate, generators, and
  stand-ins for the paper's twelve evaluation datasets;
* :mod:`repro.sling` — the SLING index: √c-walks, correction factors, hitting
  probabilities, single-pair / single-source queries, and the Section-5
  optimizations (adaptive sampling, space reduction, accuracy enhancement,
  parallel and out-of-core construction);
* :mod:`repro.baselines` — the competing methods of the evaluation: the power
  method, the Monte Carlo method of Fogaras & Rácz, and the linearization
  method of Maehara et al.;
* :mod:`repro.evaluation` — metrics, workloads, and drivers that regenerate
  every figure of the paper's Section 7 and Appendix C;
* :mod:`repro.engine` — the unified query layer: one backend protocol over
  SLING and every baseline, batched execution with result caching, and a
  planner that routes queries under a memory budget;
* :mod:`repro.service` — the serving boundary: typed request dataclasses and
  :class:`QueryResult` envelopes over named dataset sessions
  (:class:`SimRankService`), plus the JSONL wire protocol behind
  ``repro batch``.

Quickstart
----------
>>> from repro.graphs import generators
>>> from repro.sling import SlingIndex
>>> graph = generators.two_level_community(4, 16, seed=1)
>>> index = SlingIndex(graph, epsilon=0.05, seed=1).build()
>>> 0.0 <= index.single_pair(0, 1) <= 1.0
True
"""

from .exceptions import (
    ConvergenceError,
    GraphFormatError,
    IndexNotBuiltError,
    NodeNotFoundError,
    ParameterError,
    ReproError,
    StorageError,
)
from .graphs import DiGraph
from .sling import SlingIndex, SlingParameters
from .baselines import LinearizeIndex, MonteCarloIndex, PowerMethod
from .engine import (
    BackendConfig,
    QueryEngine,
    SimilarityBackend,
    create_backend,
    create_engine,
)
from .service import (
    AllPairsQuery,
    QueryResult,
    ServiceConfig,
    SimRankService,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "GraphFormatError",
    "NodeNotFoundError",
    "ParameterError",
    "IndexNotBuiltError",
    "StorageError",
    "ConvergenceError",
    "DiGraph",
    "SlingIndex",
    "SlingParameters",
    "LinearizeIndex",
    "MonteCarloIndex",
    "PowerMethod",
    "BackendConfig",
    "QueryEngine",
    "SimilarityBackend",
    "create_backend",
    "create_engine",
    "SimRankService",
    "ServiceConfig",
    "QueryResult",
    "SinglePairQuery",
    "SingleSourceQuery",
    "TopKQuery",
    "AllPairsQuery",
]
