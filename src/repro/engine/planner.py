"""Backend routing: pick a query strategy from a memory budget.

The planner answers one question for callers that do not want to choose a
backend by hand: *given this graph and this much memory, which backend should
serve queries?*  The policy mirrors Section 5.4 of the paper:

* the in-memory SLING index is the default — near-optimal query time with a
  provable accuracy guarantee;
* when the estimated index footprint exceeds the memory budget but the ``8n``
  bytes of correction factors still fit, the disk-backed SLING variant is
  chosen (hitting sets stay on disk, O(1) I/O per query);
* when even that does not fit — or the caller asked for no index build at
  all — the planner falls back to an index-free baseline: the exact power
  method on toy graphs, Monte-Carlo √c-walks otherwise.

:func:`create_engine` is the one-call entry point the CLI and the examples
use: plan, build the chosen backend, and wrap it in a
:class:`~repro.engine.engine.QueryEngine`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graphs import DiGraph
from ..sling import SlingParameters
from .backends import (
    BackendConfig,
    create_backend,
    resolve_backend_name,
)
from .engine import PAIR_AMORTIZE_THRESHOLD, QueryEngine

__all__ = [
    "QueryPlan",
    "estimate_sling_index_bytes",
    "plan_backend",
    "create_engine",
    "POWER_METHOD_MAX_NODES",
]

#: Above this many nodes the Θ(n²) power method stops being a sane fallback.
POWER_METHOD_MAX_NODES = 512

#: Bytes per stored hitting-probability entry in the packed index layout.
_HITTING_ENTRY_BYTES = 12

#: Bytes per correction factor (one float64 per node).
_CORRECTION_BYTES = 8


@dataclass(frozen=True)
class QueryPlan:
    """Outcome of a routing decision: which backend, and why."""

    backend: str
    reason: str
    estimated_index_bytes: int
    memory_budget_bytes: int | None = None

    def as_dict(self) -> dict:
        """Plain-dict form for JSON output."""
        return {
            "backend": self.backend,
            "reason": self.reason,
            "estimated_index_bytes": self.estimated_index_bytes,
            "memory_budget_bytes": self.memory_budget_bytes,
        }


def estimate_sling_index_bytes(
    graph: DiGraph, *, c: float = 0.6, epsilon: float = 0.025
) -> int:
    """Heuristic upper estimate of the in-memory SLING index footprint.

    The index stores ``n`` correction factors plus the hitting-probability
    sets, whose expected total size is ``O(n/ε)`` (Theorem 2).  The reverse
    push keeps entries with value at least θ, and the geometric decay of
    √c-walk mass bounds the surviving entries per node by roughly
    ``√c / ((1 - √c) · θ)``; on real graphs locality makes the sets much
    smaller, so this deliberately over-estimates — the planner only falls
    back to disk when memory is genuinely tight.
    """
    n = graph.num_nodes
    params = SlingParameters.from_accuracy_target(
        num_nodes=max(2, n), c=c, epsilon=epsilon
    )
    per_node = params.sqrt_c / ((1.0 - params.sqrt_c) * params.theta)
    # A node can never store more than one entry per (level, node) pair that
    # carries mass; cap by n · max-level to keep the estimate sane on tiny graphs.
    max_level = max(1, math.ceil(math.log(params.theta) / math.log(params.sqrt_c)))
    per_node = min(per_node, float(n) * max_level)
    return int(
        _CORRECTION_BYTES * n + _HITTING_ENTRY_BYTES * math.ceil(per_node) * n
    )


def plan_backend(
    graph: DiGraph,
    *,
    memory_budget_bytes: int | None = None,
    config: BackendConfig | None = None,
    prefer: str | None = None,
    allow_index_build: bool = True,
) -> QueryPlan:
    """Choose a backend for ``graph`` under an optional memory budget.

    Parameters
    ----------
    graph:
        The graph queries will run on.
    memory_budget_bytes:
        Upper bound on resident index size; ``None`` means unconstrained.
    config:
        Accuracy/seed knobs used for the footprint estimate.
    prefer:
        Explicit backend name or alias; short-circuits planning.
    allow_index_build:
        When ``False`` the planner skips both SLING variants and routes to a
        baseline — the "no index is built" fallback.
    """
    config = config or BackendConfig()
    if prefer is not None and prefer != "auto":
        name = resolve_backend_name(prefer)
        return QueryPlan(
            backend=name,
            reason=f"backend {name!r} explicitly requested",
            estimated_index_bytes=estimate_sling_index_bytes(
                graph, c=config.c, epsilon=config.epsilon
            ),
            memory_budget_bytes=memory_budget_bytes,
        )

    estimate = estimate_sling_index_bytes(graph, c=config.c, epsilon=config.epsilon)
    corrections = _CORRECTION_BYTES * graph.num_nodes

    if allow_index_build:
        if memory_budget_bytes is None or estimate <= memory_budget_bytes:
            return QueryPlan(
                backend="sling",
                reason=(
                    "estimated index footprint "
                    f"({estimate} B) fits the memory budget"
                    if memory_budget_bytes is not None
                    else "no memory budget given; in-memory SLING is the default"
                ),
                estimated_index_bytes=estimate,
                memory_budget_bytes=memory_budget_bytes,
            )
        if corrections <= memory_budget_bytes:
            return QueryPlan(
                backend="sling-disk",
                reason=(
                    f"estimated index footprint ({estimate} B) exceeds the "
                    f"budget ({memory_budget_bytes} B) but the {corrections} B "
                    "of correction factors fit; keeping hitting sets on disk"
                ),
                estimated_index_bytes=estimate,
                memory_budget_bytes=memory_budget_bytes,
            )

    # Something must still answer queries; the fallback baselines have their
    # own (unchecked) footprints, so say explicitly when the budget could not
    # be honoured rather than silently pretending it was.
    over_budget = (
        "; note the budget cannot hold even the correction factors and is "
        "not honoured by the fallback"
        if memory_budget_bytes is not None
        else ""
    )
    if graph.num_nodes <= POWER_METHOD_MAX_NODES:
        return QueryPlan(
            backend="power",
            reason=(
                "no SLING index available within constraints; the graph is "
                "small enough for the exact power method" + over_budget
            ),
            estimated_index_bytes=estimate,
            memory_budget_bytes=memory_budget_bytes,
        )
    return QueryPlan(
        backend="montecarlo_sqrtc",
        reason=(
            "no SLING index available within constraints; falling back to "
            "√c-walk Monte Carlo" + over_budget
        ),
        estimated_index_bytes=estimate,
        memory_budget_bytes=memory_budget_bytes,
    )


def create_engine(
    graph: DiGraph,
    *,
    backend: str = "auto",
    memory_budget_bytes: int | None = None,
    config: BackendConfig | None = None,
    cache_size: int = 128,
    cache_ttl_seconds: float | None = None,
    pair_admission_threshold: int | None = PAIR_AMORTIZE_THRESHOLD,
    allow_index_build: bool = True,
) -> QueryEngine:
    """Plan, build, and wrap a backend in a ready-to-query engine.

    The chosen :class:`QueryPlan` is attached to the engine as ``engine.plan``;
    ``cache_size`` / ``cache_ttl_seconds`` / ``pair_admission_threshold`` are
    forwarded to the engine's cache policy unchanged.
    """
    plan = plan_backend(
        graph,
        memory_budget_bytes=memory_budget_bytes,
        config=config,
        prefer=backend,
        allow_index_build=allow_index_build,
    )
    built = create_backend(plan.backend, graph, config)
    return QueryEngine(
        built,
        cache_size=cache_size,
        cache_ttl_seconds=cache_ttl_seconds,
        pair_admission_threshold=pair_admission_threshold,
        plan=plan,
    )
