"""Unified query-engine layer over SLING and every baseline method.

This package puts one execution surface in front of all the ways the
repository can answer a SimRank query:

* :mod:`repro.engine.backends` — the :class:`SimilarityBackend` protocol, a
  string-keyed registry, and adapter classes wrapping :class:`SlingIndex`,
  :class:`DiskBackedIndex`, and the naive / power / Monte-Carlo / linearize
  baselines;
* :mod:`repro.engine.engine` — :class:`QueryEngine`, which executes single
  and batched queries with an LRU cache of single-source score vectors and
  per-query / aggregate statistics;
* :mod:`repro.engine.planner` — a small router that picks the in-memory or
  disk-backed SLING backend from a memory budget, falling back to a baseline
  when no index can be built.

This package is the *middle* layer of the serving stack::

    repro.service   SimRankService: typed requests -> QueryResult envelopes,
       |            named dataset sessions, JSONL wire protocol
    repro.engine    QueryEngine: batching, LRU cache, statistics; planner
       |            routing under a memory budget
    backends        SLING index, disk-backed SLING, baselines

Consumers (the CLI, the experiment drivers, the examples, ``repro batch``)
talk to :class:`repro.service.SimRankService`, which opens one engine per
(dataset, backend) pair through :func:`create_engine`; the engine is an
internal layer — reach for it directly only when embedding a single backend
without session management (tests, micro-benchmarks).
"""

from .backends import (
    BackendConfig,
    BackendInfo,
    DiskSlingBackend,
    LinearizeBackend,
    MonteCarloBackend,
    NaiveBackend,
    PowerBackend,
    SimilarityBackend,
    SlingBackend,
    SqrtCMonteCarloBackend,
    backend_names,
    create_backend,
    get_backend_class,
    register_backend,
    resolve_backend_name,
)
from .engine import (
    ENGINE_TOTAL_COUNTERS,
    PAIR_AMORTIZE_THRESHOLD,
    EngineStatistics,
    QueryEngine,
    QueryRecord,
    hit_rate_by_kind,
    latency_percentiles_by_kind,
    latency_percentiles_by_outcome,
    latency_quantiles,
    merge_statistics_totals,
)
from .planner import QueryPlan, create_engine, estimate_sling_index_bytes, plan_backend

__all__ = [
    "BackendConfig",
    "BackendInfo",
    "SimilarityBackend",
    "SlingBackend",
    "DiskSlingBackend",
    "NaiveBackend",
    "PowerBackend",
    "MonteCarloBackend",
    "SqrtCMonteCarloBackend",
    "LinearizeBackend",
    "backend_names",
    "create_backend",
    "get_backend_class",
    "register_backend",
    "resolve_backend_name",
    "QueryEngine",
    "EngineStatistics",
    "QueryRecord",
    "ENGINE_TOTAL_COUNTERS",
    "PAIR_AMORTIZE_THRESHOLD",
    "latency_quantiles",
    "latency_percentiles_by_kind",
    "latency_percentiles_by_outcome",
    "hit_rate_by_kind",
    "merge_statistics_totals",
    "QueryPlan",
    "plan_backend",
    "create_engine",
    "estimate_sling_index_bytes",
]
