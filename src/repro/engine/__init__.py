"""Unified query-engine layer over SLING and every baseline method.

This package puts one execution surface in front of all the ways the
repository can answer a SimRank query:

* :mod:`repro.engine.backends` — the :class:`SimilarityBackend` protocol, a
  string-keyed registry, and adapter classes wrapping :class:`SlingIndex`,
  :class:`DiskBackedIndex`, and the naive / power / Monte-Carlo / linearize
  baselines;
* :mod:`repro.engine.engine` — :class:`QueryEngine`, which executes single
  and batched queries with an LRU cache of single-source score vectors and
  per-query / aggregate statistics;
* :mod:`repro.engine.planner` — a small router that picks the in-memory or
  disk-backed SLING backend from a memory budget, falling back to a baseline
  when no index can be built.

The CLI, the experiment drivers, and the examples all dispatch queries
through this layer; future sharding / async-serving work plugs in here.
"""

from .backends import (
    BackendConfig,
    BackendInfo,
    DiskSlingBackend,
    LinearizeBackend,
    MonteCarloBackend,
    NaiveBackend,
    PowerBackend,
    SimilarityBackend,
    SlingBackend,
    SqrtCMonteCarloBackend,
    backend_names,
    create_backend,
    get_backend_class,
    register_backend,
    resolve_backend_name,
)
from .engine import EngineStatistics, QueryEngine, QueryRecord
from .planner import QueryPlan, create_engine, estimate_sling_index_bytes, plan_backend

__all__ = [
    "BackendConfig",
    "BackendInfo",
    "SimilarityBackend",
    "SlingBackend",
    "DiskSlingBackend",
    "NaiveBackend",
    "PowerBackend",
    "MonteCarloBackend",
    "SqrtCMonteCarloBackend",
    "LinearizeBackend",
    "backend_names",
    "create_backend",
    "get_backend_class",
    "register_backend",
    "resolve_backend_name",
    "QueryEngine",
    "EngineStatistics",
    "QueryRecord",
    "QueryPlan",
    "plan_backend",
    "create_engine",
    "estimate_sling_index_bytes",
]
