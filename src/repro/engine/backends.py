"""Similarity backends: one protocol, many SimRank computation strategies.

Every way this repository can answer a SimRank query — the SLING index
(Algorithms 3/6), its disk-backed variant, and the four baselines — is
wrapped in a :class:`SimilarityBackend` adapter exposing the same four
operations (``build``, ``single_pair``, ``single_source``, ``top_k``) plus
capability/cost flags (:class:`BackendInfo`) that the planner and the engine
use to route queries.

Backends are registered in a string-keyed registry; :func:`create_backend`
instantiates one by name and :func:`resolve_backend_name` maps the paper's
figure labels ("SLING", "MC", "MC-sqrtc", "Linearize", ...) onto registry
keys so the evaluation drivers and the CLI can share one dispatch path.
"""

from __future__ import annotations

import abc
import dataclasses
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..baselines import (
    LinearizeIndex,
    MonteCarloIndex,
    PowerMethod,
    SqrtCMonteCarloIndex,
    iterations_for_error,
    naive_simrank,
)
from ..exceptions import IndexNotBuiltError, ParameterError
from ..graphs import DiGraph
from ..ranking import rank_top_k
from ..sling import (
    DiskBackedIndex,
    DynamicSlingIndex,
    MutationReport,
    SlingIndex,
    has_saved_index,
    save_index,
)

__all__ = [
    "BackendConfig",
    "BackendInfo",
    "SimilarityBackend",
    "SlingBackend",
    "DiskSlingBackend",
    "NaiveBackend",
    "PowerBackend",
    "MonteCarloBackend",
    "SqrtCMonteCarloBackend",
    "LinearizeBackend",
    "register_backend",
    "backend_names",
    "get_backend_class",
    "create_backend",
    "resolve_backend_name",
]


@dataclass(frozen=True)
class BackendConfig:
    """Construction knobs shared by every backend.

    The engine layer sits below :mod:`repro.evaluation`, so this mirrors (but
    does not import) ``MethodConfig``; the evaluation drivers translate one
    into the other.
    """

    c: float = 0.6
    epsilon: float = 0.025
    seed: int = 0
    mc_num_walks: int = 200
    sling_reduce_space: bool = False
    sling_enhance_accuracy: bool = False
    #: How the SLING backends answer ``top_k``: ``"exact"`` ranks a full
    #: single-source vector; ``"bounded"`` runs the truncated cascade with
    #: residual-mass pruning (within ε/4 of exact, typically much faster on
    #: a warm index).
    sling_topk_mode: str = "exact"
    #: Directory for disk-backed indexes; a temporary directory when ``None``.
    work_directory: str | None = None
    #: When ``True`` and :attr:`work_directory` already holds a saved index,
    #: the disk backend mmaps it instead of rebuilding — how a pool of worker
    #: processes shares one prebuilt packed index at near-zero per-worker
    #: cost.  The saved index's own parameters win; only the graph shape is
    #: verified (:class:`~repro.exceptions.StorageError` on mismatch).
    reuse_saved_index: bool = False

    def __post_init__(self) -> None:
        if self.sling_topk_mode not in ("exact", "bounded"):
            raise ParameterError(
                f"sling_topk_mode must be 'exact' or 'bounded', "
                f"got {self.sling_topk_mode!r}"
            )


@dataclass(frozen=True)
class BackendInfo:
    """Capability and cost flags describing a backend to the planner.

    ``build_cost`` / ``query_cost`` are coarse order-of-magnitude labels
    ("none", "walks", "index", "matrix"), not measurements — enough for
    routing decisions, cheap enough to declare statically.
    """

    name: str
    #: Whether answers carry an additive-error guarantee vs. being exact.
    exact: bool = False
    #: Whether the preprocessed structures stay in main memory.
    in_memory: bool = True
    #: Whether the backend is usable beyond toy graphs (naive/power are not).
    scalable: bool = True
    #: Coarse preprocessing cost class: "none" | "walks" | "index" | "matrix".
    build_cost: str = "index"
    #: Coarse per-query cost class: "constant" | "linear" | "matrix-row".
    query_cost: str = "constant"
    #: Whether queries on a *built* backend are safe to run concurrently.
    #: Every bundled backend is read-only after ``build`` (walk fingerprints,
    #: score matrices, hitting sets, and the disk index's packed arrays are
    #: never mutated by a query), so they all declare ``True``; a backend that
    #: mutates per-query state (query-time RNG, unlocked memoisation, a shared
    #: file handle) must declare ``False`` and the engine will serialise its
    #: queries behind a lock instead of running them in parallel.
    thread_safe_queries: bool = True

    def as_dict(self) -> dict:
        """Plain-dict form for the ``describe`` control response."""
        return dataclasses.asdict(self)


class SimilarityBackend(abc.ABC):
    """Uniform adapter over one SimRank computation strategy.

    Subclasses declare their :class:`BackendInfo` as the class attribute
    ``info`` and implement ``build`` / ``single_pair`` / ``single_source`` /
    ``index_size_bytes``; ``top_k`` and ``all_pairs`` have generic
    implementations on top of ``single_source``.
    """

    info: BackendInfo = BackendInfo(name="abstract")

    def __init__(self, graph: DiGraph, config: BackendConfig | None = None) -> None:
        if graph.num_nodes == 0:
            raise ParameterError("cannot build a backend over an empty graph")
        self._graph = graph
        self._config = config or BackendConfig()
        self._built = False

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> DiGraph:
        """The graph this backend answers queries on."""
        return self._graph

    @property
    def config(self) -> BackendConfig:
        """The configuration the backend was created with."""
        return self._config

    @property
    def name(self) -> str:
        """Registry key of this backend."""
        return self.info.name

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError(f"{self.name} backend")

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def build(self) -> "SimilarityBackend":
        """Run preprocessing; returns ``self`` so construction can chain."""

    @abc.abstractmethod
    def single_pair(self, node_u: int, node_v: int) -> float:
        """Approximate SimRank score of one node pair."""

    @abc.abstractmethod
    def single_source(self, node: int) -> np.ndarray:
        """Approximate SimRank from ``node`` to every node, as ``(n,)``."""

    @abc.abstractmethod
    def index_size_bytes(self) -> int:
        """Size of the preprocessed structures, in bytes."""

    # ------------------------------------------------------------------ #
    # Mutation protocol (opt-in; only the in-memory SLING adapter today)
    # ------------------------------------------------------------------ #
    #: Whether :meth:`apply_mutation` is supported; static backends answer
    #: queries forever against the graph they were built on.
    supports_mutation: bool = False

    def apply_mutation(self, added=(), removed=()) -> "MutationReport":
        """Apply an edge delta in place (added/removed ``(u, v)`` lists).

        Mutation-capable backends override this; the default refuses so the
        service layer can surface a clean error instead of silently serving
        a stale index.
        """
        raise ParameterError(
            f"backend {self.info.name!r} does not support graph mutation"
        )

    def refreeze(self) -> bool:
        """Compact accumulated mutation deltas back to a frozen index.

        A no-op (``True``) for static backends: they have no deltas.
        """
        return True

    @property
    def index_version(self) -> int:
        """Monotonic mutation version (0 for a never-mutated backend)."""
        return 0

    def staleness_bound(self) -> float:
        """Certified additional error ε_stale of answers served right now."""
        return 0.0

    # ------------------------------------------------------------------ #
    def top_k(self, node: int, k: int) -> list[tuple[int, float]]:
        """The ``k`` nodes most similar to ``node`` (excluding itself).

        The copy here is deliberate: :func:`rank_top_k` masks the source
        in-place, and the ``single_source`` protocol does not promise a fresh
        array (a subclass may legitimately return a view into its index).
        Backends whose ``single_source`` is documented to return fresh
        storage (the SLING adapters) override this without the copy.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        scores = np.array(self.single_source(node), dtype=np.float64, copy=True)
        return rank_top_k(scores, int(node), k)

    def all_pairs(self) -> np.ndarray:
        """All-pairs scores via one single-source query per node."""
        self._require_built()
        n = self._graph.num_nodes
        matrix = np.zeros((n, n), dtype=np.float64)
        for node in self._graph.nodes():
            matrix[node] = self.single_source(node)
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "built" if self._built else "not built"
        return f"{type(self).__name__}(n={self._graph.num_nodes}, {status})"


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, type[SimilarityBackend]] = {}

#: Figure labels and common spellings accepted by :func:`resolve_backend_name`.
_ALIASES: dict[str, str] = {
    "sling": "sling",
    "sling-disk": "sling-disk",
    "disk": "sling-disk",
    "disksling": "sling-disk",
    "naive": "naive",
    "power": "power",
    "mc": "montecarlo",
    "montecarlo": "montecarlo",
    "monte-carlo": "montecarlo",
    "mc-sqrtc": "montecarlo_sqrtc",
    "montecarlo_sqrtc": "montecarlo_sqrtc",
    "linearize": "linearize",
}


def register_backend(cls: type[SimilarityBackend]) -> type[SimilarityBackend]:
    """Class decorator adding a backend to the registry under ``cls.info.name``."""
    name = cls.info.name
    if name in _REGISTRY:
        raise ParameterError(f"backend {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def backend_names() -> list[str]:
    """All registered backend names, sorted."""
    return sorted(_REGISTRY)


def resolve_backend_name(label: str) -> str:
    """Map a figure label or alias ("SLING", "MC-sqrtc", ...) to a registry key."""
    key = _ALIASES.get(label.strip().lower())
    if key is None or key not in _REGISTRY:
        raise ParameterError(
            f"unknown backend {label!r}; known backends: {', '.join(backend_names())}"
        )
    return key


def get_backend_class(name: str) -> type[SimilarityBackend]:
    """Look up a backend class by registry key or alias."""
    return _REGISTRY[resolve_backend_name(name)]


def create_backend(
    name: str,
    graph: DiGraph,
    config: BackendConfig | None = None,
    *,
    build: bool = True,
) -> SimilarityBackend:
    """Instantiate (and by default build) a backend by registry name or alias."""
    backend = get_backend_class(name)(graph, config)
    if build:
        backend.build()
    return backend


# --------------------------------------------------------------------------- #
# SLING adapters
# --------------------------------------------------------------------------- #
@register_backend
class SlingBackend(SimilarityBackend):
    """In-memory :class:`SlingIndex` behind the backend protocol."""

    info = BackendInfo(
        name="sling",
        exact=False,
        in_memory=True,
        scalable=True,
        build_cost="index",
        query_cost="constant",
    )

    def __init__(self, graph: DiGraph, config: BackendConfig | None = None) -> None:
        super().__init__(graph, config)
        cfg = self._config
        self._index = SlingIndex(
            graph,
            c=cfg.c,
            epsilon=cfg.epsilon,
            seed=cfg.seed,
            reduce_space=cfg.sling_reduce_space,
            enhance_accuracy=cfg.sling_enhance_accuracy,
        )

    @property
    def index(self) -> SlingIndex:
        """The wrapped SLING index (build statistics, parameters, ...)."""
        return self._index

    @property
    def packed_store(self):
        """The frozen columnar store the index answers queries from."""
        self._require_built()
        return self._index.packed_store

    def build(self) -> "SlingBackend":
        self._index.build()
        self._built = True
        return self

    def single_pair(self, node_u: int, node_v: int) -> float:
        self._require_built()
        return self._index.single_pair(node_u, node_v)

    def single_source(self, node: int, *, method: str = "local_push") -> np.ndarray:
        self._require_built()
        return self._index.single_source(node, method=method)

    def top_k(self, node: int, k: int) -> list[tuple[int, float]]:
        """Top-k honouring ``config.sling_topk_mode`` ("exact" or "bounded").

        Both modes delegate to :meth:`SlingIndex.top_k`, which skips the
        generic adapter's defensive copy — ``SlingIndex.single_source``
        always returns fresh storage.
        """
        self._require_built()
        mode = self._config.sling_topk_mode
        return self._index.top_k(
            node, k, method="bounded" if mode == "bounded" else "local_push"
        )

    # ------------------------------------------------------------------ #
    # Mutation protocol
    # ------------------------------------------------------------------ #
    supports_mutation = True

    def apply_mutation(self, added=(), removed=()) -> MutationReport:
        """Apply an edge delta in place, promoting the wrapped index to a
        :class:`DynamicSlingIndex` on first use.

        Promotion adopts the already-built store and corrections without a
        rebuild, so the backend object — and any :class:`QueryEngine`
        fronting it — survives the mutation with its cache and statistics
        intact; the engine is told what changed via the returned report's
        ``affected_sources`` and ``version``.
        """
        self._require_built()
        if not isinstance(self._index, DynamicSlingIndex):
            self._index = DynamicSlingIndex.from_index(self._index)
        report = self._index.mutate(added=added, removed=removed)
        # Keep the backend's graph handle (degrees, bounds checks, repr)
        # pointing at the post-mutation graph.
        self._graph = self._index.graph
        return report

    def refreeze(self) -> bool:
        self._require_built()
        if not isinstance(self._index, DynamicSlingIndex):
            return True
        return self._index.refreeze()

    @property
    def index_version(self) -> int:
        if isinstance(self._index, DynamicSlingIndex):
            return self._index.version
        return 0

    def staleness_bound(self) -> float:
        if isinstance(self._index, DynamicSlingIndex):
            return self._index.staleness_bound()
        return 0.0

    def index_size_bytes(self) -> int:
        self._require_built()
        return self._index.index_size_bytes()

    def resident_bytes(self) -> int:
        """Actual in-memory footprint of the packed columns + corrections.

        Unlike :meth:`index_size_bytes` (the logical 12-bytes-per-entry
        Figure-4 accounting) this is the real allocation the planner's memory
        budget competes with, read in O(1) off the store's array lengths.
        """
        self._require_built()
        return self._index.resident_bytes()

    def average_set_size(self) -> float:
        """Average stored hitting probabilities per node (Table-1 accounting)."""
        self._require_built()
        return self._index.average_set_size()


@register_backend
class DiskSlingBackend(SimilarityBackend):
    """SLING with hitting sets on disk: build, persist, then query via
    :class:`DiskBackedIndex` so only the correction factors stay resident."""

    info = BackendInfo(
        name="sling-disk",
        exact=False,
        in_memory=False,
        scalable=True,
        build_cost="index",
        query_cost="constant",
    )

    def __init__(self, graph: DiGraph, config: BackendConfig | None = None) -> None:
        super().__init__(graph, config)
        self._tempdir: tempfile.TemporaryDirectory | None = None
        self._directory: Path | None = None
        self._disk_index: DiskBackedIndex | None = None
        self._total_index_bytes = 0

    @property
    def directory(self) -> Path:
        """Where the packed index lives on disk."""
        self._require_built()
        assert self._directory is not None
        return self._directory

    @property
    def disk_index(self) -> DiskBackedIndex:
        """The wrapped disk-backed reader (I/O accounting, parameters)."""
        self._require_built()
        assert self._disk_index is not None
        return self._disk_index

    @property
    def packed_store(self):
        """The memory-mapped columnar store backing the disk index."""
        return self.disk_index.store

    def build(self) -> "DiskSlingBackend":
        cfg = self._config
        if cfg.work_directory is not None:
            directory = Path(cfg.work_directory)
        else:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-sling-disk-")
            directory = Path(self._tempdir.name)
        if cfg.reuse_saved_index and has_saved_index(directory):
            # Zero-copy attach: mmap the already-saved columns; the only
            # per-process cost is the 8n bytes of correction factors.
            self._total_index_bytes = sum(
                path.stat().st_size for path in directory.glob("*.npy")
            )
        else:
            index = SlingIndex(
                self._graph, c=cfg.c, epsilon=cfg.epsilon, seed=cfg.seed
            ).build()
            save_index(index, directory)
            self._total_index_bytes = index.index_size_bytes()
        self._directory = directory
        self._disk_index = DiskBackedIndex(directory, self._graph)
        self._built = True
        return self

    def single_pair(self, node_u: int, node_v: int) -> float:
        self._require_built()
        assert self._disk_index is not None
        return self._disk_index.single_pair(node_u, node_v)

    def single_source(self, node: int) -> np.ndarray:
        self._require_built()
        assert self._disk_index is not None
        return self._disk_index.single_source(node)

    def top_k(self, node: int, k: int) -> list[tuple[int, float]]:
        """Top-k honouring ``config.sling_topk_mode`` ("exact" or "bounded")."""
        self._require_built()
        assert self._disk_index is not None
        mode = self._config.sling_topk_mode
        return self._disk_index.top_k(
            node, k, method="bounded" if mode == "bounded" else "local_push"
        )

    def index_size_bytes(self) -> int:
        """Total size of the packed index, like every other backend."""
        self._require_built()
        return self._total_index_bytes

    def resident_bytes(self) -> int:
        """Main-memory footprint: only the ``8n`` bytes of correction factors.

        The packed columns are memory-mapped, so their pages live in the
        kernel's cache, not this process's budget.
        """
        self._require_built()
        return 8 * self._graph.num_nodes


# --------------------------------------------------------------------------- #
# Baseline adapters
# --------------------------------------------------------------------------- #
@register_backend
class NaiveBackend(SimilarityBackend):
    """The textbook all-pairs fixed-point iteration (testing oracle).

    ``build`` materialises the full score matrix, so this is only usable on
    toy graphs — which is exactly its role as an independent oracle.
    """

    info = BackendInfo(
        name="naive",
        exact=True,
        in_memory=True,
        scalable=False,
        build_cost="matrix",
        query_cost="matrix-row",
    )

    def __init__(self, graph: DiGraph, config: BackendConfig | None = None) -> None:
        super().__init__(graph, config)
        self._matrix: np.ndarray | None = None

    def build(self) -> "NaiveBackend":
        cfg = self._config
        scores = naive_simrank(self._graph, c=cfg.c, epsilon=cfg.epsilon)
        n = self._graph.num_nodes
        matrix = np.zeros((n, n), dtype=np.float64)
        for (node_u, node_v), value in scores.items():
            matrix[node_u, node_v] = value
        self._matrix = matrix
        self._built = True
        return self

    def single_pair(self, node_u: int, node_v: int) -> float:
        self._require_built()
        assert self._matrix is not None
        return float(self._matrix[int(node_u), int(node_v)])

    def single_source(self, node: int) -> np.ndarray:
        self._require_built()
        assert self._matrix is not None
        return self._matrix[int(node)].copy()

    def index_size_bytes(self) -> int:
        self._require_built()
        assert self._matrix is not None
        return int(self._matrix.nbytes)


@register_backend
class PowerBackend(SimilarityBackend):
    """The power method (Section 3.1) behind the backend protocol."""

    info = BackendInfo(
        name="power",
        exact=True,
        in_memory=True,
        scalable=False,
        build_cost="matrix",
        query_cost="matrix-row",
    )

    def __init__(self, graph: DiGraph, config: BackendConfig | None = None) -> None:
        super().__init__(graph, config)
        cfg = self._config
        self._method = PowerMethod(graph, c=cfg.c, epsilon=cfg.epsilon)

    @property
    def method(self) -> PowerMethod:
        """The wrapped power-method instance."""
        return self._method

    def build(self) -> "PowerBackend":
        self._method.build()
        self._built = True
        return self

    def single_pair(self, node_u: int, node_v: int) -> float:
        self._require_built()
        return self._method.single_pair(node_u, node_v)

    def single_source(self, node: int) -> np.ndarray:
        self._require_built()
        return self._method.single_source(node)

    def index_size_bytes(self) -> int:
        self._require_built()
        return self._method.index_size_bytes()


class _MethodBackend(SimilarityBackend):
    """Shared plumbing for adapters over a built :class:`SimRankMethod`."""

    def __init__(self, graph: DiGraph, config: BackendConfig | None = None) -> None:
        super().__init__(graph, config)
        self._method = self._make_method()

    def _make_method(self):
        raise NotImplementedError

    @property
    def method(self):
        """The wrapped :class:`SimRankMethod` instance."""
        return self._method

    def build(self) -> "_MethodBackend":
        self._method.build()
        self._built = True
        return self

    def single_pair(self, node_u: int, node_v: int) -> float:
        self._require_built()
        return self._method.single_pair(node_u, node_v)

    def single_source(self, node: int) -> np.ndarray:
        self._require_built()
        return self._method.single_source(node)

    def index_size_bytes(self) -> int:
        self._require_built()
        return self._method.index_size_bytes()


@register_backend
class MonteCarloBackend(_MethodBackend):
    """The Fogaras & Rácz Monte-Carlo method (c-walks)."""

    info = BackendInfo(
        name="montecarlo",
        exact=False,
        in_memory=True,
        scalable=True,
        build_cost="walks",
        query_cost="linear",
    )

    def _make_method(self) -> MonteCarloIndex:
        cfg = self._config
        return MonteCarloIndex(
            self._graph,
            c=cfg.c,
            epsilon=cfg.epsilon,
            num_walks=cfg.mc_num_walks,
            seed=cfg.seed,
        )


@register_backend
class SqrtCMonteCarloBackend(_MethodBackend):
    """The √c-walk Monte-Carlo variant (Section 4.1)."""

    info = BackendInfo(
        name="montecarlo_sqrtc",
        exact=False,
        in_memory=True,
        scalable=True,
        build_cost="walks",
        query_cost="linear",
    )

    def _make_method(self) -> SqrtCMonteCarloIndex:
        cfg = self._config
        return SqrtCMonteCarloIndex(
            self._graph,
            c=cfg.c,
            epsilon=cfg.epsilon,
            num_walks=cfg.mc_num_walks,
            seed=cfg.seed,
        )


@register_backend
class LinearizeBackend(_MethodBackend):
    """The linearization method of Maehara et al."""

    info = BackendInfo(
        name="linearize",
        exact=False,
        in_memory=True,
        scalable=True,
        build_cost="index",
        query_cost="linear",
    )

    def _make_method(self) -> LinearizeIndex:
        cfg = self._config
        return LinearizeIndex(self._graph, c=cfg.c, seed=cfg.seed)


def naive_iteration_count(config: BackendConfig) -> int:
    """Iterations :class:`NaiveBackend` will run for its configured accuracy."""
    return iterations_for_error(config.c, config.epsilon)
