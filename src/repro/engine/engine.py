"""The query engine: single + batched execution, caching, statistics.

:class:`QueryEngine` fronts one :class:`SimilarityBackend` and adds the three
things no individual backend provides:

* **batched execution** — ``single_pair_many`` / ``single_source_many`` /
  ``top_k_many`` deduplicate work inside a batch (a single-source vector is
  computed once per distinct source and reused for every query that needs
  it), amortizing the per-query walker / local-push setup;
* **an LRU cache** of single-source score vectors, so repeated and
  overlapping workloads (top-k dashboards, all-pairs sweeps, skewed query
  mixes) skip recomputation entirely;
* **statistics** — per-query latency records plus aggregate counters
  (queries by kind, cache hit rate, evictions, total time, backend used)
  exposed as plain dictionaries for the CLI's ``--json`` mode.

Derived queries route through the cache: ``top_k`` ranks a cached
single-source vector, and a ``single_pair`` whose source vector is already
cached is answered from it without touching the backend.  The cache is
shared *across* query kinds with explicit cross-kind admission — a source
probed by enough standalone pair queries (``pair_admission_threshold``)
gets its vector computed and admitted so subsequent traffic of every kind
hits — and an optional TTL (``cache_ttl_seconds``) bounds staleness.
:func:`merge_statistics_totals` is the single definition of aggregated
cache/latency statistics used by the service layer and the router alike.

Thread safety
-------------
An engine may be shared by concurrent query threads (the
:class:`~repro.service.ParallelExecutor` and ``repro serve`` do exactly
that).  The contract is:

* every public query method is safe to call from any number of threads;
* the LRU cache and the aggregate statistics are guarded by one internal
  lock, so counters never lose updates and evictions never corrupt the
  ordered dict — backend computation happens *outside* the lock, so cache
  misses execute concurrently (two threads missing on the same source may
  both compute it; the stores are idempotent);
* backends whose :class:`~repro.engine.backends.BackendInfo` declares
  ``thread_safe_queries=False`` are serialised behind a dedicated backend
  lock, so a backend that mutates internal state per query is still safe
  (merely not parallel);
* :attr:`statistics` is the live, mutating object — read it for cheap
  monitoring; use :meth:`statistics_snapshot` for a consistent copy;
* :attr:`last_query_record` is **per-thread**: it describes the most recent
  query *of the calling thread*, which is how the service layer attributes
  a cache hit to the request it is answering without racing other threads.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import ParameterError
from ..ranking import rank_top_k
from .backends import SimilarityBackend

__all__ = [
    "QueryEngine",
    "EngineStatistics",
    "QueryRecord",
    "LATENCY_QUANTILES",
    "ENGINE_TOTAL_COUNTERS",
    "PAIR_AMORTIZE_THRESHOLD",
    "latency_quantiles",
    "latency_percentiles_by_kind",
    "latency_percentiles_by_outcome",
    "hit_rate_by_kind",
    "merge_statistics_totals",
]

#: In a batch of pair queries, compute one single-source vector instead of
#: repeated pair queries once a source occurs at least this many times.  The
#: same threshold is the default for cross-kind admission: a source probed
#: this many times by *standalone* pair queries gets its vector admitted to
#: the shared single-source cache (see :class:`QueryEngine`).
PAIR_AMORTIZE_THRESHOLD = 4

#: Bound on the table tracking standalone-pair probe misses per source
#: (admission pressure); oldest entries are dropped beyond this.
_PAIR_COUNT_LIMIT = 4096

#: How many per-query latency records to retain (aggregates are unbounded).
MAX_QUERY_RECORDS = 1024

#: The latency quantiles reported by :func:`latency_quantiles` — the tail
#: percentiles a serving operator watches (p50 for the typical query, p95/p99
#: for the tail that dominates user-perceived latency at scale).
LATENCY_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def latency_quantiles(seconds: Sequence[float]) -> dict:
    """Nearest-rank p50/p95/p99 over a sample of latencies, plus the count.

    Nearest-rank (the ceil-of-q*n order statistic) rather than interpolation:
    every reported value is a latency that actually occurred, and the
    definition is stable under aggregation across workers (the router and
    the service totals both recompute from merged samples).  Empty samples
    yield ``count: 0`` with no quantile keys, so a kind that has never been
    queried does not fabricate a 0.0 latency.
    """
    sample = sorted(float(value) for value in seconds)
    out: dict = {"count": len(sample)}
    if not sample:
        return out
    n = len(sample)
    for name, q in LATENCY_QUANTILES:
        # Nearest-rank: the smallest value with at least q*n samples <= it.
        rank = max(1, math.ceil(q * n))
        out[name] = sample[rank - 1]
    return out


def latency_percentiles_by_kind(
    records: Iterable[tuple[str, float]],
) -> dict[str, dict]:
    """Group ``(kind, seconds)`` samples by kind and summarise each with
    :func:`latency_quantiles`.  Shared by :meth:`EngineStatistics.as_dict`,
    the service's ``stats`` totals, and the router's fan-out merge, so all
    three report the same definition of "p99 top_k latency"."""
    by_kind: dict[str, list[float]] = {}
    for kind, seconds in records:
        by_kind.setdefault(kind, []).append(seconds)
    return {
        kind: latency_quantiles(sample)
        for kind, sample in sorted(by_kind.items())
    }


def latency_percentiles_by_outcome(
    records: Iterable[tuple[bool, float]],
) -> dict[str, dict]:
    """Split ``(cache_hit, seconds)`` samples into hit / miss populations and
    summarise each with :func:`latency_quantiles` — the two latency worlds a
    cache operator compares (a hit reads an array; a miss pays the backend)."""
    hit: list[float] = []
    miss: list[float] = []
    for cache_hit, seconds in records:
        (hit if cache_hit else miss).append(seconds)
    return {"hit": latency_quantiles(hit), "miss": latency_quantiles(miss)}


def hit_rate_by_kind(
    hits_by_kind: dict[str, int], misses_by_kind: dict[str, int]
) -> dict[str, float]:
    """Per-kind cache hit rate: the fraction of queries of each kind that
    were answered from the cache.  A kind's "miss" here is any query not
    served from cache — including pair read-throughs that never consult it —
    so the rate answers "how much of this kind's traffic did the cache
    absorb", not "how often did a lookup succeed"."""
    rates: dict[str, float] = {}
    for kind in sorted(set(hits_by_kind) | set(misses_by_kind)):
        hits = hits_by_kind.get(kind, 0)
        total = hits + misses_by_kind.get(kind, 0)
        rates[kind] = hits / total if total else 0.0
    return rates


#: The additive counters summed by :func:`merge_statistics_totals`; shared by
#: the service's ``stats`` totals and the router's fan-out merge, and pinned
#: by tests asserting totals == sum(engines).
ENGINE_TOTAL_COUNTERS = (
    "total_queries",
    "single_pair_queries",
    "single_source_queries",
    "top_k_queries",
    "batch_calls",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_admissions",
    "cache_expirations",
    "pair_probe_hits",
    "pair_probe_misses",
    "pair_admissions",
    "cache_invalidations",
)


def merge_statistics_totals(engine_dicts: Iterable[dict]) -> dict:
    """Roll per-engine statistics dicts (:meth:`EngineStatistics.as_dict`
    form, or the same shape off the wire) into one totals dict.

    This is *the* definition of service-wide totals: counters are summed,
    per-kind hit/miss tallies merge by key, the overall and per-kind hit
    rates are recomputed from the summed counters (rates cannot be summed),
    and latency percentiles are recomputed from the merged recent-query
    samples with the same nearest-rank definition the per-engine dicts use.
    Both :meth:`SimRankService.statistics` and the router's ``stats``
    fan-out merge call this one function, so an engine, a single server, and
    a sharded pool can never disagree about what a hit rate or a p99 means.
    Missing keys count as zero, so dicts recorded by older servers merge
    cleanly.
    """
    totals: dict = dict.fromkeys(ENGINE_TOTAL_COUNTERS, 0)
    totals["total_seconds"] = 0.0
    hits: dict[str, int] = {}
    misses: dict[str, int] = {}
    samples: list[tuple[str, float]] = []
    outcomes: list[tuple[bool, float]] = []
    for stats in engine_dicts:
        for key in ENGINE_TOTAL_COUNTERS:
            totals[key] += int(stats.get(key, 0))
        totals["total_seconds"] += float(stats.get("total_seconds", 0.0))
        for kind, count in stats.get("hits_by_kind", {}).items():
            hits[kind] = hits.get(kind, 0) + int(count)
        for kind, count in stats.get("misses_by_kind", {}).items():
            misses[kind] = misses.get(kind, 0) + int(count)
        for record in stats.get("recent_queries", []):
            samples.append((record["kind"], record["seconds"]))
            outcomes.append((bool(record.get("cache_hit")), record["seconds"]))
    lookups = totals["cache_hits"] + totals["cache_misses"]
    totals["cache_hit_rate"] = totals["cache_hits"] / lookups if lookups else 0.0
    totals["hits_by_kind"] = {kind: hits[kind] for kind in sorted(hits)}
    totals["misses_by_kind"] = {kind: misses[kind] for kind in sorted(misses)}
    totals["hit_rate_by_kind"] = hit_rate_by_kind(hits, misses)
    totals["latency_percentiles"] = latency_percentiles_by_kind(samples)
    totals["latency_percentiles_by_outcome"] = latency_percentiles_by_outcome(
        outcomes
    )
    return totals


@dataclass(frozen=True)
class QueryRecord:
    """Latency and provenance of one executed query."""

    kind: str
    backend: str
    seconds: float
    cache_hit: bool

    def as_dict(self) -> dict:
        """Plain-dict form for JSON output."""
        return {
            "kind": self.kind,
            "backend": self.backend,
            "seconds": self.seconds,
            "cache_hit": self.cache_hit,
        }


@dataclass
class EngineStatistics:
    """Aggregate counters across the engine's lifetime (or since a reset)."""

    backend: str = ""
    single_pair_queries: int = 0
    single_source_queries: int = 0
    top_k_queries: int = 0
    batch_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: Vectors stored into the LRU (misses that completed, plus cross-kind
    #: pair admissions; concurrent misses on one source may store twice).
    cache_admissions: int = 0
    #: Cross-kind admissions: vectors computed because standalone pair
    #: probes of their source crossed the admission threshold.
    pair_admissions: int = 0
    #: Entries dropped because they outlived ``cache_ttl_seconds``.
    cache_expirations: int = 0
    #: Standalone pair queries answered from a cached source vector.  These
    #: also count into :attr:`cache_hits` — a pair served without touching
    #: the backend is cacheable work the cache absorbed.
    pair_probe_hits: int = 0
    #: Cached vectors dropped because the index they were computed against
    #: was mutated (see :meth:`QueryEngine.invalidate_cache`) — either
    #: explicitly named as affected, or caught by the defensive version
    #: check on lookup.
    cache_invalidations: int = 0
    #: Standalone pair queries whose canonical source was not cached.  These
    #: deliberately do NOT count into :attr:`cache_misses`: the scalar
    #: read-through never asked the cache to do vector work, so counting it
    #: as a miss would deflate :attr:`cache_hit_rate` on pair-heavy traffic
    #: without the cache ever having a chance to serve it.
    pair_probe_misses: int = 0
    #: Per query kind: queries answered from the cache / not answered from
    #: the cache.  ``misses_by_kind`` includes pair read-throughs, so the
    #: per-kind rate reads "fraction of this kind's traffic the cache
    #: absorbed" (see :func:`hit_rate_by_kind`).
    hits_by_kind: dict = field(default_factory=dict)
    misses_by_kind: dict = field(default_factory=dict)
    total_seconds: float = 0.0
    recent_queries: list[QueryRecord] = field(default_factory=list)

    @property
    def total_queries(self) -> int:
        """All queries answered, regardless of kind."""
        return (
            self.single_pair_queries
            + self.single_source_queries
            + self.top_k_queries
        )

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups that hit (0.0 when none were made)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable) for reporting."""
        return {
            "backend": self.backend,
            "total_queries": self.total_queries,
            "single_pair_queries": self.single_pair_queries,
            "single_source_queries": self.single_source_queries,
            "top_k_queries": self.top_k_queries,
            "batch_calls": self.batch_calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_admissions": self.cache_admissions,
            "cache_expirations": self.cache_expirations,
            "pair_probe_hits": self.pair_probe_hits,
            "pair_probe_misses": self.pair_probe_misses,
            "pair_admissions": self.pair_admissions,
            "cache_invalidations": self.cache_invalidations,
            "cache_hit_rate": self.cache_hit_rate,
            "hits_by_kind": {k: self.hits_by_kind[k] for k in sorted(self.hits_by_kind)},
            "misses_by_kind": {
                k: self.misses_by_kind[k] for k in sorted(self.misses_by_kind)
            },
            "hit_rate_by_kind": hit_rate_by_kind(
                self.hits_by_kind, self.misses_by_kind
            ),
            "total_seconds": self.total_seconds,
            # Computed over the bounded recent-query window (the last
            # MAX_QUERY_RECORDS queries), which is what a serving dashboard
            # wants: current tail behaviour, not lifetime averages.
            "latency_percentiles": latency_percentiles_by_kind(
                (record.kind, record.seconds) for record in self.recent_queries
            ),
            # Hit vs miss tail latency over the same window — the spread a
            # cache-sizing decision is trying to close.
            "latency_percentiles_by_outcome": latency_percentiles_by_outcome(
                (record.cache_hit, record.seconds)
                for record in self.recent_queries
            ),
            # Bounded at MAX_QUERY_RECORDS; exposes per-query latencies to
            # ``repro query --json`` and the service envelopes.
            "recent_queries": [record.as_dict() for record in self.recent_queries],
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.total_queries} queries via {self.backend or '?'} in "
            f"{self.total_seconds:.3f}s "
            f"({self.single_pair_queries} pair, "
            f"{self.single_source_queries} source, "
            f"{self.top_k_queries} top-k); "
            f"cache hit rate {100.0 * self.cache_hit_rate:.1f}% "
            f"({self.cache_hits} hits, {self.cache_misses} misses, "
            f"{self.cache_evictions} evictions, "
            f"{self.pair_probe_hits}/{self.pair_probe_misses} pair probes, "
            f"{self.pair_admissions} pair admissions)"
        )

    def _record(self, record: QueryRecord) -> None:
        self.total_seconds += record.seconds
        self.recent_queries.append(record)
        if len(self.recent_queries) > MAX_QUERY_RECORDS:
            del self.recent_queries[: -MAX_QUERY_RECORDS]


class QueryEngine:
    """Execute SimRank queries — singly or in batches — over one backend.

    Parameters
    ----------
    backend:
        A built (or buildable) :class:`SimilarityBackend`.
    cache_size:
        Maximum number of single-source score vectors kept in the LRU cache;
        ``0`` disables caching (the evaluation drivers use this so figure
        timings measure the backend, not the cache).
    cache_ttl_seconds:
        Expire cached vectors this many seconds after they were stored
        (``None`` — the default — never expires).  A TTL bounds staleness
        when an operator wants the cache re-validated under drifting
        workloads; expirations are counted separately from evictions.
    pair_admission_threshold:
        Cross-kind admission: once this many *standalone* ``single_pair``
        queries have probe-missed on the same canonical source, the next one
        computes that source's full vector, admits it to the shared cache,
        and answers from it — so a hot pair source starts serving ``top_k``
        and ``single_source`` traffic too.  ``None`` disables admission.
        Batched pair queries are excluded: ``single_pair_many`` has its own
        per-batch amortization, and ``amortize=False`` promises one backend
        call per pair.  Note the switch is observable in values within the
        backend's self-consistency: an admitted source's pairs are read from
        its vector rather than the scalar estimator (for SLING the two agree
        only within the accuracy target), deterministically as a function of
        the engine's query history.

    Examples
    --------
    >>> from repro.graphs import generators
    >>> from repro.engine import create_backend, QueryEngine
    >>> graph = generators.two_level_community(2, 8, seed=1)
    >>> engine = QueryEngine(create_backend("power", graph))
    >>> scores = engine.single_source_many([0, 1, 0])
    >>> engine.statistics.cache_hits
    1
    """

    def __init__(
        self,
        backend: SimilarityBackend,
        *,
        cache_size: int = 128,
        cache_ttl_seconds: float | None = None,
        pair_admission_threshold: int | None = PAIR_AMORTIZE_THRESHOLD,
        plan=None,
    ) -> None:
        if cache_size < 0:
            raise ParameterError(f"cache_size must be >= 0, got {cache_size}")
        if cache_ttl_seconds is not None and not cache_ttl_seconds > 0:
            raise ParameterError(
                f"cache_ttl_seconds must be > 0 or None, got {cache_ttl_seconds}"
            )
        if pair_admission_threshold is not None and pair_admission_threshold < 1:
            raise ParameterError(
                "pair_admission_threshold must be >= 1 or None, got "
                f"{pair_admission_threshold}"
            )
        if not backend.is_built:
            backend.build()
        self._backend = backend
        self._cache_size = cache_size
        self._cache_ttl = cache_ttl_seconds
        self._pair_admission_threshold = pair_admission_threshold
        #: node -> (vector, monotonic store time, index version); the
        #: timestamp only matters under a TTL, the version only after a
        #: mutation, but both are cheap enough to always carry.
        self._cache: OrderedDict[
            int, tuple[np.ndarray, float, int]
        ] = OrderedDict()
        #: Monotonic version of the index the cached vectors were computed
        #: against; bumped by :meth:`invalidate_cache` when the backend's
        #: graph mutates.  A cached entry stamped with an older version can
        #: never be served (defensive check in :meth:`_cache_get_locked`).
        self._index_version = 0
        #: Admission pressure: canonical source -> standalone pair probe
        #: misses so far (bounded; reset when the source is admitted).
        self._pair_counts: OrderedDict[int, int] = OrderedDict()
        self._stats = EngineStatistics(backend=backend.name)
        # Guards the cache and the statistics; never held across a backend
        # computation, so concurrent misses overlap.
        self._lock = threading.RLock()
        # Serialises queries against backends that mutate per-query state.
        self._backend_lock: threading.Lock | None = (
            None if backend.info.thread_safe_queries else threading.Lock()
        )
        self._tls = threading.local()
        #: The routing decision that produced this engine (set by
        #: :func:`repro.engine.planner.create_engine`); ``None`` when the
        #: backend was chosen by hand.
        self.plan = plan

    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> SimilarityBackend:
        """The backend answering this engine's queries."""
        return self._backend

    @property
    def cache_size(self) -> int:
        """Capacity of the single-source LRU cache (0 = disabled)."""
        return self._cache_size

    @property
    def cache_ttl_seconds(self) -> float | None:
        """Seconds a cached vector stays valid (``None`` = no expiry)."""
        return self._cache_ttl

    @property
    def pair_admission_threshold(self) -> int | None:
        """Standalone pair probe misses on one source before its vector is
        admitted to the cache (``None`` = cross-kind admission disabled)."""
        return self._pair_admission_threshold

    @property
    def statistics(self) -> EngineStatistics:
        """Aggregate statistics since construction (or the last reset).

        This is the live object — other threads may be updating it; use
        :meth:`statistics_snapshot` when a consistent view is needed.
        """
        return self._stats

    def statistics_snapshot(self) -> EngineStatistics:
        """A consistent copy of the statistics, safe to read and serialise
        while other threads keep querying."""
        with self._lock:
            return replace(
                self._stats,
                recent_queries=list(self._stats.recent_queries),
                hits_by_kind=dict(self._stats.hits_by_kind),
                misses_by_kind=dict(self._stats.misses_by_kind),
            )

    def describe(self) -> dict:
        """One JSON-able self-description: backend capabilities, the
        planner's routing decision, cache state, and a consistent
        statistics snapshot — what the service's ``describe`` control
        request reports per engine."""
        with self._lock:
            cached_vectors = len(self._cache)
            index_version = self._index_version
        return {
            "backend": self._backend.name,
            "index_version": index_version,
            "backend_info": self._backend.info.as_dict(),
            "plan": self.plan.as_dict() if self.plan else None,
            "cache_size": self._cache_size,
            "cache_ttl_seconds": self._cache_ttl,
            "pair_admission_threshold": self._pair_admission_threshold,
            "cached_vectors": cached_vectors,
            "statistics": self.statistics_snapshot().as_dict(),
        }

    @property
    def last_query_record(self) -> QueryRecord | None:
        """The most recent query record *of the calling thread* (or ``None``).

        Thread-local by design: under concurrent execution the aggregate
        counters interleave, so "did *my* query hit the cache" can only be
        answered per thread.
        """
        return getattr(self._tls, "last_record", None)

    def reset_statistics(self) -> None:
        """Zero every counter; the cache contents are kept."""
        with self._lock:
            self._stats = EngineStatistics(backend=self._backend.name)

    @property
    def index_version(self) -> int:
        """Monotonic version of the index this engine's cache is scoped to.

        ``0`` for a static index; bumped by :meth:`invalidate_cache` each
        time the backend's graph mutates.  Cached vectors are stamped with
        the version current when they were stored and are never served
        across a version boundary.
        """
        with self._lock:
            return self._index_version

    def clear_cache(self) -> None:
        """Drop every cached single-source vector (and admission pressure)."""
        with self._lock:
            self._cache.clear()
            self._pair_counts.clear()

    def invalidate_cache(
        self,
        affected: Iterable[int] | None = None,
        *,
        index_version: int | None = None,
    ) -> int:
        """Scope the cache to a new index version after a mutation.

        ``affected`` names the source nodes whose single-source vectors may
        have changed (the mutation's affected-source set): their cached
        vectors and admission pressure are dropped and counted as
        ``cache_invalidations``; every *surviving* entry is re-stamped with
        the new version — the mutation certified it unchanged, so it keeps
        serving.  ``affected=None`` means "everything may have changed"
        (e.g. a re-freeze that resampled correction factors): the whole
        cache is dropped and counted.

        ``index_version`` sets the new version explicitly (it must not go
        backwards); by default the version is bumped by one.  Returns the
        number of entries invalidated.
        """
        with self._lock:
            if index_version is None:
                new_version = self._index_version + 1
            else:
                new_version = int(index_version)
                if new_version < self._index_version:
                    raise ParameterError(
                        "index_version must be monotonic: "
                        f"{new_version} < {self._index_version}"
                    )
            self._index_version = new_version
            if affected is None:
                dropped = len(self._cache)
                self._cache.clear()
                self._pair_counts.clear()
                self._stats.cache_invalidations += dropped
                return dropped
            dropped = 0
            for node in {int(node) for node in affected}:
                if self._cache.pop(node, None) is not None:
                    dropped += 1
                self._pair_counts.pop(node, None)
            for node, (vector, stored_at, _) in self._cache.items():
                self._cache[node] = (vector, stored_at, new_version)
            self._stats.cache_invalidations += dropped
            return dropped

    def resize_cache(self, cache_size: int) -> None:
        """Change the LRU capacity in place, evicting oldest entries if the
        new capacity is smaller.  The service layer uses this to re-divide a
        fixed per-process cache budget as datasets are opened and closed, so
        a sharded worker that owns fewer datasets gives each one a larger
        slice of the same memory."""
        if cache_size < 0:
            raise ParameterError(f"cache_size must be >= 0, got {cache_size}")
        with self._lock:
            self._cache_size = cache_size
            while len(self._cache) > cache_size:
                self._cache.popitem(last=False)
                self._stats.cache_evictions += 1

    # ------------------------------------------------------------------ #
    # Backend access (serialised when the backend is not thread-safe)
    # ------------------------------------------------------------------ #
    def _backend_single_source(self, node: int) -> np.ndarray:
        if self._backend_lock is None:
            return np.asarray(self._backend.single_source(node), dtype=np.float64)
        with self._backend_lock:
            return np.asarray(self._backend.single_source(node), dtype=np.float64)

    def _backend_single_pair(self, node_u: int, node_v: int) -> float:
        if self._backend_lock is None:
            return float(self._backend.single_pair(node_u, node_v))
        with self._backend_lock:
            return float(self._backend.single_pair(node_u, node_v))

    # ------------------------------------------------------------------ #
    # Cache plumbing
    # ------------------------------------------------------------------ #
    def _cache_get_locked(self, node: int) -> np.ndarray | None:
        """The live cached vector for ``node`` or ``None``, enforcing the
        TTL (an expired entry is dropped and counted) and refreshing LRU
        order on a hit.  The caller must hold the lock and do its own
        hit/miss accounting — probe semantics differ by query kind."""
        entry = self._cache.get(node)
        if entry is None:
            return None
        vector, stored_at, version = entry
        if version != self._index_version:
            # Defensive: invalidate_cache re-stamps survivors, so a stale
            # stamp can only appear if a store raced a version bump — drop
            # it rather than serve a pre-mutation vector.
            del self._cache[node]
            self._stats.cache_invalidations += 1
            return None
        if (
            self._cache_ttl is not None
            and time.monotonic() - stored_at > self._cache_ttl
        ):
            del self._cache[node]
            self._stats.cache_expirations += 1
            return None
        self._cache.move_to_end(node)
        return vector

    def _cache_lookup(self, node: int) -> np.ndarray | None:
        if self._cache_size == 0:
            return None
        with self._lock:
            vector = self._cache_get_locked(node)
            if vector is not None:
                self._stats.cache_hits += 1
                return vector
            self._stats.cache_misses += 1
            return None

    def _cache_store(
        self, node: int, vector: np.ndarray, version: int | None = None
    ) -> None:
        """Admit ``vector``, stamped with ``version`` — the index version the
        caller read *before* computing it.  If a mutation bumped the version
        mid-computation the stamp is stale and the entry is dropped on its
        first lookup instead of serving a pre-mutation vector."""
        if self._cache_size == 0:
            return
        with self._lock:
            if version is None:
                version = self._index_version
            self._cache[node] = (vector, time.monotonic(), version)
            self._cache.move_to_end(node)
            self._stats.cache_admissions += 1
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
                self._stats.cache_evictions += 1

    def cached_nodes(self) -> list[int]:
        """Source nodes currently cached, oldest first."""
        with self._lock:
            return list(self._cache)

    def _source_vector(self, node: int) -> tuple[np.ndarray, bool]:
        """``(vector, cache_hit)`` for ``node``, via the cache.

        The hit flag is returned explicitly rather than inferred from counter
        deltas, which would attribute other threads' hits to this query.
        Returns the cache-owned array; callers must copy before mutating.
        """
        node = int(node)
        vector = self._cache_lookup(node)
        if vector is not None:
            return vector, True
        with self._lock:
            version = self._index_version
        vector = self._backend_single_source(node)
        self._cache_store(node, vector, version)
        return vector, False

    def _batch_source_vector(
        self, node: int, local: dict[int, np.ndarray]
    ) -> tuple[np.ndarray, bool]:
        """``(vector, cache_hit)`` for one member of a batch.

        With the cache enabled this is just :meth:`_source_vector`; with it
        disabled, duplicates within the batch are still served from the
        batch-local table (and counted as hits/misses) so per-batch
        deduplication survives ``cache_size=0``.  Shared by every ``_many``
        method so their accounting cannot drift apart.
        """
        if self._cache_size == 0:
            vector = local.get(node)
            if vector is not None:
                with self._lock:
                    self._stats.cache_hits += 1
                return vector, True
            with self._lock:
                self._stats.cache_misses += 1
            vector = self._backend_single_source(node)
            local[node] = vector
            return vector, False
        return self._source_vector(node)

    # ------------------------------------------------------------------ #
    # Single queries
    # ------------------------------------------------------------------ #
    def single_pair(self, node_u: int, node_v: int) -> float:
        """SimRank of one pair; answered from a cached source vector if present.

        The pair is canonicalised (smaller node first — SimRank is
        symmetric), and only the canonical source's cached vector may answer
        it.  This makes the result a deterministic function of the unordered
        pair and of the engine's query history — never of which endpoint
        happened to be cached first, which would let concurrent execution
        order leak into query values (score matrices are not bitwise
        symmetric, and SLING's single-source push and Algorithm 3 agree only
        within the accuracy target).  It also makes ``single_pair(u, v)``
        and ``single_pair(v, u)`` bitwise equal.

        Accounting: a probe that finds the vector counts as a cache hit
        (both ``cache_hits`` and ``pair_probe_hits``); a probe that finds
        nothing counts **only** as ``pair_probe_misses`` — the scalar
        read-through asked the backend, not the cache, for work, so it must
        not deflate ``cache_hit_rate``.  The exception is the probe miss
        that crosses ``pair_admission_threshold``: it commits the cache to
        computing and admitting the source's vector, so it is a real
        ``cache_miss`` (plus a ``pair_admission``) and the pair is answered
        from the newly admitted vector.
        """
        return self._single_pair_impl(node_u, node_v, allow_admission=True)

    def _single_pair_impl(
        self, node_u: int, node_v: int, *, allow_admission: bool
    ) -> float:
        start = time.perf_counter()
        node_u, node_v = int(node_u), int(node_v)
        if node_v < node_u:
            node_u, node_v = node_v, node_u
        score: float | None = None
        hit = False
        admit = False
        if self._cache_size > 0:
            with self._lock:
                vector = self._cache_get_locked(node_u)
                if vector is not None:
                    self._stats.cache_hits += 1
                    self._stats.pair_probe_hits += 1
                    score = float(vector[node_v])
                    hit = True
                else:
                    self._stats.pair_probe_misses += 1
                    if allow_admission and self._note_pair_probe_miss(node_u):
                        self._stats.cache_misses += 1
                        self._stats.pair_admissions += 1
                        admit = True
        if score is None:
            if admit:
                # Computed outside the lock like any other miss; the store
                # is idempotent under concurrent admission of one source.
                with self._lock:
                    version = self._index_version
                vector = self._backend_single_source(node_u)
                self._cache_store(node_u, vector, version)
                score = float(vector[node_v])
            else:
                score = self._backend_single_pair(node_u, node_v)
        self._finish("single_pair", start, cache_hit=hit)
        return score

    def _note_pair_probe_miss(self, node: int) -> bool:
        """Record one standalone probe miss against ``node``; ``True`` when
        it crossed the admission threshold (which resets the count).  The
        caller must hold the lock."""
        threshold = self._pair_admission_threshold
        if threshold is None:
            return False
        count = self._pair_counts.get(node, 0) + 1
        if count >= threshold:
            self._pair_counts.pop(node, None)
            return True
        self._pair_counts[node] = count
        self._pair_counts.move_to_end(node)
        while len(self._pair_counts) > _PAIR_COUNT_LIMIT:
            self._pair_counts.popitem(last=False)
        return False

    def single_source(self, node: int) -> np.ndarray:
        """SimRank from ``node`` to every node; the result is caller-owned."""
        start = time.perf_counter()
        vector, hit = self._source_vector(node)
        self._finish("single_source", start, cache_hit=hit)
        return vector.copy()

    def top_k(self, node: int, k: int) -> list[tuple[int, float]]:
        """The ``k`` nodes most similar to ``node``, ranked."""
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        start = time.perf_counter()
        vector, hit = self._source_vector(node)
        ranked = rank_top_k(vector.copy(), int(node), k)
        self._finish("top_k", start, cache_hit=hit)
        return ranked

    # ------------------------------------------------------------------ #
    # Batched queries
    # ------------------------------------------------------------------ #
    def single_pair_many(
        self,
        pairs: Sequence[tuple[int, int]] | Iterable[tuple[int, int]],
        *,
        amortize: bool = True,
    ) -> list[float]:
        """Answer a batch of pair queries.

        With ``amortize`` (the default), sources occurring at least
        ``PAIR_AMORTIZE_THRESHOLD`` times in the batch are materialised as one
        single-source vector and every pair sharing that source is read out
        of it — one walker/push setup instead of many.  Pass ``False`` to
        force one backend call per pair (the evaluation drivers do, so the
        figure timings stay per-query).

        Amortization is a performance mode: a hot pair is read from its
        *batch-hot* endpoint's vector in the orientation given, so its value
        can differ from :meth:`single_pair`'s canonical answer within the
        backend's self-consistency (last-ulp for the exact backends' score
        matrices, accuracy-target order for SLING).  The result is still
        deterministic for a given batch — hot sources are a pure function of
        the batch contents — but callers needing bitwise agreement with
        :meth:`single_pair` should pass ``amortize=False``.
        """
        pairs = [(int(u), int(v)) for u, v in pairs]
        with self._lock:
            self._stats.batch_calls += 1
        hot_sources: set[int] = set()
        if amortize:
            counts: dict[int, int] = {}
            for node_u, _ in pairs:
                counts[node_u] = counts.get(node_u, 0) + 1
            hot_sources = {
                node for node, count in counts.items()
                if count >= PAIR_AMORTIZE_THRESHOLD
            }
        # With the cache disabled, hot-source vectors still must be computed
        # only once per batch, or the amortization would invert into a
        # per-pair single-source recomputation.
        local: dict[int, np.ndarray] = {}
        results: list[float] = []
        for node_u, node_v in pairs:
            if node_u in hot_sources:
                start = time.perf_counter()
                vector, hit = self._batch_source_vector(node_u, local)
                results.append(float(vector[node_v]))
                self._finish("single_pair", start, cache_hit=hit)
            else:
                # Batch members never build cross-kind admission pressure:
                # the batch has its own amortization above, and
                # ``amortize=False`` promises one backend call per pair.
                results.append(
                    self._single_pair_impl(node_u, node_v, allow_admission=False)
                )
        return results

    def single_source_many(
        self, nodes: Sequence[int] | Iterable[int]
    ) -> list[np.ndarray]:
        """Answer a batch of single-source queries, one computation per
        distinct source; duplicates within the batch are served from cache
        (or, with caching disabled, from a batch-local table)."""
        nodes = [int(node) for node in nodes]
        with self._lock:
            self._stats.batch_calls += 1
        local: dict[int, np.ndarray] = {}
        results: list[np.ndarray] = []
        for node in nodes:
            start = time.perf_counter()
            vector, hit = self._batch_source_vector(node, local)
            self._finish("single_source", start, cache_hit=hit)
            results.append(vector.copy())
        return results

    def top_k_many(
        self, nodes: Sequence[int] | Iterable[int], k: int
    ) -> list[list[tuple[int, float]]]:
        """Answer a batch of top-k queries, one single-source computation per
        distinct source; duplicates within the batch are served from cache
        (or, with caching disabled, from a batch-local table)."""
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        nodes = [int(node) for node in nodes]
        with self._lock:
            self._stats.batch_calls += 1
        local: dict[int, np.ndarray] = {}
        results: list[list[tuple[int, float]]] = []
        for node in nodes:
            start = time.perf_counter()
            vector, hit = self._batch_source_vector(node, local)
            ranked = rank_top_k(vector.copy(), node, k)
            self._finish("top_k", start, cache_hit=hit)
            results.append(ranked)
        return results

    # ------------------------------------------------------------------ #
    def _finish(self, kind: str, start: float, *, cache_hit: bool) -> None:
        elapsed = time.perf_counter() - start
        record = QueryRecord(
            kind=kind,
            backend=self._backend.name,
            seconds=elapsed,
            cache_hit=cache_hit,
        )
        with self._lock:
            if kind == "single_pair":
                self._stats.single_pair_queries += 1
            elif kind == "single_source":
                self._stats.single_source_queries += 1
            else:
                self._stats.top_k_queries += 1
            tally = (
                self._stats.hits_by_kind
                if cache_hit
                else self._stats.misses_by_kind
            )
            tally[kind] = tally.get(kind, 0) + 1
            self._stats._record(record)
        self._tls.last_record = record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryEngine(backend={self._backend.name!r}, "
            f"cache={len(self._cache)}/{self._cache_size}, "
            f"queries={self._stats.total_queries})"
        )
