"""Index persistence and out-of-core construction (Section 5.4).

The paper notes that SLING does not need the whole index in main memory:

* only the ``n`` correction factors must stay resident; the per-node hitting
  sets ``H(v)`` can live on disk and be fetched with O(1) I/O per query,
* during construction the per-target residual sets ``R_k`` can be streamed to
  disk and an external sort by source node then produces the per-source sets.

This module implements both sides:

* :func:`save_index` / :func:`load_index` — a packed on-disk format
  (numpy arrays + JSON metadata) for a built :class:`SlingIndex`,
* :class:`DiskBackedIndex` — answers single-pair and single-source queries by
  reading only the two (resp. one) required hitting sets from disk,
* :func:`out_of_core_build` — Algorithm 2 with a bounded in-memory buffer:
  records are spilled to sorted run files and merged, mimicking the Figure-10
  experiment where the memory buffer is varied from 256 MB down.
"""

from __future__ import annotations

import heapq
import json
import struct
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import ParameterError, StorageError
from ..graphs import DiGraph
from .correction import estimate_all_correction_factors
from .hitting import HittingProbabilitySet, reverse_push
from .index import SlingIndex
from .parameters import SlingParameters
from .single_source import single_source_local_push
from .walks import SqrtCWalker

__all__ = [
    "save_index",
    "load_index",
    "DiskBackedIndex",
    "out_of_core_build",
    "OutOfCoreBuildReport",
]

_META_FILE = "sling_meta.json"
_DATA_FILE = "sling_data.npz"
#: On-disk size of one hitting-probability record: source, level, target, value.
_RECORD_STRUCT = struct.Struct("<iiif")
RECORD_BYTES = _RECORD_STRUCT.size


# --------------------------------------------------------------------------- #
# Flat packed representation of all hitting sets
# --------------------------------------------------------------------------- #
def _pack_hitting_sets(
    hitting_sets: list[HittingProbabilitySet],
) -> dict[str, np.ndarray]:
    """Flatten per-node hitting sets into CSR-style arrays sorted by node."""
    counts = np.array([len(hs) for hs in hitting_sets], dtype=np.int64)
    offsets = np.zeros(len(hitting_sets) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    levels = np.empty(total, dtype=np.int32)
    targets = np.empty(total, dtype=np.int32)
    values = np.empty(total, dtype=np.float64)
    cursor = 0
    for hitting_set in hitting_sets:
        for level, target, value in hitting_set.items():
            levels[cursor] = level
            targets[cursor] = target
            values[cursor] = value
            cursor += 1
    return {
        "offsets": offsets,
        "levels": levels,
        "targets": targets,
        "values": values,
    }


def _unpack_hitting_set(
    packed: dict[str, np.ndarray], node: int
) -> HittingProbabilitySet:
    start = int(packed["offsets"][node])
    stop = int(packed["offsets"][node + 1])
    hitting_set = HittingProbabilitySet()
    levels = packed["levels"][start:stop]
    targets = packed["targets"][start:stop]
    values = packed["values"][start:stop]
    for level, target, value in zip(levels, targets, values):
        hitting_set.set(int(level), int(target), float(value))
    return hitting_set


# --------------------------------------------------------------------------- #
# Save / load
# --------------------------------------------------------------------------- #
def save_index(index: SlingIndex, directory: str | Path) -> Path:
    """Serialize a built index to ``directory`` (created if missing)."""
    if not index.is_built:
        raise StorageError("cannot save an index that has not been built")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    packed = _pack_hitting_sets(index.hitting_sets)
    reduced = index._reduced if index._reduced is not None else np.zeros(0, dtype=bool)
    np.savez_compressed(
        directory / _DATA_FILE,
        corrections=index.correction_factors,
        reduced=reduced,
        **packed,
    )
    params = index.parameters
    meta = {
        "format_version": 1,
        "num_nodes": index.graph.num_nodes,
        "num_edges": index.graph.num_edges,
        "c": params.c,
        "epsilon": params.epsilon,
        "delta": params.delta,
        "epsilon_d": params.epsilon_d,
        "theta": params.theta,
        "delta_d": params.delta_d,
        "reduce_space": index._reduced is not None,
        "enhance_accuracy": index._enhancer is not None,
    }
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2), encoding="utf-8")
    return directory


def _read_meta(directory: Path) -> dict:
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise StorageError(f"no SLING index metadata found at {meta_path}")
    try:
        return json.loads(meta_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt index metadata at {meta_path}: {exc}") from exc


def load_index(directory: str | Path, graph: DiGraph) -> SlingIndex:
    """Load a previously saved index and attach it to ``graph``.

    The graph must be the one the index was built on (node and edge counts are
    verified); loading against a different graph raises :class:`StorageError`.
    """
    directory = Path(directory)
    meta = _read_meta(directory)
    if meta["num_nodes"] != graph.num_nodes or meta["num_edges"] != graph.num_edges:
        raise StorageError(
            "graph mismatch: the index was built on a graph with "
            f"n={meta['num_nodes']}, m={meta['num_edges']} but the supplied graph "
            f"has n={graph.num_nodes}, m={graph.num_edges}"
        )
    data = np.load(directory / _DATA_FILE)
    params = SlingParameters(
        c=meta["c"],
        epsilon=meta["epsilon"],
        delta=meta["delta"],
        epsilon_d=meta["epsilon_d"],
        theta=meta["theta"],
        delta_d=meta["delta_d"],
    )
    index = SlingIndex(
        graph,
        parameters=params,
        reduce_space=meta["reduce_space"],
        enhance_accuracy=meta["enhance_accuracy"],
    )
    packed = {key: data[key] for key in ("offsets", "levels", "targets", "values")}
    hitting_sets = [
        _unpack_hitting_set(packed, node) for node in range(graph.num_nodes)
    ]
    index._corrections = data["corrections"]
    index._hitting_sets = hitting_sets
    if meta["reduce_space"]:
        from .optimizations import SpaceReduction

        index._space_reduction = SpaceReduction(theta=params.theta)
        index._reduced = data["reduced"].astype(bool)
    if meta["enhance_accuracy"]:
        from .optimizations import AccuracyEnhancer

        enhancer = AccuracyEnhancer(graph, params.epsilon, params.sqrt_c)
        enhancer.mark_all(hitting_sets)
        index._enhancer = enhancer
    return index


# --------------------------------------------------------------------------- #
# Disk-backed query processing
# --------------------------------------------------------------------------- #
class DiskBackedIndex:
    """Answer SimRank queries while keeping hitting sets on disk.

    Only the correction factors (8 bytes per node) are held in memory; every
    single-pair query reads exactly two hitting sets from the memory-mapped
    data file, matching the constant-I/O argument of Section 5.4.
    """

    def __init__(self, directory: str | Path, graph: DiGraph) -> None:
        directory = Path(directory)
        meta = _read_meta(directory)
        if meta["num_nodes"] != graph.num_nodes:
            raise StorageError(
                "graph mismatch between the stored index and the supplied graph"
            )
        self._graph = graph
        self._params = SlingParameters(
            c=meta["c"],
            epsilon=meta["epsilon"],
            delta=meta["delta"],
            epsilon_d=meta["epsilon_d"],
            theta=meta["theta"],
            delta_d=meta["delta_d"],
        )
        data = np.load(directory / _DATA_FILE)
        self._corrections = data["corrections"]
        self._offsets = data["offsets"]
        self._levels = data["levels"]
        self._targets = data["targets"]
        self._values = data["values"]
        self._reads = 0
        # The packed arrays are read-only at query time, so concurrent queries
        # are safe; only this I/O counter is mutable and needs the lock.
        self._reads_lock = threading.Lock()

    @property
    def parameters(self) -> SlingParameters:
        """The parameter set the stored index was built with."""
        return self._params

    @property
    def num_set_reads(self) -> int:
        """Number of hitting sets materialised so far (I/O accounting)."""
        return self._reads

    def _load_set(self, node: int) -> HittingProbabilitySet:
        self._graph.in_degree(node)  # validates the node id
        with self._reads_lock:
            self._reads += 1
        packed = {
            "offsets": self._offsets,
            "levels": self._levels,
            "targets": self._targets,
            "values": self._values,
        }
        return _unpack_hitting_set(packed, int(node))

    def single_pair(self, node_u: int, node_v: int) -> float:
        """Algorithm 3 over disk-resident hitting sets."""
        set_u = self._load_set(node_u)
        set_v = self._load_set(node_v)
        score = 0.0
        for level, entries_u in set_u.levels.items():
            entries_v = set_v.levels.get(level)
            if not entries_v:
                continue
            if len(entries_v) < len(entries_u):
                entries_u, entries_v = entries_v, entries_u
            for target, value_u in entries_u.items():
                value_v = entries_v.get(target)
                if value_v is not None:
                    score += value_u * self._corrections[target] * value_v
        return min(1.0, score)

    def single_source(self, node: int) -> np.ndarray:
        """Algorithm 6 over a disk-resident hitting set for the query node."""
        return single_source_local_push(
            self._graph,
            self._load_set(node),
            self._corrections,
            self._params.sqrt_c,
            self._params.theta,
        )


# --------------------------------------------------------------------------- #
# Out-of-core construction
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class OutOfCoreBuildReport:
    """Outcome of an out-of-core build (the Figure-10 measurement unit)."""

    directory: Path
    buffer_bytes: int
    num_records: int
    num_spill_runs: int
    elapsed_seconds: float
    correction_seconds: float
    push_seconds: float
    merge_seconds: float


def _spill_run(records: list[tuple[int, int, int, float]], run_path: Path) -> None:
    """Sort a buffer by source node and write it as a binary run file."""
    records.sort(key=lambda record: record[0])
    with open(run_path, "wb") as handle:
        for record in records:
            handle.write(_RECORD_STRUCT.pack(*record))


def _iter_run(run_path: Path):
    with open(run_path, "rb") as handle:
        while True:
            chunk = handle.read(RECORD_BYTES)
            if not chunk:
                break
            yield _RECORD_STRUCT.unpack(chunk)


def out_of_core_build(
    graph: DiGraph,
    params: SlingParameters,
    work_directory: str | Path,
    *,
    buffer_bytes: int = 256 * 1024 * 1024,
    seed: int | None = None,
) -> OutOfCoreBuildReport:
    """Build a SLING index with a bounded in-memory record buffer.

    The correction factors are computed in memory (they need only
    ``8n`` bytes); the hitting-probability records produced by the reverse
    pushes are buffered, spilled to sorted run files whenever the buffer
    exceeds ``buffer_bytes``, and finally merged with a k-way external merge
    into the packed index format of :func:`save_index`.

    Returns an :class:`OutOfCoreBuildReport`; the finished index can then be
    queried via :class:`DiskBackedIndex` or loaded with :func:`load_index`.
    """
    if buffer_bytes < RECORD_BYTES:
        raise ParameterError(
            f"buffer_bytes must be at least {RECORD_BYTES}, got {buffer_bytes}"
        )
    work_directory = Path(work_directory)
    work_directory.mkdir(parents=True, exist_ok=True)
    runs_directory = work_directory / "runs"
    runs_directory.mkdir(exist_ok=True)

    start_total = time.perf_counter()

    start = time.perf_counter()
    walker = SqrtCWalker(graph, params.c, seed=seed)
    corrections = estimate_all_correction_factors(
        walker, params.epsilon_d, params.delta_d, adaptive=True
    )
    correction_seconds = time.perf_counter() - start

    max_buffer_records = max(1, buffer_bytes // RECORD_BYTES)
    buffer: list[tuple[int, int, int, float]] = []
    run_paths: list[Path] = []
    num_records = 0

    start = time.perf_counter()
    for target in graph.nodes():
        per_level = reverse_push(graph, target, params.sqrt_c, params.theta)
        for level, entries in per_level.items():
            for source, value in entries.items():
                buffer.append((source, level, target, float(value)))
                num_records += 1
                if len(buffer) >= max_buffer_records:
                    run_path = runs_directory / f"run_{len(run_paths):06d}.bin"
                    _spill_run(buffer, run_path)
                    run_paths.append(run_path)
                    buffer = []
    if buffer:
        run_path = runs_directory / f"run_{len(run_paths):06d}.bin"
        _spill_run(buffer, run_path)
        run_paths.append(run_path)
        buffer = []
    push_seconds = time.perf_counter() - start

    start = time.perf_counter()
    merged = heapq.merge(
        *[_iter_run(path) for path in run_paths], key=lambda record: record[0]
    )
    hitting_sets = [HittingProbabilitySet() for _ in range(graph.num_nodes)]
    for source, level, target, value in merged:
        hitting_sets[source].set(level, target, value)
    merge_seconds = time.perf_counter() - start

    index = SlingIndex(graph, parameters=params, seed=seed)
    index._corrections = corrections
    index._hitting_sets = hitting_sets
    save_index(index, work_directory / "index")

    for path in run_paths:
        path.unlink(missing_ok=True)

    return OutOfCoreBuildReport(
        directory=work_directory / "index",
        buffer_bytes=buffer_bytes,
        num_records=num_records,
        num_spill_runs=len(run_paths),
        elapsed_seconds=time.perf_counter() - start_total,
        correction_seconds=correction_seconds,
        push_seconds=push_seconds,
        merge_seconds=merge_seconds,
    )
