"""Index persistence and out-of-core construction (Section 5.4).

The paper notes that SLING does not need the whole index in main memory:

* only the ``n`` correction factors must stay resident; the per-node hitting
  sets ``H(v)`` can live on disk and be fetched with O(1) I/O per query,
* during construction the per-target residual sets ``R_k`` can be streamed to
  disk and an external sort by source node then produces the per-source sets.

This module implements both sides on top of the packed columnar store of
:mod:`repro.sling.packed`:

* :func:`save_index` / :func:`load_index` — the store's flat arrays are
  written as individual ``.npy`` files (format version 2) and loaded back
  with ``np.load(..., mmap_mode="r")``: **no dict round-trip**, so loading is
  O(1)-ish in index size and queries fault in only the pages they slice,
* :class:`DiskBackedIndex` — answers single-pair and single-source queries by
  slicing the memory-mapped columns directly (two slices per pair query),
* :func:`out_of_core_build` — Algorithm 2 with a bounded in-memory buffer:
  records are spilled to sorted run files and merged straight into the packed
  store, mimicking the Figure-10 experiment where the memory buffer is varied
  from 256 MB down.

Version-1 directories (one compressed ``sling_data.npz``) are still readable;
their columns are re-sorted into the packed key order at load time.
"""

from __future__ import annotations

import heapq
import json
import struct
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import ParameterError, StorageError
from ..graphs import DiGraph
from .correction import estimate_all_correction_factors
from .hitting import HittingProbabilitySet, reverse_push
from .index import SlingIndex
from ..ranking import rank_top_k
from .packed import PackedHittingStore, intersect_views
from .parameters import SlingParameters
from .single_source import (
    BoundedTopK,
    bounded_top_k,
    single_source_cascade,
    single_source_local_push,
)
from .walks import SqrtCWalker

__all__ = [
    "save_index",
    "load_index",
    "has_saved_index",
    "DiskBackedIndex",
    "out_of_core_build",
    "OutOfCoreBuildReport",
]

_META_FILE = "sling_meta.json"
#: Version-1 archive (kept readable for old index directories).
_LEGACY_DATA_FILE = "sling_data.npz"
_CORRECTIONS_FILE = "sling_corrections.npy"
_REDUCED_FILE = "sling_reduced.npy"
#: Current on-disk format: per-column ``.npy`` files, memory-mappable.
FORMAT_VERSION = 2
#: On-disk size of one hitting-probability record: source, level, target, value.
_RECORD_STRUCT = struct.Struct("<iiif")
RECORD_BYTES = _RECORD_STRUCT.size


# --------------------------------------------------------------------------- #
# Save / load
# --------------------------------------------------------------------------- #
def save_index(index: SlingIndex, directory: str | Path) -> Path:
    """Serialize a built index to ``directory`` (created if missing).

    The packed store's columns are written directly as uncompressed ``.npy``
    files — the on-disk layout *is* the query-time layout, which is what
    makes the zero-copy ``mmap`` load possible.
    """
    if not index.is_built:
        raise StorageError("cannot save an index that has not been built")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    index.packed_store.save(directory)
    np.save(directory / _CORRECTIONS_FILE, index.correction_factors)
    reduced = (
        index._reduced
        if index._reduced is not None
        else np.zeros(index.graph.num_nodes, dtype=bool)
    )
    np.save(directory / _REDUCED_FILE, reduced)
    params = index.parameters
    meta = {
        "format_version": FORMAT_VERSION,
        "num_nodes": index.graph.num_nodes,
        "num_edges": index.graph.num_edges,
        "c": params.c,
        "epsilon": params.epsilon,
        "delta": params.delta,
        "epsilon_d": params.epsilon_d,
        "theta": params.theta,
        "delta_d": params.delta_d,
        "reduce_space": index._reduced is not None,
        "enhance_accuracy": index._enhancer is not None,
    }
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2), encoding="utf-8")
    return directory


def has_saved_index(directory: str | Path) -> bool:
    """Whether ``directory`` holds a saved index (its metadata file exists).

    The cheap existence probe used to decide between attaching to a prebuilt
    index (``BackendConfig.reuse_saved_index``, the worker-pool path) and
    building one; actual loading still validates the graph shape.
    """
    return (Path(directory) / _META_FILE).exists()


def _read_meta(directory: Path) -> dict:
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise StorageError(f"no SLING index metadata found at {meta_path}")
    try:
        return json.loads(meta_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt index metadata at {meta_path}: {exc}") from exc


def _params_from_meta(meta: dict) -> SlingParameters:
    return SlingParameters(
        c=meta["c"],
        epsilon=meta["epsilon"],
        delta=meta["delta"],
        epsilon_d=meta["epsilon_d"],
        theta=meta["theta"],
        delta_d=meta["delta_d"],
    )


def _load_arrays(
    directory: Path, meta: dict, *, mmap_mode: str | None
) -> tuple[np.ndarray, PackedHittingStore, np.ndarray]:
    """Read ``(corrections, store, reduced)`` for either format version."""
    version = int(meta.get("format_version", 1))
    if version >= 2:
        corrections_path = directory / _CORRECTIONS_FILE
        if not corrections_path.exists():
            raise StorageError(f"missing correction factors at {corrections_path}")
        corrections = np.load(corrections_path)
        store = PackedHittingStore.load(directory, mmap_mode=mmap_mode)
        reduced = np.load(directory / _REDUCED_FILE)
        return corrections, store, np.asarray(reduced, dtype=bool)
    # Version 1: one compressed npz with node-grouped but key-unsorted columns.
    data_path = directory / _LEGACY_DATA_FILE
    if not data_path.exists():
        raise StorageError(f"missing packed index data at {data_path}")
    data = np.load(data_path)
    store = PackedHittingStore.from_columns(
        data["offsets"], data["levels"], data["targets"], data["values"]
    )
    reduced = data["reduced"]
    if reduced.shape[0] == 0:
        reduced = np.zeros(store.num_nodes, dtype=bool)
    return data["corrections"], store, np.asarray(reduced, dtype=bool)


def load_index(
    directory: str | Path, graph: DiGraph, *, mmap_mode: str | None = "r"
) -> SlingIndex:
    """Load a previously saved index and attach it to ``graph``.

    With the default ``mmap_mode="r"`` the packed columns are memory-mapped,
    not read: the load touches only file headers plus the ``8n`` bytes of
    correction factors, and subsequent queries slice pages in on demand.
    Pass ``mmap_mode=None`` to read everything eagerly into RAM.

    The graph must be the one the index was built on (node and edge counts are
    verified); loading against a different graph raises :class:`StorageError`.
    """
    directory = Path(directory)
    meta = _read_meta(directory)
    if meta["num_nodes"] != graph.num_nodes or meta["num_edges"] != graph.num_edges:
        raise StorageError(
            "graph mismatch: the index was built on a graph with "
            f"n={meta['num_nodes']}, m={meta['num_edges']} but the supplied graph "
            f"has n={graph.num_nodes}, m={graph.num_edges}"
        )
    corrections, store, reduced = _load_arrays(directory, meta, mmap_mode=mmap_mode)
    index = SlingIndex(
        graph,
        parameters=_params_from_meta(meta),
        reduce_space=meta["reduce_space"],
        enhance_accuracy=meta["enhance_accuracy"],
    )
    index._corrections = corrections
    index._store = store
    if meta["reduce_space"]:
        from .optimizations import SpaceReduction

        index._space_reduction = SpaceReduction(theta=index.parameters.theta)
        index._reduced = reduced
    if meta["enhance_accuracy"]:
        from .optimizations import AccuracyEnhancer

        enhancer = AccuracyEnhancer(
            graph, index.parameters.epsilon, index.parameters.sqrt_c
        )
        # Marks are selected from the store in canonical key order, exactly
        # as SlingIndex.build does — a loaded index answers queries
        # bitwise-identically to the index that was saved.
        enhancer.mark_all_packed(store)
        index._enhancer = enhancer
    return index


# --------------------------------------------------------------------------- #
# Disk-backed query processing
# --------------------------------------------------------------------------- #
class DiskBackedIndex:
    """Answer SimRank queries while keeping hitting sets on disk.

    Only the correction factors (8 bytes per node) are held in memory; the
    packed columns stay memory-mapped, and every single-pair query slices
    exactly two per-node segments out of them — the constant-I/O argument of
    Section 5.4, now with zero per-query deserialisation.
    """

    def __init__(self, directory: str | Path, graph: DiGraph) -> None:
        directory = Path(directory)
        meta = _read_meta(directory)
        if meta["num_nodes"] != graph.num_nodes:
            raise StorageError(
                "graph mismatch between the stored index and the supplied graph"
            )
        self._graph = graph
        self._params = _params_from_meta(meta)
        self._corrections, self._store, _ = _load_arrays(
            directory, meta, mmap_mode="r"
        )
        self._reads = 0
        # The packed arrays are read-only at query time, so concurrent queries
        # are safe; only this I/O counter is mutable and needs the lock.
        self._reads_lock = threading.Lock()
        self._correction_max: float | None = None

    @property
    def parameters(self) -> SlingParameters:
        """The parameter set the stored index was built with."""
        return self._params

    @property
    def store(self) -> PackedHittingStore:
        """The memory-mapped packed store backing all queries."""
        return self._store

    @property
    def num_set_reads(self) -> int:
        """Number of hitting sets fetched so far (I/O accounting)."""
        return self._reads

    def _load_view(self, node: int):
        self._graph.in_degree(node)  # validates the node id
        with self._reads_lock:
            self._reads += 1
        return self._store.node_view(int(node))

    def _load_set(self, node: int) -> HittingProbabilitySet:
        """Materialise one node's set as a dict (compatibility helper)."""
        self._graph.in_degree(node)  # validates the node id
        with self._reads_lock:
            self._reads += 1
        return self._store.hitting_set(int(node))

    def single_pair(self, node_u: int, node_v: int) -> float:
        """Algorithm 3 over two mmap-backed column slices."""
        view_u = self._load_view(node_u)
        view_v = self._load_view(node_v)
        return intersect_views(view_u, view_v, self._corrections)

    def single_source(self, node: int, *, method: str = "local_push") -> np.ndarray:
        """Algorithm 6 over a mmap-backed column slice for the query node.

        ``method="cascade"`` runs the level-cascade kernel instead of the
        per-level local push; the two agree within the index's ε budget.
        """
        view = self._load_view(node)
        if method == "cascade":
            return single_source_cascade(
                self._graph,
                view,
                self._corrections,
                self._params.sqrt_c,
                self._params.theta,
            )
        if method != "local_push":
            raise ParameterError(
                f"unknown single-source method {method!r}; "
                "expected 'local_push' or 'cascade'"
            )
        return single_source_local_push(
            self._graph,
            view,
            self._corrections,
            self._params.sqrt_c,
            self._params.theta,
        )

    def top_k(
        self, node: int, k: int, *, method: str = "local_push",
        budget: float | None = None,
    ) -> list[tuple[int, float]]:
        """The ``k`` nodes most similar to ``node`` (excluding itself).

        Mirrors :meth:`SlingIndex.top_k`: any :meth:`single_source` method
        plus ``"bounded"`` for the pruned cascade of :meth:`top_k_bounded`.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if method == "bounded":
            return self.top_k_bounded(node, k, budget=budget).ranked
        return rank_top_k(self.single_source(node, method=method), int(node), k)

    def top_k_bounded(
        self, node: int, k: int, *, budget: float | None = None
    ) -> BoundedTopK:
        """Pruned top-k over the mmap-backed store (see ``SlingIndex``).

        The per-level residual-mass bounds come from the store's
        :meth:`~repro.sling.packed.PackedHittingStore.level_stats` metadata;
        computing it faults every column in once, after which bounded queries
        touch only the levels the truncated cascade actually replays.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if budget is None:
            budget = self._params.epsilon / 4.0
        if self._correction_max is None:
            self._correction_max = (
                float(self._corrections.max()) if self._corrections.size else 0.0
            )
        sqrt_c = self._params.sqrt_c
        stat_levels, _, stat_maxima = self._store.node_level_stats(int(node))
        level_bounds = {
            int(level): (sqrt_c ** int(level)) * float(maximum) * self._correction_max
            for level, maximum in zip(stat_levels, stat_maxima)
        }
        return bounded_top_k(
            self._graph,
            self._load_view(node),
            self._corrections,
            sqrt_c,
            self._params.theta,
            int(node),
            k,
            budget=budget,
            level_bounds=level_bounds,
        )


# --------------------------------------------------------------------------- #
# Out-of-core construction
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class OutOfCoreBuildReport:
    """Outcome of an out-of-core build (the Figure-10 measurement unit)."""

    directory: Path
    buffer_bytes: int
    num_records: int
    num_spill_runs: int
    elapsed_seconds: float
    correction_seconds: float
    push_seconds: float
    merge_seconds: float


def _spill_run(records: list[tuple[int, int, int, float]], run_path: Path) -> None:
    """Sort a buffer by source node and write it as a binary run file."""
    records.sort(key=lambda record: record[0])
    with open(run_path, "wb") as handle:
        for record in records:
            handle.write(_RECORD_STRUCT.pack(*record))


def _iter_run(run_path: Path):
    with open(run_path, "rb") as handle:
        while True:
            chunk = handle.read(RECORD_BYTES)
            if not chunk:
                break
            yield _RECORD_STRUCT.unpack(chunk)


def out_of_core_build(
    graph: DiGraph,
    params: SlingParameters,
    work_directory: str | Path,
    *,
    buffer_bytes: int = 256 * 1024 * 1024,
    seed: int | None = None,
) -> OutOfCoreBuildReport:
    """Build a SLING index with a bounded in-memory record buffer.

    The correction factors are computed in memory (they need only
    ``8n`` bytes); the hitting-probability records produced by the reverse
    pushes are buffered, spilled to sorted run files whenever the buffer
    exceeds ``buffer_bytes``, and finally merged with a k-way external merge
    **directly into the packed columnar store** of :func:`save_index` — the
    merged stream never materialises per-node dicts.

    Returns an :class:`OutOfCoreBuildReport`; the finished index can then be
    queried via :class:`DiskBackedIndex` or loaded with :func:`load_index`.
    """
    if buffer_bytes < RECORD_BYTES:
        raise ParameterError(
            f"buffer_bytes must be at least {RECORD_BYTES}, got {buffer_bytes}"
        )
    work_directory = Path(work_directory)
    work_directory.mkdir(parents=True, exist_ok=True)
    runs_directory = work_directory / "runs"
    runs_directory.mkdir(exist_ok=True)

    start_total = time.perf_counter()

    start = time.perf_counter()
    walker = SqrtCWalker(graph, params.c, seed=seed)
    corrections = estimate_all_correction_factors(
        walker, params.epsilon_d, params.delta_d, adaptive=True
    )
    correction_seconds = time.perf_counter() - start

    max_buffer_records = max(1, buffer_bytes // RECORD_BYTES)
    buffer: list[tuple[int, int, int, float]] = []
    run_paths: list[Path] = []
    num_records = 0

    start = time.perf_counter()
    scratch = np.zeros(graph.num_nodes, dtype=np.float64)
    for target in graph.nodes():
        per_level = reverse_push(
            graph, target, params.sqrt_c, params.theta, scratch=scratch
        )
        for level, entries in per_level.items():
            for source, value in entries.items():
                buffer.append((source, level, target, float(value)))
                num_records += 1
                if len(buffer) >= max_buffer_records:
                    run_path = runs_directory / f"run_{len(run_paths):06d}.bin"
                    _spill_run(buffer, run_path)
                    run_paths.append(run_path)
                    buffer = []
    if buffer:
        run_path = runs_directory / f"run_{len(run_paths):06d}.bin"
        _spill_run(buffer, run_path)
        run_paths.append(run_path)
        buffer = []
    push_seconds = time.perf_counter() - start

    start = time.perf_counter()
    merged = heapq.merge(
        *[_iter_run(path) for path in run_paths], key=lambda record: record[0]
    )
    sources = np.empty(num_records, dtype=np.int64)
    levels = np.empty(num_records, dtype=np.int32)
    targets = np.empty(num_records, dtype=np.int32)
    values = np.empty(num_records, dtype=np.float64)
    for cursor, (source, level, target, value) in enumerate(merged):
        sources[cursor] = source
        levels[cursor] = level
        targets[cursor] = target
        values[cursor] = value
    store = PackedHittingStore.from_records(
        graph.num_nodes, sources, levels, targets, values
    )
    merge_seconds = time.perf_counter() - start

    index = SlingIndex(graph, parameters=params, seed=seed)
    index._corrections = corrections
    index._store = store
    save_index(index, work_directory / "index")

    for path in run_paths:
        path.unlink(missing_ok=True)

    return OutOfCoreBuildReport(
        directory=work_directory / "index",
        buffer_bytes=buffer_bytes,
        num_records=num_records,
        num_spill_runs=len(run_paths),
        elapsed_seconds=time.perf_counter() - start_total,
        correction_seconds=correction_seconds,
        push_seconds=push_seconds,
        merge_seconds=merge_seconds,
    )
