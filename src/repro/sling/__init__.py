"""SLING: the paper's primary contribution — a near-optimal SimRank index."""

from .walks import SqrtCWalker, walks_meet
from .sampling import (
    BernoulliEstimate,
    estimate_bernoulli_mean_adaptive,
    estimate_bernoulli_mean_fixed,
)
from .correction import (
    CorrectionEstimate,
    estimate_all_correction_factors,
    estimate_correction_factor,
    exact_correction_factors,
)
from .hitting import (
    HittingProbabilitySet,
    build_hitting_sets,
    concatenated_ranges,
    exact_near_hops,
    neighborhood_weight,
    push_frontier,
    reverse_push,
)
from .packed import (
    PackedHittingStore,
    QueryView,
    intersect_views,
    pack_keys,
    view_from_hitting_set,
)
from .single_source import (
    BoundedTopK,
    bounded_top_k,
    single_source_cascade,
    single_source_local_push,
)
from .parameters import SlingParameters, theorem1_error_bound
from .optimizations import AccuracyEnhancer, SpaceReduction
from .index import BuildStatistics, SlingIndex
from .dynamic import DynamicSlingIndex, MutationReport
from .storage import (
    DiskBackedIndex,
    OutOfCoreBuildReport,
    has_saved_index,
    load_index,
    out_of_core_build,
    save_index,
)
from .parallel import (
    build_with_thread_count,
    even_chunks,
    parallel_build,
    resolve_worker_count,
)

__all__ = [
    "SqrtCWalker",
    "walks_meet",
    "BernoulliEstimate",
    "estimate_bernoulli_mean_adaptive",
    "estimate_bernoulli_mean_fixed",
    "CorrectionEstimate",
    "estimate_all_correction_factors",
    "estimate_correction_factor",
    "exact_correction_factors",
    "HittingProbabilitySet",
    "build_hitting_sets",
    "concatenated_ranges",
    "exact_near_hops",
    "neighborhood_weight",
    "push_frontier",
    "reverse_push",
    "PackedHittingStore",
    "QueryView",
    "intersect_views",
    "pack_keys",
    "view_from_hitting_set",
    "BoundedTopK",
    "bounded_top_k",
    "single_source_cascade",
    "single_source_local_push",
    "SlingParameters",
    "theorem1_error_bound",
    "AccuracyEnhancer",
    "SpaceReduction",
    "BuildStatistics",
    "SlingIndex",
    "DynamicSlingIndex",
    "MutationReport",
    "DiskBackedIndex",
    "OutOfCoreBuildReport",
    "has_saved_index",
    "load_index",
    "out_of_core_build",
    "save_index",
    "build_with_thread_count",
    "parallel_build",
    "even_chunks",
    "resolve_worker_count",
]
