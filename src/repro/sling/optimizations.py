"""Practical optimizations of the SLING index (Sections 5.2 and 5.3).

Two of the paper's optimizations change *what the index stores* and *what a
query reads*, and therefore live next to the index rather than inside the
construction algorithms:

* **Space reduction** (Section 5.2): step-1 and step-2 hitting probabilities
  can be recomputed exactly at query time with a two-hop traversal
  (Algorithm 5).  For nodes whose two-hop in-neighbourhood is small —
  ``η(v_i) ≤ γ / θ`` with ``γ = 10`` — the stored entries at those steps are
  dropped, which empirically removes a large fraction of the index without
  affecting the ``O(1/ε)`` query bound or the accuracy guarantee (the
  recomputed values are exact).

* **Accuracy enhancement** (Section 5.3): for each node a handful of stored
  hitting probabilities are *marked*; at query time each marked entry is
  expanded one extra step, generating hitting probabilities that the θ-pruning
  had discarded.  The generated values never exceed the true ones, so accuracy
  can only improve, and the expansion budget of ``1/√ε`` marks keeps the query
  time at ``O(1/ε)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..graphs import DiGraph
from .hitting import HittingProbabilitySet, exact_near_hops, neighborhood_weight

__all__ = ["SpaceReduction", "AccuracyEnhancer", "DEFAULT_GAMMA"]

#: The constant γ of Section 5.2: step-1/2 entries are dropped whenever the
#: two-hop neighbourhood weight η(v) does not exceed γ / θ.
DEFAULT_GAMMA: float = 10.0

_REDUCIBLE_LEVELS: tuple[int, ...] = (1, 2)


@dataclass(frozen=True)
class SpaceReduction:
    """Space-reduction policy (Section 5.2).

    Attributes
    ----------
    theta:
        The hitting-probability threshold of the index being reduced.
    gamma:
        The budget constant; the on-the-fly recomputation of a reduced node
        costs ``O(η(v)) ≤ O(γ/θ) = O(1/ε)`` time.
    """

    theta: float
    gamma: float = DEFAULT_GAMMA

    def __post_init__(self) -> None:
        if self.theta <= 0:
            raise ParameterError(f"theta must be positive, got {self.theta}")
        if self.gamma <= 0:
            raise ParameterError(f"gamma must be positive, got {self.gamma}")

    @property
    def weight_budget(self) -> float:
        """Maximum two-hop neighbourhood weight ``γ / θ`` eligible for reduction."""
        return self.gamma / self.theta

    def is_reducible(self, graph: DiGraph, node: int) -> bool:
        """Whether ``node``'s step-1/2 entries may be dropped."""
        return neighborhood_weight(graph, node) <= self.weight_budget

    def apply(
        self, graph: DiGraph, hitting_sets: list[HittingProbabilitySet]
    ) -> np.ndarray:
        """Drop step-1/2 entries in place for every reducible node.

        Returns a boolean array marking which nodes were reduced; the index
        keeps it so queries know when to call :func:`exact_near_hops`.
        """
        reduced = np.zeros(graph.num_nodes, dtype=bool)
        for node in graph.nodes():
            if self.is_reducible(graph, node):
                hitting_sets[node].drop_levels(_REDUCIBLE_LEVELS)
                reduced[node] = True
        return reduced

    def reconstruct(
        self,
        graph: DiGraph,
        node: int,
        stored: HittingProbabilitySet,
        sqrt_c: float,
    ) -> HittingProbabilitySet:
        """Rebuild the full hitting set of a reduced node for one query.

        The stored levels are combined with the *exact* step-0/1/2 values of
        Algorithm 5; exact values take precedence over any stored
        approximation at the same position.
        """
        exact = exact_near_hops(graph, node, sqrt_c)
        rebuilt = stored.copy()
        for level, entries in exact.items():
            for target, value in entries.items():
                rebuilt.set(level, target, value)
        return rebuilt


class AccuracyEnhancer:
    """Query-time accuracy enhancement (Section 5.3).

    Parameters
    ----------
    graph:
        The indexed graph (needed to expand marked entries along in-edges).
    epsilon:
        The index error target; the mark budget and the in-degree cutoff are
        both ``1/√ε``.
    sqrt_c:
        The √c continuation probability.
    """

    def __init__(self, graph: DiGraph, epsilon: float, sqrt_c: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0.0 < sqrt_c < 1.0:
            raise ParameterError(f"sqrt_c must be in (0, 1), got {sqrt_c}")
        self._graph = graph
        self._sqrt_c = sqrt_c
        self._budget = max(1, int(math.ceil(1.0 / math.sqrt(epsilon))))
        self._marks: dict[int, list[tuple[int, int, float]]] = {}

    @property
    def mark_budget(self) -> int:
        """Number of hitting probabilities marked per node, ``⌈1/√ε⌉``."""
        return self._budget

    def marks_for(self, node: int) -> list[tuple[int, int, float]]:
        """The marked ``(level, target, value)`` entries of ``node``."""
        return self._marks.get(int(node), [])

    @property
    def has_marks(self) -> bool:
        """Whether any node has marked entries."""
        return bool(self._marks)

    # ------------------------------------------------------------------ #
    def mark_all(self, hitting_sets: list[HittingProbabilitySet]) -> None:
        """Select the marked entries of every node (done once, at build time).

        Only entries whose target has in-degree at most ``1/√ε`` are eligible
        (expanding a high-in-degree target would blow the query budget); among
        those the ``1/√ε`` largest are marked.  Delegates to
        :meth:`mark_all_packed` over a frozen copy of the sets, so value ties
        break identically no matter which API selected the marks.
        """
        from .packed import PackedHittingStore

        self.mark_all_packed(PackedHittingStore.from_hitting_sets(hitting_sets))

    def mark_all_packed(self, store) -> None:
        """Select the marked entries of every node from a packed store.

        Same policy as :meth:`mark_all`, but reading the frozen
        :class:`~repro.sling.packed.PackedHittingStore` columns.  Candidate
        entries are visited in canonical (key-sorted) order, so an index
        built in memory and one loaded from disk mark identical entries —
        including value ties — and answer queries bitwise-identically.
        """
        in_degrees = self._graph.in_degrees()
        for node in range(store.num_nodes):
            levels, targets, values = store.node_entries(node)
            if targets.shape[0] == 0:
                continue
            eligible = in_degrees[targets] <= self._budget
            if not bool(eligible.any()):
                continue
            el_levels = levels[eligible]
            el_targets = targets[eligible]
            el_values = values[eligible]
            # Stable sort by value descending keeps the canonical key order
            # among ties, matching the dict path's stable list sort.
            order = np.argsort(-el_values, kind="stable")[: self._budget]
            self._marks[node] = [
                (int(el_levels[i]), int(el_targets[i]), float(el_values[i]))
                for i in order
            ]

    def generated_entries(
        self, node: int, contains
    ) -> dict[tuple[int, int], float]:
        """The positions the enhancement would generate for one query.

        ``contains(level, target)`` reports whether the query's current set
        already stores a positive probability at that position (those are
        left untouched — the stored approximation is at least as good).  The
        returned mapping accumulates ``√c · h̃^(ℓ)(v, v_j) / |I(v_j)|`` per
        generated position, in mark order, and is shared by the dict-based
        :meth:`enhance` and the packed overlay path so both produce identical
        values.
        """
        marks = self._marks.get(int(node))
        if not marks:
            return {}
        generated: dict[tuple[int, int], float] = {}
        for level, target, value in marks:
            in_neighbors = self._graph.in_neighbors(target)
            if in_neighbors.shape[0] == 0:
                continue
            contribution = self._sqrt_c * value / in_neighbors.shape[0]
            for predecessor in in_neighbors:
                predecessor = int(predecessor)
                key = (level + 1, predecessor)
                if contains(level + 1, predecessor):
                    continue
                if key in generated:
                    generated[key] += contribution
                else:
                    generated[key] = contribution
        return generated

    def enhance(
        self, node: int, hitting_set: HittingProbabilitySet
    ) -> HittingProbabilitySet:
        """Return the enhanced set ``H*(v)`` used to answer one query.

        Every marked entry ``h̃^(ℓ)(v, v_j)`` is pushed one step backwards
        along the in-edges of ``v_j``: positions already present in the stored
        set are left untouched (the stored approximation is at least as good),
        new positions accumulate ``√c · h̃^(ℓ)(v, v_j) / |I(v_j)|``.
        """
        if not self._marks.get(int(node)):
            return hitting_set
        generated = self.generated_entries(
            node, lambda level, target: hitting_set.get(level, target) > 0.0
        )
        if not generated:
            return hitting_set.copy()
        enhanced = hitting_set.copy()
        for (level, target), value in generated.items():
            enhanced.set(level, target, value)
        return enhanced
