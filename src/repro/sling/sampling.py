"""Adaptive Bernoulli-mean estimation (Section 5.1, Algorithm 4 generalized).

Algorithm 1 of the paper estimates the mean ``µ`` of a Bernoulli variable with
a fixed sample budget of ``O(ε⁻² log δ⁻¹)``.  Section 5.1 observes that when
``µ`` is small — the common case for the correction-factor quantity of
Equation (15) — far fewer samples suffice, and gives a two-phase scheme
(Algorithm 4) that draws ``O((µ + ε) ε⁻² log δ⁻¹)`` samples, which Lemma 11
shows is asymptotically optimal.

The two estimators are exposed here as generic utilities over any 0/1 sampling
callable so they can be reused (and unit tested) independently of √c-walks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..exceptions import ParameterError

__all__ = [
    "BernoulliEstimate",
    "fixed_sample_count",
    "estimate_bernoulli_mean_fixed",
    "estimate_bernoulli_mean_adaptive",
    "estimate_bernoulli_mean_fixed_batch",
    "estimate_bernoulli_mean_adaptive_batch",
]


@dataclass(frozen=True)
class BernoulliEstimate:
    """Result of a Bernoulli-mean estimation.

    Attributes
    ----------
    mean:
        The estimated mean ``µ̃``.
    num_samples:
        Total number of samples drawn.
    adaptive_phase_used:
        ``True`` when the estimator had to enter the second (larger) sampling
        phase of Algorithm 4; ``False`` when the first phase sufficed.
    """

    mean: float
    num_samples: int
    adaptive_phase_used: bool = False


def _validate(epsilon: float, delta: float) -> None:
    if not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")


def fixed_sample_count(epsilon: float, delta: float, *, scale: float = 1.0) -> int:
    """Sample count used by Algorithm 1: ``(2·scale² + scale·ε) / ε² · log(2/δ)``.

    With ``scale = c`` this is exactly the ``n_r`` of Algorithm 1 (the factor
    ``c`` appears because the correction factor tolerates ``ε_d / c`` error in
    ``µ``).  With ``scale = 1`` it is the plain Chernoff-bound budget.
    """
    _validate(epsilon, delta)
    if scale <= 0:
        raise ParameterError(f"scale must be positive, got {scale}")
    count = (2.0 * scale * scale + scale * epsilon) / (epsilon * epsilon)
    return max(1, math.ceil(count * math.log(2.0 / delta)))


def estimate_bernoulli_mean_fixed(
    sample: Callable[[], bool],
    epsilon: float,
    delta: float,
) -> BernoulliEstimate:
    """Estimate a Bernoulli mean with the fixed budget of Algorithm 1.

    Guarantees ``|µ̃ - µ| ≤ ε`` with probability at least ``1 - δ``.
    """
    num_samples = fixed_sample_count(epsilon, delta)
    successes = sum(1 for _ in range(num_samples) if sample())
    return BernoulliEstimate(mean=successes / num_samples, num_samples=num_samples)


def estimate_bernoulli_mean_adaptive(
    sample: Callable[[], bool],
    epsilon: float,
    delta: float,
) -> BernoulliEstimate:
    """Estimate a Bernoulli mean with the adaptive scheme of Algorithm 4.

    Phase one draws ``n_r = ceil(14 / (3ε) · log(4/δ))`` samples.  If the
    interim estimate ``µ̂`` is at most ``ε`` it is returned directly;
    otherwise the upper bound ``µ* = µ̂ + sqrt(µ̂ ε)`` determines the final
    budget ``n_r* = ceil((2µ* + 2ε/3) / ε² · log(4/δ))`` and sampling
    continues up to ``n_r*``.

    Guarantees ``|µ̃ - µ| ≤ ε`` with probability at least ``1 - δ`` while
    drawing only ``O((µ + ε) ε⁻² log δ⁻¹)`` samples in expectation (Lemmas 9
    and 10).
    """
    _validate(epsilon, delta)
    log_term = math.log(4.0 / delta)
    first_budget = max(1, math.ceil(14.0 / (3.0 * epsilon) * log_term))
    successes = sum(1 for _ in range(first_budget) if sample())
    interim_mean = successes / first_budget
    if interim_mean <= epsilon:
        return BernoulliEstimate(
            mean=interim_mean,
            num_samples=first_budget,
            adaptive_phase_used=False,
        )

    mean_upper_bound = interim_mean + math.sqrt(interim_mean * epsilon)
    total_budget = math.ceil(
        (2.0 * mean_upper_bound + 2.0 / 3.0 * epsilon)
        / (epsilon * epsilon)
        * log_term
    )
    total_budget = max(total_budget, first_budget)
    successes += sum(1 for _ in range(total_budget - first_budget) if sample())
    return BernoulliEstimate(
        mean=successes / total_budget,
        num_samples=total_budget,
        adaptive_phase_used=True,
    )


def estimate_bernoulli_mean_fixed_batch(
    sample_batch: Callable[[int], int],
    epsilon: float,
    delta: float,
) -> BernoulliEstimate:
    """Batch variant of :func:`estimate_bernoulli_mean_fixed`.

    ``sample_batch(count)`` must draw ``count`` independent Bernoulli samples
    and return the number of successes; drawing them in one call lets
    vectorised samplers (e.g. √c-walk pair batches) amortise their overhead.
    """
    num_samples = fixed_sample_count(epsilon, delta)
    successes = int(sample_batch(num_samples))
    return BernoulliEstimate(mean=successes / num_samples, num_samples=num_samples)


def estimate_bernoulli_mean_adaptive_batch(
    sample_batch: Callable[[int], int],
    epsilon: float,
    delta: float,
) -> BernoulliEstimate:
    """Batch variant of :func:`estimate_bernoulli_mean_adaptive` (Algorithm 4).

    Identical sampling schedule, but samples are requested through
    ``sample_batch(count) -> num_successes`` so the caller can vectorise.
    """
    _validate(epsilon, delta)
    log_term = math.log(4.0 / delta)
    first_budget = max(1, math.ceil(14.0 / (3.0 * epsilon) * log_term))
    successes = int(sample_batch(first_budget))
    interim_mean = successes / first_budget
    if interim_mean <= epsilon:
        return BernoulliEstimate(
            mean=interim_mean,
            num_samples=first_budget,
            adaptive_phase_used=False,
        )

    mean_upper_bound = interim_mean + math.sqrt(interim_mean * epsilon)
    total_budget = math.ceil(
        (2.0 * mean_upper_bound + 2.0 / 3.0 * epsilon)
        / (epsilon * epsilon)
        * log_term
    )
    total_budget = max(total_budget, first_budget)
    if total_budget > first_budget:
        successes += int(sample_batch(total_budget - first_budget))
    return BernoulliEstimate(
        mean=successes / total_budget,
        num_samples=total_budget,
        adaptive_phase_used=True,
    )
