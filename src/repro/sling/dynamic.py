"""Dynamic SLING: incremental index maintenance over a mutating graph.

Every structure built so far assumes a frozen graph — one edge change forces
a full :meth:`SlingIndex.build`.  This module exploits the locality of
SLING's walk decomposition to avoid that: a hitting-probability entry
``h̃^(ℓ)(v, t)`` only changes when a reverse-push walk from ``t`` crosses a
modified edge, and a correction factor ``d̃_k`` only changes structurally
when ``|I(k)|`` changes.  :class:`DynamicSlingIndex` therefore repairs a
mutation batch in three local steps:

1. **Affected-target detection.**  Let ``D`` be the *detection set*: the
   tails and heads of the changed edges plus the pre-mutation in-neighbours
   of every head.  A reverse push from any target ``t`` behaves identically
   on the old and new graphs until its frontier first touches a changed
   edge or a changed in-degree — and at that first divergence the pushing
   node ``d ∈ D`` holds kept (``> θ``) mass from ``t``, i.e. ``t`` appears
   in ``d``'s current hitting set.  The affected-target set is therefore
   exactly ``T = ⋃_{d∈D} targets(H(d))`` — cheap to read off the packed
   store, and an over-approximation is harmless (re-pushing an unchanged
   target produces identical entries).

2. **Local repair.**  For every ``t ∈ T`` the reverse push is re-run on the
   old and the new graph (:func:`~repro.sling.hitting.reverse_push` both
   times — the old run enumerates exactly the stored positions, the new run
   the replacement values).  Differences become copy-on-write overlay
   patches per source node: fresh values for new/changed positions and
   value-``0.0`` tombstones for positions that disappeared (legitimate
   stored values are always ``> θ > 0``, so ``0.0`` unambiguously means
   "deleted", contributes nothing to a dot product, and pushes no mass).
   Correction factors are re-estimated only for the heads (whose
   ``c/|I(k)|`` term changed discretely), each with its own deterministic
   per-node RNG stream.

3. **Bounded-staleness serving.**  Queries read an immutable *generation*
   object ``(graph, store, corrections, overlay, version)`` grabbed once
   per query; mutations and re-freezes publish a new generation atomically
   and never touch an old one, so readers are never blocked and an old
   generation is retired by the garbage collector once its in-flight
   queries drain.  While deltas are outstanding the repaired hitting
   entries are exact for the new graph but far-away correction factors may
   carry second-order drift (their meeting probability ``µ`` is estimated
   on walks of the old graph); :meth:`DynamicSlingIndex.staleness_bound`
   therefore certifies ``ε_stale = 2ε`` — the overlay answer and a
   from-scratch rebuild each carry the Theorem-1 budget ``ε`` against the
   new graph's SimRank under the standard sampling guarantees, so they
   agree within ``2ε`` — and reports ``0.0`` once a re-freeze has landed.

**Re-freeze** compacts the overlay into a fresh
:class:`~repro.sling.packed.PackedHittingStore` and re-estimates *all*
correction factors with the exact build recipe (one shared sequential
walker seeded like :meth:`SlingIndex.build`), so a re-frozen index is
**bitwise identical** — columns, corrections, and therefore answers — to a
from-scratch build on the mutated graph.  The compaction runs outside the
mutation lock and installs its generation only if no mutation landed
meanwhile (compare-and-swap on the generation object, retried a bounded
number of times), which is what :meth:`DynamicSlingIndex.refreeze_async`
runs on a background thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import IndexNotBuiltError, ParameterError
from ..graphs import DiGraph
from ..ranking import rank_top_k
from .correction import (
    estimate_all_correction_factors,
    estimate_correction_factor,
)
from .hitting import reverse_push
from .index import SlingIndex
from .packed import PackedHittingStore, QueryView, intersect_views
from .parameters import SlingParameters
from .single_source import single_source_cascade, single_source_local_push
from .walks import SqrtCWalker

__all__ = ["DynamicSlingIndex", "MutationReport"]

#: Overlay patches map ``source -> {(level, target): value}``; a value of
#: exactly ``0.0`` is a tombstone (stored values are always ``> θ > 0``).
_Overlay = dict[int, dict[tuple[int, int], float]]


@dataclass(frozen=True)
class MutationReport:
    """What one mutation batch (or re-freeze) did to the index."""

    #: Edges actually added / removed (no-op edges are filtered out).
    edges_added: int
    edges_removed: int
    #: How many targets had their reverse pushes re-run.
    affected_targets: int
    #: Every source node whose answers may have changed — the exact set a
    #: cache keyed by source must invalidate (closed under both pair sides).
    affected_sources: tuple[int, ...]
    #: The index version after this batch (monotonically increasing).
    version: int
    #: Certified staleness bound of answers served after this batch.
    epsilon_stale: float
    #: Wall-clock seconds spent repairing.
    seconds: float


class _Generation:
    """One immutable serving state; queries hold a reference, never a lock."""

    __slots__ = ("graph", "store", "corrections", "overlay", "version", "dirty")

    def __init__(
        self,
        graph: DiGraph,
        store: PackedHittingStore,
        corrections: np.ndarray,
        overlay: _Overlay,
        version: int,
        dirty: bool,
    ) -> None:
        self.graph = graph
        self.store = store
        self.corrections = corrections
        self.overlay = overlay
        self.version = version
        #: Whether any mutation has landed since the last (re-)freeze —
        #: drives the reported staleness bound even when a batch produced
        #: an empty overlay (e.g. only a correction factor changed).
        self.dirty = dirty


class DynamicSlingIndex:
    """A SLING index that stays queryable while its graph mutates.

    Wraps a plain (no space-reduction / accuracy-enhancement) in-memory
    :class:`SlingIndex` build and exposes the same query surface —
    ``single_pair`` / ``single_source`` / ``top_k`` plus the size accessors
    the backend adapter needs — with three additions: :meth:`add_edges` /
    :meth:`remove_edges` / :meth:`mutate` apply edge deltas incrementally,
    :meth:`refreeze` compacts them back into a frozen store with bitwise
    rebuild parity, and :attr:`version` / :meth:`staleness_bound` report
    the serving state for cache scoping and per-query staleness.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        c: float = 0.6,
        epsilon: float = 0.025,
        delta: float | None = None,
        seed: int | None = None,
        adaptive_correction: bool = True,
        parameters: SlingParameters | None = None,
    ) -> None:
        self._base = SlingIndex(
            graph,
            c=c,
            epsilon=epsilon,
            delta=delta,
            seed=seed,
            adaptive_correction=adaptive_correction,
            parameters=parameters,
        )
        self._seed = seed
        self._adaptive = adaptive_correction
        self._mutex = threading.Lock()
        self._gen: _Generation | None = None
        self._mutation_count = 0
        self._refreeze_count = 0

    @classmethod
    def from_index(cls, index: SlingIndex) -> "DynamicSlingIndex":
        """Adopt an already-built plain :class:`SlingIndex` without rebuilding.

        The index must have been built without ``reduce_space`` /
        ``enhance_accuracy``: the overlay repair rewrites raw reverse-push
        entries, which those optimizations post-process in ways an
        incremental patch cannot reproduce.
        """
        if getattr(index, "_reduce_space", False) or getattr(
            index, "_enhance_accuracy", False
        ):
            raise ParameterError(
                "dynamic maintenance requires a plain SLING index "
                "(reduce_space=False, enhance_accuracy=False)"
            )
        dynamic = cls.__new__(cls)
        dynamic._base = index
        dynamic._seed = getattr(index, "_seed", None)
        dynamic._adaptive = getattr(index, "_adaptive_correction", True)
        dynamic._mutex = threading.Lock()
        dynamic._gen = None
        dynamic._mutation_count = 0
        dynamic._refreeze_count = 0
        if index.is_built:
            dynamic._adopt_base()
        return dynamic

    # ------------------------------------------------------------------ #
    # Build / introspection
    # ------------------------------------------------------------------ #
    def build(self, *, workers: int = 1) -> "DynamicSlingIndex":
        """Build the base index (if needed) and open generation 0."""
        with self._mutex:
            if self._gen is not None:
                return self
            if not self._base.is_built:
                self._base.build(workers=workers)
            self._adopt_base()
        return self

    def _adopt_base(self) -> None:
        self._gen = _Generation(
            graph=self._base.graph,
            store=self._base.packed_store,
            corrections=self._base.correction_factors,
            overlay={},
            version=0,
            dirty=False,
        )

    def _generation(self) -> _Generation:
        gen = self._gen
        if gen is None:
            raise IndexNotBuiltError("dynamic SLING index")
        return gen

    @property
    def is_built(self) -> bool:
        """Whether a serving generation exists."""
        return self._gen is not None

    @property
    def graph(self) -> DiGraph:
        """The *current* (post-mutation) graph."""
        return self._generation().graph

    @property
    def parameters(self) -> SlingParameters:
        """The resolved parameter set (shared with the base build)."""
        return self._base.parameters

    @property
    def packed_store(self) -> PackedHittingStore:
        """The frozen store of the current generation (overlay not applied)."""
        return self._generation().store

    @property
    def correction_factors(self) -> np.ndarray:
        """Correction factors of the current generation."""
        return self._generation().corrections

    @property
    def version(self) -> int:
        """Monotonically increasing index version; bumped per mutation
        batch and per re-freeze."""
        return self._generation().version

    @property
    def is_dirty(self) -> bool:
        """Whether un-compacted deltas are outstanding."""
        return self._generation().dirty

    def staleness_bound(self) -> float:
        """The certified per-query staleness bound ``ε_stale``.

        ``2ε`` while deltas are outstanding (overlay answer and a
        from-scratch rebuild each carry the Theorem-1 ``ε`` budget against
        the mutated graph's SimRank, so they differ by at most ``2ε``),
        ``0.0`` once re-frozen — then answers are bitwise rebuild-identical.
        """
        gen = self._generation()
        return 2.0 * self._base.parameters.epsilon if gen.dirty else 0.0

    def statistics(self) -> dict:
        """Serving-state snapshot: version, dirtiness, overlay size."""
        gen = self._generation()
        return {
            "index_version": gen.version,
            "dirty": gen.dirty,
            "epsilon_stale": self.staleness_bound(),
            "overlay_nodes": len(gen.overlay),
            "overlay_entries": sum(len(p) for p in gen.overlay.values()),
            "mutations": self._mutation_count,
            "refreezes": self._refreeze_count,
        }

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_edges(
        self, edges: Iterable[tuple[int, int]]
    ) -> MutationReport:
        """Add directed edges incrementally; see :meth:`mutate`."""
        return self.mutate(added=edges)

    def remove_edges(
        self, edges: Iterable[tuple[int, int]]
    ) -> MutationReport:
        """Remove directed edges incrementally; see :meth:`mutate`."""
        return self.mutate(removed=edges)

    def mutate(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> MutationReport:
        """Apply one edge-delta batch and repair the index locally.

        Adding a present edge or removing an absent one is a no-op; a batch
        with no effective change does not bump the version.  Raises
        :class:`~repro.exceptions.GraphFormatError` for out-of-range
        endpoints or an edge listed on both sides.
        """
        start = time.perf_counter()
        added = list(added)
        removed = list(removed)
        with self._mutex:
            gen = self._generation()
            old_graph = gen.graph
            new_graph = old_graph.with_edges(added, removed)
            if new_graph is old_graph:
                return MutationReport(
                    edges_added=0,
                    edges_removed=0,
                    affected_targets=0,
                    affected_sources=(),
                    version=gen.version,
                    epsilon_stale=self.staleness_bound(),
                    seconds=time.perf_counter() - start,
                )
            actual_added = sorted(
                {
                    (int(u), int(v))
                    for u, v in added
                    if not old_graph.has_edge(int(u), int(v))
                }
            )
            actual_removed = sorted(
                {
                    (int(u), int(v))
                    for u, v in removed
                    if old_graph.has_edge(int(u), int(v))
                }
            )
            params = self._base.parameters
            sqrt_c, theta = params.sqrt_c, params.theta

            heads = {v for _, v in actual_added} | {
                v for _, v in actual_removed
            }
            detect = {u for u, _ in actual_added}
            detect |= {u for u, _ in actual_removed}
            detect |= heads
            for head in heads:
                detect.update(int(x) for x in old_graph.in_neighbors(head))

            affected_targets: set[int] = set()
            for node in detect:
                view = self._compose_view(gen, node)
                values = np.asarray(view.values)
                targets = np.asarray(view.targets)
                affected_targets.update(
                    int(t) for t in targets[values > 0.0]
                )

            # The pre-mutation entries for the affected targets are read
            # back from the serving state (store columns ⊕ overlay) in one
            # vectorised scan rather than re-running the old-graph reverse
            # pushes: the patch set must transform *what is actually served*
            # into the new push's result, so diffing against the served
            # entries is both correct by construction and roughly halves
            # the repair cost.
            store = gen.store
            old_by_target: dict[int, dict[tuple[int, int], float]] = {
                target: {} for target in affected_targets
            }
            if affected_targets:
                affected_array = np.fromiter(
                    sorted(affected_targets), dtype=np.int64
                )
                mask = np.isin(
                    store.targets.astype(np.int64, copy=False), affected_array
                )
                entry_sources = np.repeat(
                    np.arange(store.num_nodes, dtype=np.int64),
                    np.diff(store.offsets),
                )
                for source, level, target, value in zip(
                    entry_sources[mask].tolist(),
                    store.levels[mask].tolist(),
                    store.targets[mask].tolist(),
                    store.values[mask].tolist(),
                ):
                    old_by_target[int(target)][
                        (int(source), int(level))
                    ] = float(value)
                for source, patch in gen.overlay.items():
                    for (level, target), value in patch.items():
                        entries = old_by_target.get(int(target))
                        if entries is None:
                            continue
                        if value == 0.0:
                            entries.pop((int(source), int(level)), None)
                        else:
                            entries[(int(source), int(level))] = value

            patches: _Overlay = {}
            affected_sources: set[int] = set()
            scratch = np.zeros(new_graph.num_nodes, dtype=np.float64)
            for target in sorted(affected_targets):
                old_entries = old_by_target[target]
                new_push = reverse_push(
                    new_graph, target, sqrt_c, theta, scratch=scratch
                )
                seen: set[tuple[int, int]] = set()
                for level, frontier in new_push.items():
                    level = int(level)
                    for source, value in frontier.items():
                        source = int(source)
                        affected_sources.add(source)
                        seen.add((source, level))
                        if old_entries.get((source, level)) != value:
                            patches.setdefault(source, {})[
                                (level, target)
                            ] = float(value)
                for source, level in old_entries:
                    affected_sources.add(source)
                    if (source, level) not in seen:
                        # Tombstone: the position vanished on the new graph.
                        patches.setdefault(source, {})[(level, target)] = 0.0

            corrections = np.array(gen.corrections, dtype=np.float64, copy=True)
            new_version = gen.version + 1
            for head in sorted(heads):
                corrections[head] = self._estimate_one_correction(
                    new_graph, head, new_version
                )
            corrections.flags.writeable = False

            overlay: _Overlay = dict(gen.overlay)
            for source, entries in patches.items():
                merged = dict(overlay.get(source, ()))
                merged.update(entries)
                overlay[source] = merged

            self._gen = _Generation(
                graph=new_graph,
                store=gen.store,
                corrections=corrections,
                overlay=overlay,
                version=new_version,
                dirty=True,
            )
            self._mutation_count += 1
            return MutationReport(
                edges_added=len(actual_added),
                edges_removed=len(actual_removed),
                affected_targets=len(affected_targets),
                affected_sources=tuple(sorted(affected_sources)),
                version=new_version,
                epsilon_stale=self.staleness_bound(),
                seconds=time.perf_counter() - start,
            )

    def _estimate_one_correction(
        self, graph: DiGraph, node: int, version: int
    ) -> float:
        """Re-estimate one ``d̃_k`` with a deterministic per-node stream.

        The full build shares one sequential RNG across all nodes, so a
        subset re-estimation cannot reuse that stream; each repaired node
        instead gets its own generator derived from (seed, version, node) —
        deterministic for tests, independent across repairs.
        """
        params = self._base.parameters
        rng = np.random.default_rng(
            np.random.SeedSequence(
                (0 if self._seed is None else int(self._seed), version, node)
            )
        )
        walker = SqrtCWalker(graph, params.c, seed=rng)
        estimate = estimate_correction_factor(
            walker,
            node,
            params.epsilon_d,
            params.delta_d,
            adaptive=self._adaptive,
        )
        return float(estimate.value)

    # ------------------------------------------------------------------ #
    # Re-freeze
    # ------------------------------------------------------------------ #
    def refreeze(self, *, max_attempts: int = 3) -> bool:
        """Compact deltas into a fresh frozen generation, rebuild-parity.

        The merged store and full-recipe correction factors are computed
        *outside* the mutation lock; the new generation is installed only
        if no mutation landed meanwhile (retrying up to ``max_attempts``
        times).  Returns ``True`` when a clean generation is serving —
        including the trivial case of nothing to compact.

        After a successful re-freeze the store columns and correction
        factors are bitwise identical to ``SlingIndex(graph, seed=seed,
        ...).build()`` on the mutated graph, so every answer matches a
        from-scratch rebuild exactly.
        """
        for _ in range(max_attempts):
            snapshot = self._generation()
            if not snapshot.dirty:
                return True
            params = self._base.parameters
            store = self._merge_store(snapshot)
            walker = SqrtCWalker(snapshot.graph, params.c, seed=self._seed)
            corrections = estimate_all_correction_factors(
                walker,
                params.epsilon_d,
                params.delta_d,
                adaptive=self._adaptive,
            )
            corrections.flags.writeable = False
            with self._mutex:
                if self._gen is not snapshot:
                    continue  # a mutation raced the compaction; recompute
                self._gen = _Generation(
                    graph=snapshot.graph,
                    store=store,
                    corrections=corrections,
                    overlay={},
                    version=snapshot.version + 1,
                    dirty=False,
                )
                self._refreeze_count += 1
                return True
        return False

    def refreeze_async(self, *, max_attempts: int = 3) -> threading.Thread:
        """Run :meth:`refreeze` on a background daemon thread.

        Readers keep serving from the current generation throughout; join
        the returned thread to wait for the swap."""
        thread = threading.Thread(
            target=self.refreeze,
            kwargs={"max_attempts": max_attempts},
            name="repro-dynamic-refreeze",
            daemon=True,
        )
        thread.start()
        return thread

    @staticmethod
    def _merge_store(gen: _Generation) -> PackedHittingStore:
        """Base columns + overlay (tombstones dropped) as a fresh store."""
        store = gen.store
        if not gen.overlay:
            return store
        num_nodes = store.num_nodes
        counts = np.empty(num_nodes, dtype=np.int64)
        levels_parts: list[np.ndarray] = []
        targets_parts: list[np.ndarray] = []
        values_parts: list[np.ndarray] = []
        for node in range(num_nodes):
            patch = gen.overlay.get(node)
            if patch is None:
                lo, hi = store.slice_bounds(node)
                levels_parts.append(store.levels[lo:hi])
                targets_parts.append(store.targets[lo:hi])
                values_parts.append(store.values[lo:hi])
                counts[node] = hi - lo
                continue
            view = store.node_view(node).override(
                (level, target, value)
                for (level, target), value in patch.items()
            )
            values = np.asarray(view.values)
            keep = values > 0.0
            levels_parts.append(np.asarray(view.levels)[keep])
            targets_parts.append(np.asarray(view.targets)[keep])
            values_parts.append(values[keep])
            counts[node] = int(keep.sum())
        offsets = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return PackedHittingStore.from_columns(
            offsets,
            np.concatenate(levels_parts),
            np.concatenate(targets_parts),
            np.concatenate(values_parts),
        )

    # ------------------------------------------------------------------ #
    # Queries (read one generation, never a lock)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _compose_view(gen: _Generation, node: int) -> QueryView:
        view = gen.store.node_view(node)
        patch = gen.overlay.get(node)
        if patch:
            view = view.override(
                (level, target, value)
                for (level, target), value in patch.items()
            )
        return view

    def _query_view(self, gen: _Generation, node: int) -> QueryView:
        node = int(node)
        gen.graph.in_degree(node)  # validates the node id
        return self._compose_view(gen, node)

    def single_pair(self, node_u: int, node_v: int) -> float:
        """Approximate SimRank ``s̃(u, v)`` on the current generation."""
        gen = self._generation()
        return intersect_views(
            self._query_view(gen, node_u),
            self._query_view(gen, node_v),
            gen.corrections,
        )

    def single_source(
        self, node: int, *, method: str = "local_push"
    ) -> np.ndarray:
        """Approximate SimRank from ``node`` to every node, as ``(n,)``.

        Supports the ``"local_push"`` (bitwise-stable reference) and
        ``"cascade"`` kernels; both run on the current graph with the
        overlay-composed view, so tombstoned entries push no mass.
        """
        gen = self._generation()
        params = self._base.parameters
        view = self._query_view(gen, node)
        if method == "local_push":
            return single_source_local_push(
                gen.graph, view, gen.corrections, params.sqrt_c, params.theta
            )
        if method == "cascade":
            return single_source_cascade(
                gen.graph, view, gen.corrections, params.sqrt_c, params.theta
            )
        raise ParameterError(
            f"unknown single-source method {method!r}; "
            "expected 'local_push' or 'cascade'"
        )

    def top_k(
        self, node: int, k: int, *, method: str = "local_push",
        budget: float | None = None,
    ) -> list[tuple[int, float]]:
        """The ``k`` nodes most similar to ``node`` (excluding itself).

        ``"bounded"`` falls back to the exact local-push ranking: the
        packed store's per-level pruning metadata describes the *frozen*
        columns, so its bounds are not trustworthy while overlay deltas are
        outstanding.  (``budget`` is accepted for interface compatibility.)
        """
        del budget
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if method == "bounded":
            method = "local_push"
        scores = self.single_source(node, method=method)
        return rank_top_k(scores, int(node), k)

    # ------------------------------------------------------------------ #
    # Size accounting (backend-adapter surface)
    # ------------------------------------------------------------------ #
    def index_size_bytes(self) -> int:
        """Figure-4 accounting: corrections + packed entries + overlay."""
        gen = self._generation()
        overlay_entries = sum(len(p) for p in gen.overlay.values())
        return (
            8 * gen.graph.num_nodes
            + gen.store.size_bytes()
            + 12 * overlay_entries
        )

    def resident_bytes(self) -> int:
        """In-memory footprint of the current generation's arrays."""
        gen = self._generation()
        overlay_entries = sum(len(p) for p in gen.overlay.values())
        return int(
            np.asarray(gen.corrections).nbytes
            + gen.store.nbytes
            # dict-of-dicts overlay: ~3 pointers-worth per entry is a floor,
            # reported so capacity planning sees the delta at all.
            + 24 * overlay_entries
        )

    def average_set_size(self) -> float:
        """Average stored hitting probabilities per node (Table-1 style)."""
        gen = self._generation()
        if gen.store.num_nodes == 0:
            return 0.0
        return gen.store.num_entries / gen.store.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._gen is None:
            return "DynamicSlingIndex(not built)"
        gen = self._gen
        return (
            f"DynamicSlingIndex(n={gen.graph.num_nodes}, "
            f"version={gen.version}, dirty={gen.dirty})"
        )
