"""Single-source SimRank query processing (Algorithm 6, Section 6).

Algorithm 6 avoids reading every other node's hitting set by rebuilding, on
the fly, exactly the inverted lists the query needs: for every step ``ℓ`` and
every node ``v_k`` with a stored hitting probability ``h̃^(ℓ)(v_i, v_k)``, the
temporary score ``ρ^(0)(v_k) = h̃^(ℓ)(v_i, v_k) · d_k`` is pushed forward
``ℓ`` steps along out-edges; the mass arriving at ``v_j`` equals
``Σ_k h^(ℓ)(v_j, v_k) · d_k · h̃^(ℓ)(v_i, v_k)``, i.e. the step-ℓ contribution
to ``s(v_i, v_j)``.  Scores smaller than ``(√c)^ℓ · θ`` are pruned during the
push, which is what yields the ``O(m log² 1/ε)`` bound of Lemma 12.

The function is shared by :class:`repro.sling.index.SlingIndex` and by the
disk-backed query engine in :mod:`repro.sling.storage`.
"""

from __future__ import annotations

import numpy as np

from ..graphs import DiGraph
from .hitting import HittingProbabilitySet, push_frontier

__all__ = ["single_source_local_push"]


def single_source_local_push(
    graph: DiGraph,
    query_set: HittingProbabilitySet,
    corrections: np.ndarray,
    sqrt_c: float,
    theta: float,
) -> np.ndarray:
    """Algorithm 6: SimRank from the query node to every node.

    Parameters
    ----------
    graph:
        The indexed graph.
    query_set:
        The (possibly reconstructed / enhanced) hitting set of the query node.
    corrections:
        The ``(n,)`` array of correction factors ``d̃_k``.
    sqrt_c, theta:
        The index parameters ``√c`` and ``θ``.

    Returns
    -------
    numpy.ndarray
        An ``(n,)`` array of approximate SimRank scores, clamped to ``[0, 1]``.
    """
    scores = np.zeros(graph.num_nodes, dtype=np.float64)
    for level, entries in sorted(query_set.levels.items()):
        if not entries:
            continue
        frontier_nodes = np.fromiter(entries.keys(), dtype=np.int64, count=len(entries))
        frontier_values = np.fromiter(
            entries.values(), dtype=np.float64, count=len(entries)
        )
        # ρ^(0)(v_k) = h̃^(ℓ)(v_i, v_k) · d_k
        frontier_values = frontier_values * corrections[frontier_nodes]
        prune_threshold = (sqrt_c**level) * theta
        for _ in range(level):
            keep = frontier_values > prune_threshold
            frontier_nodes = frontier_nodes[keep]
            frontier_values = frontier_values[keep]
            if frontier_nodes.size == 0:
                break
            frontier_nodes, frontier_values = push_frontier(
                graph, frontier_nodes, frontier_values, sqrt_c
            )
        if frontier_nodes.size:
            np.add.at(scores, frontier_nodes, frontier_values)
    return np.minimum(scores, 1.0)
