"""Single-source SimRank query processing (Algorithm 6, Section 6).

Algorithm 6 avoids reading every other node's hitting set by rebuilding, on
the fly, exactly the inverted lists the query needs: for every step ``ℓ`` and
every node ``v_k`` with a stored hitting probability ``h̃^(ℓ)(v_i, v_k)``, the
temporary score ``ρ^(0)(v_k) = h̃^(ℓ)(v_i, v_k) · d_k`` is pushed forward
``ℓ`` steps along out-edges; the mass arriving at ``v_j`` equals
``Σ_k h^(ℓ)(v_j, v_k) · d_k · h̃^(ℓ)(v_i, v_k)``, i.e. the step-ℓ contribution
to ``s(v_i, v_j)``.  Scores smaller than ``(√c)^ℓ · θ`` are pruned during the
push, which is what yields the ``O(m log² 1/ε)`` bound of Lemma 12.

This module provides three kernels over that idea:

* :func:`single_source_local_push` — the *exact reference* path: per-level
  pushes in canonical entry order, kept bit-for-bit compatible with the
  original implementation (the scatters are ``np.bincount`` folds that
  accumulate in the same order ``np.add.at`` did).
* :func:`single_source_cascade` — the level-cascade kernel: the push operator
  is linear, so instead of pushing each level's frontier ``ℓ`` steps
  independently (``Σℓ`` push steps), levels are processed in *descending*
  order and merged into one running frontier that advances a single step per
  iteration (``max ℓ`` push steps), with each level pruned once at its own
  ``(√c)^ℓ·θ`` threshold at injection time.  The inner step uses the graph's
  precomputed ``√c / |I(·)|`` edge-weight column: two gathers, one multiply,
  one ``bincount``.  Injection-time pruning drops strictly less mass than the
  reference's per-step pruning, so the cascade stays within the same
  Theorem-1 error budget (guarded by tests and the recorded benchmark).
* :func:`bounded_top_k` — the pruned top-k path: per-level residual-mass
  upper bounds (``(√c)^ℓ`` times the level's largest initial score — each
  unit of frontier mass spreads over at most ``(√c)^ℓ`` of total hitting
  probability) let the cascade stop early at the shallowest level whose
  undelivered tail fits an error budget, and the returned ranking is kept
  only when the k-th candidate's lower bound dominates that tail.

The query set may be a packed :class:`~repro.sling.packed.QueryView` — the
native representation, whose per-level frontiers are zero-copy column slices —
or a dict-based :class:`~repro.sling.hitting.HittingProbabilitySet`, which is
first converted to the same canonical (key-sorted) ordering.  Both paths
therefore execute identical numpy operations on identically ordered arrays
and return bitwise-identical scores for the same entries.

The kernels are shared by :class:`repro.sling.index.SlingIndex` and by the
disk-backed query engine in :mod:`repro.sling.storage`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..graphs import DiGraph
from ..ranking import rank_top_k
from .hitting import HittingProbabilitySet, concatenated_ranges, push_frontier
from .packed import QueryView, view_from_hitting_set

__all__ = [
    "single_source_local_push",
    "single_source_cascade",
    "bounded_top_k",
    "BoundedTopK",
]


def _as_view(query_set: HittingProbabilitySet | QueryView) -> QueryView:
    if isinstance(query_set, HittingProbabilitySet):
        return view_from_hitting_set(query_set)
    return query_set


def single_source_local_push(
    graph: DiGraph,
    query_set: HittingProbabilitySet | QueryView,
    corrections: np.ndarray,
    sqrt_c: float,
    theta: float,
    *,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Algorithm 6: SimRank from the query node to every node.

    This is the exact reference kernel: each level's initial frontier is
    pushed ``level`` steps independently and the surviving per-level
    frontiers are accumulated with one deferred ``np.bincount`` scatter.
    Because every score starts from zero and receives its per-level
    contributions in ascending level order — exactly the order the former
    per-level ``np.add.at`` calls applied them — the result is bitwise
    identical to the original implementation (guarded by
    ``benchmarks/bench_single_source.py``).

    Parameters
    ----------
    graph:
        The indexed graph.
    query_set:
        The (possibly reconstructed / enhanced) hitting set of the query
        node — either a packed :class:`QueryView` (zero-copy frontier
        initialisation) or a dict-based :class:`HittingProbabilitySet`.
    corrections:
        The ``(n,)`` array of correction factors ``d̃_k``.
    sqrt_c, theta:
        The index parameters ``√c`` and ``θ``.
    scratch:
        Retained for backward compatibility (the ``bincount`` scatter
        allocates its own output); validated when passed, otherwise unused.

    Returns
    -------
    numpy.ndarray
        An ``(n,)`` array of approximate SimRank scores, clamped to ``[0, 1]``.
    """
    view = _as_view(query_set)
    delivered_nodes: list[np.ndarray] = []
    delivered_values: list[np.ndarray] = []
    for level, targets, values in view.iter_levels():
        frontier_nodes = targets.astype(np.int64)
        # ρ^(0)(v_k) = h̃^(ℓ)(v_i, v_k) · d_k  (fresh array; the view's
        # columns — possibly memory-mapped store slices — are never written)
        frontier_values = np.asarray(values) * corrections[frontier_nodes]
        prune_threshold = (sqrt_c**level) * theta
        for _ in range(level):
            keep = frontier_values > prune_threshold
            frontier_nodes = frontier_nodes[keep]
            frontier_values = frontier_values[keep]
            if frontier_nodes.size == 0:
                break
            frontier_nodes, frontier_values = push_frontier(
                graph, frontier_nodes, frontier_values, sqrt_c, scratch=scratch
            )
        if frontier_nodes.size:
            delivered_nodes.append(frontier_nodes)
            delivered_values.append(frontier_values)
    if not delivered_nodes:
        return np.zeros(graph.num_nodes, dtype=np.float64)
    scores = np.bincount(
        np.concatenate(delivered_nodes),
        weights=np.concatenate(delivered_values),
        minlength=graph.num_nodes,
    )
    return np.minimum(scores, 1.0)


# --------------------------------------------------------------------------- #
# Level-cascade kernel
# --------------------------------------------------------------------------- #
def _push_running(
    running: np.ndarray,
    out_indptr: np.ndarray,
    out_indices: np.ndarray,
    edge_weights: np.ndarray,
    num_nodes: int,
) -> np.ndarray:
    """One dense push step of the cascade's running frontier.

    Two gathers (edge offsets, successors), one multiply against the
    precomputed ``√c / |I(·)|`` edge-weight column, one ``bincount`` scatter.
    """
    active = np.flatnonzero(running)
    if active.size == 0:
        return running
    starts = out_indptr[active]
    counts = out_indptr[active + 1] - starts
    total_edges = int(counts.sum())
    if total_edges == 0:
        return np.zeros(num_nodes, dtype=np.float64)
    edge_offsets = concatenated_ranges(starts, counts, total_edges)
    contributions = np.repeat(running[active], counts) * edge_weights[edge_offsets]
    return np.bincount(
        out_indices[edge_offsets], weights=contributions, minlength=num_nodes
    )


def _cascade_scores(
    graph: DiGraph,
    view: QueryView,
    corrections: np.ndarray,
    sqrt_c: float,
    theta: float,
    *,
    max_level: int | None = None,
) -> np.ndarray:
    """Run the descending level-cascade, optionally truncated at ``max_level``.

    Returns the raw (unclamped) delivered-mass vector.  Levels above
    ``max_level`` are never materialised — their column slices stay untouched,
    which is what the bounded top-k path buys its early exit with.
    """
    run_levels, seg_starts, seg_stops = view.level_segments()
    num_nodes = graph.num_nodes
    running = np.zeros(num_nodes, dtype=np.float64)
    if run_levels.shape[0] == 0:
        return running
    out_indptr, out_indices = graph.out_csr()
    edge_weights = graph.push_edge_weights(sqrt_c)
    depth: int | None = None
    for idx in range(run_levels.shape[0] - 1, -1, -1):
        level = int(run_levels[idx])
        if max_level is not None and level > max_level:
            continue
        if depth is not None:
            # Bring the running frontier down to this level's depth: one
            # push per intervening level (absent levels contribute nothing
            # but their steps still apply to already-injected mass).
            for _ in range(depth - level):
                running = _push_running(
                    running, out_indptr, out_indices, edge_weights, num_nodes
                )
        depth = level
        targets = view.targets[seg_starts[idx] : seg_stops[idx]]
        nodes = np.asarray(targets).astype(np.int64)
        values = np.asarray(view.values[seg_starts[idx] : seg_stops[idx]])
        injected = values * corrections[nodes]
        keep = injected > (sqrt_c**level) * theta
        if keep.any():
            # Targets within a level are unique (strictly increasing keys),
            # so plain fancy-index accumulation is safe.
            running[nodes[keep]] += injected[keep]
    if depth is not None:
        for _ in range(depth):
            running = _push_running(
                running, out_indptr, out_indices, edge_weights, num_nodes
            )
    return running


def single_source_cascade(
    graph: DiGraph,
    query_set: HittingProbabilitySet | QueryView,
    corrections: np.ndarray,
    sqrt_c: float,
    theta: float,
) -> np.ndarray:
    """Level-cascade variant of Algorithm 6: ``max ℓ`` pushes instead of ``Σℓ``.

    The push operator ``P`` is linear, so the per-level answer
    ``Σ_ℓ P^ℓ F_ℓ`` factors Horner-style as
    ``P(...P(P(F_L) + F_{L-1}) + ...) + F_0``: levels are injected in
    descending order into one running frontier that advances a single step
    per iteration.  Each level's frontier is pruned once, at injection, at
    its own ``(√c)^ℓ·θ`` threshold — strictly less mass is dropped than by
    the reference's per-step pruning, so the cascade differs from
    :func:`single_source_local_push` only within the Theorem-1 pruning
    budget (``≤ ε``; the recorded benchmark and the property suite assert
    this).  Scores are *not* bitwise identical to the reference: the exact
    path is the default and this kernel is the opt-in fast path.
    """
    view = _as_view(query_set)
    scores = _cascade_scores(graph, view, corrections, sqrt_c, theta)
    return np.minimum(scores, 1.0)


# --------------------------------------------------------------------------- #
# Bounded top-k
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BoundedTopK:
    """Result of :func:`bounded_top_k`.

    Attributes
    ----------
    ranked:
        The top-k list in the shared :func:`repro.ranking.rank_top_k`
        contract (descending score, ties on the smaller node id, the source
        excluded).  Scores are lower bounds within ``tail_bound`` of the full
        cascade's values.
    tail_bound:
        Upper bound on the mass the truncated cascade left undelivered to
        any single node (``0.0`` when the cascade ran to full depth).
    stop_level:
        Deepest level that was injected (``-1`` for an empty hitting set).
    truncated:
        Whether the early exit was taken; ``False`` means the full cascade
        ran (either the bounds never allowed a cut, or the k-th candidate
        failed to dominate the tail and the query fell back).
    """

    ranked: list[tuple[int, float]]
    tail_bound: float
    stop_level: int
    truncated: bool


def bounded_top_k(
    graph: DiGraph,
    query_set: HittingProbabilitySet | QueryView,
    corrections: np.ndarray,
    sqrt_c: float,
    theta: float,
    source: int,
    k: int,
    *,
    budget: float,
    level_bounds: dict[int, float] | None = None,
    min_stop_level: int = 2,
) -> BoundedTopK:
    """Top-k via a truncated cascade with residual-mass pruning bounds.

    The step-ℓ contribution a query can still deliver to any one node is at
    most ``B_ℓ = (√c)^ℓ · max_k ρ^(0)_ℓ(v_k)`` (the level's largest initial
    score times the Lemma-7 cap on total step-ℓ hitting probability).  The
    cascade is truncated at the shallowest stored level whose undelivered
    tail ``R = Σ_{ℓ' > ℓ} B_{ℓ'}`` fits ``budget``; levels above the cut are
    never materialised.  The truncated ranking is kept when the k-th
    candidate's lower bound dominates ``R`` (so no unseen mass can promote
    an outsider past it without also being visible in the bound); otherwise
    the query falls back to the full cascade.

    ``level_bounds`` lets the caller supply per-level bounds from the packed
    store's precomputed :meth:`~repro.sling.packed.PackedHittingStore.level_stats`
    metadata (scaled by a correction-factor upper bound), so skipped levels
    cost no column reads at all; missing levels are bounded from the view's
    own corrected frontier.  ``min_stop_level`` floors the cut (default 2)
    so the Section-5.2/5.3 per-query overlays — which only rewrite levels
    0-2 — are always injected and never interact with store-derived bounds.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if budget < 0.0:
        raise ParameterError(f"budget must be non-negative, got {budget}")
    view = _as_view(query_set)
    num_nodes = graph.num_nodes
    run_levels, seg_starts, seg_stops = view.level_segments()
    if run_levels.shape[0] == 0:
        ranked = rank_top_k(np.zeros(num_nodes, dtype=np.float64), int(source), k)
        return BoundedTopK(ranked, 0.0, -1, False)
    max_level = int(run_levels[-1])

    bounds = np.zeros(run_levels.shape[0], dtype=np.float64)
    for idx in range(run_levels.shape[0]):
        level = int(run_levels[idx])
        if level <= min_stop_level:
            continue  # never cut below the floor; bound never consulted
        supplied = None if level_bounds is None else level_bounds.get(level)
        if supplied is not None:
            bounds[idx] = supplied
        else:
            targets = np.asarray(
                view.targets[seg_starts[idx] : seg_stops[idx]]
            ).astype(np.int64)
            values = np.asarray(view.values[seg_starts[idx] : seg_stops[idx]])
            corrected = values * corrections[targets]
            bounds[idx] = (sqrt_c**level) * float(corrected.max(initial=0.0))

    # tails[idx] = Σ bounds of levels strictly deeper than run_levels[idx]
    tails = np.zeros(run_levels.shape[0], dtype=np.float64)
    if run_levels.shape[0] > 1:
        tails[:-1] = np.cumsum(bounds[::-1])[::-1][1:]
    stop_idx = int(run_levels.shape[0] - 1)
    for idx in range(run_levels.shape[0]):
        if int(run_levels[idx]) >= min_stop_level and tails[idx] <= budget:
            stop_idx = idx
            break
    stop_level = int(run_levels[stop_idx])
    tail = float(tails[stop_idx])

    scores = _cascade_scores(
        graph, view, corrections, sqrt_c, theta, max_level=stop_level
    )
    ranked = rank_top_k(np.minimum(scores, 1.0), int(source), k)
    if tail <= 0.0:
        return BoundedTopK(ranked, 0.0, stop_level, False)
    dominated = (
        len(ranked) == min(k, num_nodes - 1)
        and len(ranked) > 0
        and ranked[-1][1] >= tail
    )
    if dominated:
        return BoundedTopK(ranked, tail, stop_level, True)
    scores = _cascade_scores(graph, view, corrections, sqrt_c, theta)
    ranked = rank_top_k(np.minimum(scores, 1.0), int(source), k)
    return BoundedTopK(ranked, 0.0, max_level, False)
