"""Single-source SimRank query processing (Algorithm 6, Section 6).

Algorithm 6 avoids reading every other node's hitting set by rebuilding, on
the fly, exactly the inverted lists the query needs: for every step ``ℓ`` and
every node ``v_k`` with a stored hitting probability ``h̃^(ℓ)(v_i, v_k)``, the
temporary score ``ρ^(0)(v_k) = h̃^(ℓ)(v_i, v_k) · d_k`` is pushed forward
``ℓ`` steps along out-edges; the mass arriving at ``v_j`` equals
``Σ_k h^(ℓ)(v_j, v_k) · d_k · h̃^(ℓ)(v_i, v_k)``, i.e. the step-ℓ contribution
to ``s(v_i, v_j)``.  Scores smaller than ``(√c)^ℓ · θ`` are pruned during the
push, which is what yields the ``O(m log² 1/ε)`` bound of Lemma 12.

The query set may be a packed :class:`~repro.sling.packed.QueryView` — the
native representation, whose per-level frontiers are zero-copy column slices —
or a dict-based :class:`~repro.sling.hitting.HittingProbabilitySet`, which is
first converted to the same canonical (key-sorted) ordering.  Both paths
therefore execute identical numpy operations on identically ordered arrays
and return bitwise-identical scores for the same entries.

The function is shared by :class:`repro.sling.index.SlingIndex` and by the
disk-backed query engine in :mod:`repro.sling.storage`.
"""

from __future__ import annotations

import numpy as np

from ..graphs import DiGraph
from .hitting import HittingProbabilitySet, push_frontier
from .packed import QueryView, view_from_hitting_set

__all__ = ["single_source_local_push"]


def single_source_local_push(
    graph: DiGraph,
    query_set: HittingProbabilitySet | QueryView,
    corrections: np.ndarray,
    sqrt_c: float,
    theta: float,
    *,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Algorithm 6: SimRank from the query node to every node.

    Parameters
    ----------
    graph:
        The indexed graph.
    query_set:
        The (possibly reconstructed / enhanced) hitting set of the query
        node — either a packed :class:`QueryView` (zero-copy frontier
        initialisation) or a dict-based :class:`HittingProbabilitySet`.
    corrections:
        The ``(n,)`` array of correction factors ``d̃_k``.
    sqrt_c, theta:
        The index parameters ``√c`` and ``θ``.
    scratch:
        Optional reusable all-zeros ``(n,)`` buffer for the push steps; one
        is allocated per call when absent, so concurrent queries never share
        mutable state.

    Returns
    -------
    numpy.ndarray
        An ``(n,)`` array of approximate SimRank scores, clamped to ``[0, 1]``.
    """
    view = (
        view_from_hitting_set(query_set)
        if isinstance(query_set, HittingProbabilitySet)
        else query_set
    )
    scores = np.zeros(graph.num_nodes, dtype=np.float64)
    if scratch is None:
        scratch = np.zeros(graph.num_nodes, dtype=np.float64)
    for level, targets, values in view.iter_levels():
        frontier_nodes = targets.astype(np.int64)
        # ρ^(0)(v_k) = h̃^(ℓ)(v_i, v_k) · d_k  (fresh array; the view's
        # columns — possibly memory-mapped store slices — are never written)
        frontier_values = np.asarray(values) * corrections[frontier_nodes]
        prune_threshold = (sqrt_c**level) * theta
        for _ in range(level):
            keep = frontier_values > prune_threshold
            frontier_nodes = frontier_nodes[keep]
            frontier_values = frontier_values[keep]
            if frontier_nodes.size == 0:
                break
            frontier_nodes, frontier_values = push_frontier(
                graph, frontier_nodes, frontier_values, sqrt_c, scratch=scratch
            )
        if frontier_nodes.size:
            np.add.at(scores, frontier_nodes, frontier_values)
    return np.minimum(scores, 1.0)
