"""Parallel index construction (Section 5.4).

Both preprocessing phases of SLING are embarrassingly parallel over nodes:

* each correction factor ``d̃_k`` only needs √c-walks sampled from the
  in-neighbours of ``v_k``,
* each reverse local push (Algorithm 2) starts from a single target node and
  touches only its forward-reachable region.

``parallel_build`` splits the node range into contiguous chunks, processes the
chunks in a :class:`concurrent.futures.ProcessPoolExecutor`, and merges the
partial results.  Per-chunk random seeds are derived with
``numpy.random.SeedSequence.spawn`` so a parallel build is reproducible for a
fixed ``(seed, workers)`` pair.

The module also exposes :func:`build_with_thread_count`, the measurement
helper behind the Figure-9 "preprocessing time vs. number of threads"
experiment.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..exceptions import ParameterError
from ..graphs import DiGraph
from .correction import estimate_all_correction_factors
from .hitting import HittingProbabilitySet, build_hitting_sets
from .parameters import SlingParameters
from .walks import SqrtCWalker

__all__ = [
    "parallel_build",
    "even_chunks",
    "node_chunks",
    "resolve_worker_count",
    "build_with_thread_count",
]

# Worker-process globals, populated once per worker by the pool initializer so
# the (potentially large) graph is not re-pickled for every task.
_WORKER_GRAPH: DiGraph | None = None
_WORKER_PARAMS: SlingParameters | None = None


def even_chunks(total: int, num_chunks: int) -> list[range]:
    """Split ``range(total)`` into at most ``num_chunks`` contiguous ranges.

    The generic chunking behind both the parallel index build (chunks of
    nodes) and the service's :class:`~repro.service.ParallelExecutor`
    (chunks of request indices): ranges are contiguous, cover ``range(total)``
    exactly once, and differ in length by at most one.
    """
    if total < 0:
        raise ParameterError(f"total must be non-negative, got {total}")
    if num_chunks < 1:
        raise ParameterError(f"num_chunks must be >= 1, got {num_chunks}")
    num_chunks = min(num_chunks, max(1, total))
    bounds = np.linspace(0, total, num_chunks + 1, dtype=int)
    return [
        range(int(bounds[i]), int(bounds[i + 1]))
        for i in range(num_chunks)
        if bounds[i] < bounds[i + 1]
    ]


def node_chunks(num_nodes: int, num_chunks: int) -> list[range]:
    """Split ``range(num_nodes)`` into at most ``num_chunks`` contiguous ranges."""
    if num_nodes < 0:
        raise ParameterError(f"num_nodes must be non-negative, got {num_nodes}")
    return even_chunks(num_nodes, num_chunks)


def resolve_worker_count(workers: int | None) -> int:
    """Normalise a worker-count option: ``None`` or ``0`` means "one per CPU".

    Negative counts are rejected; the result is always >= 1 (also on
    platforms where the CPU count cannot be determined).
    """
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ParameterError(f"workers must be >= 1 (or 0 for auto), got {workers}")
    return int(workers)


def _init_worker(graph: DiGraph, params: SlingParameters) -> None:
    global _WORKER_GRAPH, _WORKER_PARAMS
    _WORKER_GRAPH = graph
    _WORKER_PARAMS = params


def _correction_chunk(
    chunk: range, seed_entropy: int, adaptive: bool
) -> tuple[range, np.ndarray]:
    assert _WORKER_GRAPH is not None and _WORKER_PARAMS is not None
    rng = np.random.default_rng(np.random.SeedSequence(seed_entropy))
    walker = SqrtCWalker(_WORKER_GRAPH, _WORKER_PARAMS.c, seed=rng)
    values = estimate_all_correction_factors(
        walker,
        _WORKER_PARAMS.epsilon_d,
        _WORKER_PARAMS.delta_d,
        adaptive=adaptive,
        nodes=chunk,
    )
    return chunk, values[chunk.start : chunk.stop]


def _hitting_chunk(chunk: range) -> list[tuple[int, int, int, float]]:
    assert _WORKER_GRAPH is not None and _WORKER_PARAMS is not None
    partial_sets = build_hitting_sets(
        _WORKER_GRAPH,
        _WORKER_PARAMS.sqrt_c,
        _WORKER_PARAMS.theta,
        targets=chunk,
    )
    records: list[tuple[int, int, int, float]] = []
    for source, hitting_set in enumerate(partial_sets):
        for level, target, value in hitting_set.items():
            records.append((source, level, target, value))
    return records


def parallel_build(
    graph: DiGraph,
    params: SlingParameters,
    *,
    workers: int,
    seed: int | None = None,
    adaptive_correction: bool = True,
) -> tuple[np.ndarray, list[HittingProbabilitySet], float, float]:
    """Build corrections and hitting sets with ``workers`` processes.

    Returns ``(corrections, hitting_sets, correction_seconds, hitting_seconds)``
    so the caller (:meth:`SlingIndex.build`) can fill its build statistics.
    """
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    chunks = node_chunks(graph.num_nodes, workers * 4)
    seed_sequence = np.random.SeedSequence(seed)
    chunk_seeds = [int(child.entropy) for child in seed_sequence.spawn(len(chunks))]

    corrections = np.full(graph.num_nodes, np.nan, dtype=np.float64)
    hitting_sets = [HittingProbabilitySet() for _ in range(graph.num_nodes)]

    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(graph, params)
    ) as pool:
        start = time.perf_counter()
        correction_results = pool.map(
            _correction_chunk,
            chunks,
            chunk_seeds,
            [adaptive_correction] * len(chunks),
        )
        for chunk, values in correction_results:
            corrections[chunk.start : chunk.stop] = values
        correction_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for records in pool.map(_hitting_chunk, chunks):
            for source, level, target, value in records:
                hitting_sets[source].set(level, target, value)
        hitting_seconds = time.perf_counter() - start

    return corrections, hitting_sets, correction_seconds, hitting_seconds


def build_with_thread_count(
    graph: DiGraph,
    params: SlingParameters,
    workers: int,
    *,
    seed: int | None = None,
) -> float:
    """Measure the wall-clock preprocessing time with ``workers`` processes.

    This is the Figure-9 experiment driver: it runs the full two-phase build
    and returns elapsed seconds.
    """
    start = time.perf_counter()
    if workers == 1:
        walker = SqrtCWalker(graph, params.c, seed=seed)
        estimate_all_correction_factors(
            walker, params.epsilon_d, params.delta_d, adaptive=True
        )
        build_hitting_sets(graph, params.sqrt_c, params.theta)
    else:
        parallel_build(graph, params, workers=workers, seed=seed)
    return time.perf_counter() - start
